//! Families with controlled (cut-)degeneracy for the reconstruction
//! experiments (Section 4 / experiment E6).

use dgs_field::prng::Rng;

use crate::graph::Graph;
use crate::VertexId;

/// A uniform random labelled tree (Prüfer-free incremental attachment:
/// each vertex i >= 1 attaches to a uniform predecessor). 1-degenerate.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(i as VertexId, parent as VertexId);
    }
    g
}

/// The `w × h` grid graph — 2-degenerate, 2-cut-degenerate; a classic
/// sparse reconstruction target.
pub fn grid(w: usize, h: usize) -> Graph {
    let mut g = Graph::new(w * h);
    let id = |x: usize, y: usize| (y * w + x) as VertexId;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                g.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    g
}

/// A random d-degenerate graph: vertices arrive in order, each connecting to
/// `min(i, d)` distinct random predecessors. The arrival order witnesses
/// d-degeneracy.
pub fn random_d_degenerate<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d >= 1);
    let mut g = Graph::new(n);
    for i in 1..n {
        let picks = d.min(i);
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < picks {
            chosen.insert(rng.gen_range(0..i));
        }
        for p in chosen {
            g.add_edge(i as VertexId, p as VertexId);
        }
    }
    g
}

/// The paper's Lemma 10 gadget: the 8-vertex graph that is 2-cut-degenerate
/// but **not** 2-degenerate (minimum degree 3). Vertices `v1..v4 = 0..3`,
/// `u1..u4 = 4..7`; edges `{v_i, v_j}` and `{u_i, u_j}` for all `i < j`
/// except `(1, 4)`, plus `{v1, u1}` and `{v4, u4}`.
pub fn lemma10_gadget() -> Graph {
    let mut g = Graph::new(8);
    for i in 0..4u32 {
        for j in (i + 1)..4 {
            if !(i == 0 && j == 3) {
                g.add_edge(i, j);
                g.add_edge(i + 4, j + 4);
            }
        }
    }
    g.add_edge(0, 4);
    g.add_edge(3, 7);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::degeneracy::{cut_degeneracy, degeneracy};
    use crate::algo::is_connected;
    use crate::hypergraph::Hypergraph;
    use dgs_field::prng::*;

    #[test]
    fn tree_properties() {
        let mut rng = StdRng::seed_from_u64(30);
        let g = random_tree(40, &mut rng);
        assert_eq!(g.edge_count(), 39);
        assert!(is_connected(&g));
        assert_eq!(degeneracy(&Hypergraph::from_graph(&g)), 1);
    }

    #[test]
    fn grid_properties() {
        let g = grid(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5); // vertical + horizontal
        assert!(is_connected(&g));
        let h = Hypergraph::from_graph(&g);
        assert_eq!(degeneracy(&h), 2);
        assert_eq!(cut_degeneracy(&h), 2);
    }

    #[test]
    fn d_degenerate_generator_is_d_degenerate() {
        let mut rng = StdRng::seed_from_u64(31);
        for d in 1..4usize {
            let g = random_d_degenerate(25, d, &mut rng);
            let deg = degeneracy(&Hypergraph::from_graph(&g));
            assert!(deg <= d, "d = {d}, observed degeneracy {deg}");
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn gadget_matches_lemma_10() {
        let g = lemma10_gadget();
        assert_eq!(g.n(), 8);
        assert_eq!(g.min_degree(), 3);
        let h = Hypergraph::from_graph(&g);
        assert_eq!(degeneracy(&h), 3);
        assert_eq!(cut_degeneracy(&h), 2);
    }
}
