//! Heavy-tailed and bipartite families for workload diversity.

use dgs_field::prng::Rng;

use crate::graph::Graph;
use crate::VertexId;

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` distinct existing vertices chosen proportionally to degree (the
/// standard repeated-endpoint urn). Produces heavy-tailed degrees — the
/// workload where `light_k` peels the fringe and leaves the dense core,
/// mirroring the social-network motivation of the paper's introduction.
///
/// # Panics
/// Panics unless `1 <= m < n`.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1 && m < n, "need 1 <= m < n (m={m}, n={n})");
    let mut g = Graph::new(n);
    // Urn of endpoints: each edge contributes both endpoints, so drawing
    // uniformly from the urn is degree-proportional sampling.
    let mut urn: Vec<VertexId> = Vec::with_capacity(4 * n * m);
    // Seed: a star on the first m+1 vertices.
    for v in 1..=m {
        g.add_edge(0, v as VertexId);
        urn.push(0);
        urn.push(v as VertexId);
    }
    for v in (m + 1)..n {
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m {
            guard += 1;
            assert!(guard < 100 * m + 1000, "attachment stalled");
            let t = urn[rng.gen_range(0..urn.len())];
            targets.insert(t);
        }
        for t in targets {
            g.add_edge(v as VertexId, t);
            urn.push(v as VertexId);
            urn.push(t);
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}` (parts `0..a` and `a..a+b`):
/// vertex and edge connectivity both exactly `min(a, b)` — a second exact
/// ground-truth family for the connectivity experiments.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge(u as VertexId, (a + v) as VertexId);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::vertex_conn::vertex_connectivity;
    use crate::algo::{degeneracy, is_connected, local_edge_connectivity};
    use crate::hypergraph::Hypergraph;
    use dgs_field::prng::*;

    #[test]
    fn ba_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(60, 2, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(g.edge_count(), 2 + 2 * (60 - 3));
        // Heavy tail: the max degree should clearly exceed the mean.
        let max_deg = (0..60u32).map(|v| g.degree(v)).max().unwrap();
        let mean_deg = 2.0 * g.edge_count() as f64 / 60.0;
        assert!(
            max_deg as f64 > 2.5 * mean_deg,
            "max {max_deg} vs mean {mean_deg}"
        );
        // Attachment with m = 2 keeps the graph 2-degenerate.
        assert!(degeneracy(&Hypergraph::from_graph(&g)) <= 2);
    }

    #[test]
    fn ba_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            barabasi_albert(3, 3, &mut rng)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn complete_bipartite_connectivities() {
        for (a, b) in [(2usize, 5usize), (3, 3), (4, 2)] {
            let g = complete_bipartite(a, b);
            assert_eq!(g.edge_count(), a * b);
            assert_eq!(vertex_connectivity(&g), a.min(b), "K_{{{a},{b}}}");
            let lambda = (1..(a + b) as u32)
                .map(|t| local_edge_connectivity(&g, 0, t, usize::MAX))
                .min()
                .unwrap();
            assert_eq!(lambda, a.min(b));
        }
    }
}
