//! Erdős–Rényi and bipartite random graphs.

use dgs_field::prng::Rng;

use crate::graph::Graph;
use crate::VertexId;

/// `G(n, p)` with geometric edge skipping (O(m) expected time).
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p = {p} out of range");
    let mut g = Graph::new(n);
    if p == 0.0 || n < 2 {
        return g;
    }
    if p == 1.0 {
        return Graph::complete(n);
    }
    // Iterate over the C(n,2) potential edges in lexicographic order,
    // skipping ahead geometrically.
    let total = n * (n - 1) / 2;
    let log_q = (1.0 - p).ln();
    let mut idx: usize = 0;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / log_q).floor() as usize;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total {
            break;
        }
        let (a, b) = pair_of_index(n, idx);
        g.add_edge(a, b);
        idx += 1;
    }
    g
}

/// The `idx`-th pair `(a, b)` with `a < b` in lexicographic order.
fn pair_of_index(n: usize, idx: usize) -> (VertexId, VertexId) {
    // Row a contains n - 1 - a pairs.
    let mut a = 0usize;
    let mut rem = idx;
    loop {
        let row = n - 1 - a;
        if rem < row {
            return (a as VertexId, (a + 1 + rem) as VertexId);
        }
        rem -= row;
        a += 1;
    }
}

/// `G(n, m)`: exactly `m` distinct uniform edges.
///
/// # Panics
/// Panics if `m > C(n, 2)`.
pub fn gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let total = n * (n - 1) / 2;
    assert!(m <= total, "m = {m} exceeds C({n},2) = {total}");
    let mut g = Graph::new(n);
    // Rejection sampling is fine until m approaches total; switch to
    // complement sampling when dense.
    if m * 2 <= total {
        while g.edge_count() < m {
            let a = rng.gen_range(0..n as VertexId);
            let b = rng.gen_range(0..n as VertexId);
            if a != b {
                g.add_edge(a, b);
            }
        }
    } else {
        let mut g2 = Graph::complete(n);
        while g2.edge_count() > m {
            let a = rng.gen_range(0..n as VertexId);
            let b = rng.gen_range(0..n as VertexId);
            if a != b {
                g2.remove_edge(a, b);
            }
        }
        g = g2;
    }
    g
}

/// Random bipartite graph on parts of size `left` and `right` (vertices
/// `0..left` and `left..left+right`), each cross pair present w.p. `p`.
pub fn random_bipartite<R: Rng>(left: usize, right: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(left + right);
    for u in 0..left as VertexId {
        for v in 0..right as VertexId {
            if rng.gen_bool(p) {
                g.add_edge(u, left as VertexId + v);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_field::prng::*;

    #[test]
    fn pair_indexing_is_a_bijection() {
        let n = 9;
        let mut seen = std::collections::BTreeSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (a, b) = pair_of_index(n, idx);
            assert!(a < b && (b as usize) < n);
            assert!(seen.insert((a, b)));
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn gnp_density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 120;
        let p = 0.3;
        let mut total = 0usize;
        for _ in 0..20 {
            total += gnp(n, p, &mut rng).edge_count();
        }
        let avg = total as f64 / 20.0;
        let expect = p * (n * (n - 1) / 2) as f64;
        assert!(
            (avg - expect).abs() < expect * 0.08,
            "avg {avg} vs expect {expect}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(gnp(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).edge_count(), 45);
        assert_eq!(gnp(1, 0.5, &mut rng).edge_count(), 0);
    }

    #[test]
    fn gnm_exact_count_sparse_and_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(gnm(20, 10, &mut rng).edge_count(), 10);
        assert_eq!(gnm(20, 180, &mut rng).edge_count(), 180);
        assert_eq!(gnm(20, 190, &mut rng).edge_count(), 190);
        assert_eq!(gnm(5, 0, &mut rng).edge_count(), 0);
    }

    #[test]
    fn bipartite_has_no_internal_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_bipartite(6, 7, 0.5, &mut rng);
        for (u, v) in g.edges() {
            assert!(
                (u as usize) < 6 && (v as usize) >= 6,
                "edge ({u},{v}) not cross"
            );
        }
    }
}
