//! Workload generators: graph/hypergraph families with known ground truth,
//! and dynamic stream orderings with deletions.

mod degenerate;
mod gnp;
mod harary;
mod hyper;
mod planted;
mod scale_free;
mod streams;

pub use degenerate::{grid, lemma10_gadget, random_d_degenerate, random_tree};
pub use gnp::{gnm, gnp, random_bipartite};
pub use harary::harary;
pub use hyper::{planted_hyper_cut, random_mixed_hypergraph, random_uniform_hypergraph};
pub use planted::{planted_edge_cut, planted_separator};
pub use scale_free::{barabasi_albert, complete_bipartite};
pub use streams::{churn_stream, insert_only_stream, ChurnConfig};
