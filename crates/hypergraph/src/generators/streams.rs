//! Dynamic stream workloads: orderings of insertions and deletions whose
//! final graph is a given target.
//!
//! The point of the dynamic model is that deletions invalidate insert-only
//! shortcuts (Section 1.1 of the paper), so every experiment drives sketches
//! through streams with real churn:
//!
//! * **noise edges** — edges not in the final graph that are inserted and
//!   later deleted;
//! * **churned edges** — final edges that are inserted, deleted, and
//!   re-inserted.
//!
//! Per-edge operation order is preserved (I, I–D–I, or I–D) while the
//! global interleaving is uniformly random, implemented by drawing one
//! sorted random timestamp per operation.

use dgs_field::prng::Rng;
use dgs_field::prng::SliceRandom;

use crate::edge::HyperEdge;
use crate::hypergraph::Hypergraph;
use crate::stream::{Update, UpdateStream};
use crate::VertexId;

/// Churn parameters for [`churn_stream`].
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Noise edges inserted-then-deleted, as a fraction of the final edge
    /// count (e.g. 0.5 = half as many noise edges as real edges).
    pub noise_ratio: f64,
    /// Fraction of final edges that get an extra delete + re-insert cycle.
    pub churn_ratio: f64,
}

impl Default for ChurnConfig {
    fn default() -> ChurnConfig {
        ChurnConfig {
            noise_ratio: 0.5,
            churn_ratio: 0.25,
        }
    }
}

/// A random-order insert-only stream for `h`.
pub fn insert_only_stream<R: Rng>(h: &Hypergraph, rng: &mut R) -> UpdateStream {
    let mut edges: Vec<HyperEdge> = h.edges().to_vec();
    edges.shuffle(rng);
    UpdateStream {
        n: h.n(),
        max_rank: h.max_rank().max(2),
        updates: edges.into_iter().map(Update::insert).collect(),
    }
}

/// A dynamic stream with deletions whose final hypergraph is exactly `h`.
pub fn churn_stream<R: Rng>(h: &Hypergraph, cfg: ChurnConfig, rng: &mut R) -> UpdateStream {
    let n = h.n();
    let max_rank = h.max_rank().max(2);
    let m = h.edge_count();
    let noise_count = (cfg.noise_ratio * m as f64).round() as usize;
    let churn_count = (cfg.churn_ratio * m as f64).round() as usize;

    // Per-edge op scripts.
    let mut scripts: Vec<(HyperEdge, Vec<bool>)> = Vec::new(); // true = insert
    let mut order: Vec<usize> = (0..m).collect();
    order.shuffle(rng);
    for (i, &idx) in order.iter().enumerate() {
        let e = h.edges()[idx].clone();
        if i < churn_count {
            scripts.push((e, vec![true, false, true]));
        } else {
            scripts.push((e, vec![true]));
        }
    }
    // Noise edges: random hyperedges not in the final graph.
    let mut placed = 0;
    let mut attempts = 0;
    while placed < noise_count && n >= 2 {
        attempts += 1;
        if attempts > 100 * noise_count + 1000 {
            break; // graph too dense for more noise; keep what we have
        }
        let r = rng.gen_range(2..=max_rank.min(n));
        let mut vs = std::collections::BTreeSet::new();
        while vs.len() < r {
            vs.insert(rng.gen_range(0..n as VertexId));
        }
        let e = HyperEdge::new(vs.into_iter().collect()).unwrap();
        if h.has_edge(&e) || scripts.iter().any(|(se, _)| se == &e) {
            continue;
        }
        scripts.push((e, vec![true, false]));
        placed += 1;
    }

    // Timestamp each operation: per-edge sorted random keys preserve the
    // per-edge order while the global merge is uniform.
    let mut ops: Vec<(f64, Update)> = Vec::new();
    for (e, script) in scripts {
        let mut keys: Vec<f64> = (0..script.len()).map(|_| rng.gen::<f64>()).collect();
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (key, is_insert) in keys.into_iter().zip(script) {
            let u = if is_insert {
                Update::insert(e.clone())
            } else {
                Update::delete(e.clone())
            };
            ops.push((key, u));
        }
    }
    ops.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    UpdateStream {
        n,
        max_rank,
        updates: ops.into_iter().map(|(_, u)| u).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gnp, random_uniform_hypergraph};
    use dgs_field::prng::*;

    #[test]
    fn insert_only_round_trips() {
        let mut rng = StdRng::seed_from_u64(40);
        let h = random_uniform_hypergraph(10, 3, 15, &mut rng);
        let s = insert_only_stream(&h, &mut rng);
        assert_eq!(s.len(), 15);
        assert_eq!(s.deletion_fraction(), 0.0);
        let h2 = s.final_hypergraph().unwrap();
        assert_eq!(h2.edge_count(), 15);
        for e in h.edges() {
            assert!(h2.has_edge(e));
        }
    }

    #[test]
    fn churn_stream_is_valid_and_round_trips() {
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..10 {
            let g = gnp(14, 0.3, &mut rng);
            let h = Hypergraph::from_graph(&g);
            let s = churn_stream(
                &h,
                ChurnConfig {
                    noise_ratio: 1.0,
                    churn_ratio: 0.5,
                },
                &mut rng,
            );
            let h2 = s
                .final_hypergraph()
                .unwrap_or_else(|e| panic!("trial {trial}: invalid stream: {e}"));
            assert_eq!(h2.edge_count(), h.edge_count(), "trial {trial}");
            for e in h.edges() {
                assert!(h2.has_edge(e), "trial {trial}: missing {e:?}");
            }
        }
    }

    #[test]
    fn churn_stream_contains_deletions() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = gnp(12, 0.4, &mut rng);
        let h = Hypergraph::from_graph(&g);
        let s = churn_stream(&h, ChurnConfig::default(), &mut rng);
        assert!(
            s.deletion_fraction() > 0.0,
            "expected deletions in churn stream"
        );
        assert!(s.len() > h.edge_count());
    }

    #[test]
    fn zero_churn_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = gnp(10, 0.3, &mut rng);
        let h = Hypergraph::from_graph(&g);
        let s = churn_stream(
            &h,
            ChurnConfig {
                noise_ratio: 0.0,
                churn_ratio: 0.0,
            },
            &mut rng,
        );
        assert_eq!(s.len(), h.edge_count());
        assert_eq!(s.deletion_fraction(), 0.0);
    }
}
