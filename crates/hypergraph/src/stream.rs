//! Dynamic graph streams: sequences of hyperedge insertions and deletions.
//!
//! The dynamic graph stream model (Section 2 of the paper) presents the
//! input as a one-way sequence of updates; an algorithm sees each update
//! once. [`UpdateStream`] is that sequence plus the stream's declared
//! parameters `(n, max_rank)`, which every sketch needs up front to size its
//! index space. Strict application ([`UpdateStream::final_hypergraph`])
//! enforces 0/1 multiplicities — the paper's graphs are simple.

use std::collections::BTreeSet;

use crate::edge::HyperEdge;
use crate::graph::Graph;
use crate::hypergraph::Hypergraph;
use crate::{GraphError, VertexId};

/// An insertion or deletion. A deletion is a "negative insertion" for every
/// linear sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Edge enters the graph.
    Insert,
    /// Edge leaves the graph.
    Delete,
}

impl Op {
    /// The signed delta a linear sketch applies: +1 or -1.
    #[inline]
    pub fn delta(self) -> i64 {
        match self {
            Op::Insert => 1,
            Op::Delete => -1,
        }
    }
}

/// One stream element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Update {
    /// The affected hyperedge.
    pub edge: HyperEdge,
    /// Insert or delete.
    pub op: Op,
}

impl Update {
    /// Insertion of `e`.
    pub fn insert(e: HyperEdge) -> Update {
        Update {
            edge: e,
            op: Op::Insert,
        }
    }

    /// Deletion of `e`.
    pub fn delete(e: HyperEdge) -> Update {
        Update {
            edge: e,
            op: Op::Delete,
        }
    }
}

/// A dynamic hypergraph stream with declared dimensions.
#[derive(Clone, Debug)]
pub struct UpdateStream {
    /// Number of vertices (fixed for the whole stream).
    pub n: usize,
    /// Upper bound on hyperedge cardinality (`r`; 2 for graph streams).
    pub max_rank: usize,
    /// The update sequence.
    pub updates: Vec<Update>,
}

impl UpdateStream {
    /// An empty stream.
    pub fn new(n: usize, max_rank: usize) -> UpdateStream {
        UpdateStream {
            n,
            max_rank,
            updates: Vec::new(),
        }
    }

    /// Insert-only stream materializing a hypergraph (edges in given order).
    pub fn inserts_of(h: &Hypergraph) -> UpdateStream {
        UpdateStream {
            n: h.n(),
            max_rank: h.max_rank().max(2),
            updates: h.edges().iter().cloned().map(Update::insert).collect(),
        }
    }

    /// Insert-only stream for a simple graph.
    pub fn inserts_of_graph(g: &Graph) -> UpdateStream {
        UpdateStream {
            n: g.n(),
            max_rank: 2,
            updates: g
                .edges()
                .map(|(u, v)| Update::insert(HyperEdge::pair(u, v)))
                .collect(),
        }
    }

    /// Appends an insertion.
    pub fn push_insert(&mut self, e: HyperEdge) {
        self.updates.push(Update::insert(e));
    }

    /// Appends a deletion.
    pub fn push_delete(&mut self, e: HyperEdge) {
        self.updates.push(Update::delete(e));
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True iff there are no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Fraction of updates that are deletions.
    pub fn deletion_fraction(&self) -> f64 {
        if self.updates.is_empty() {
            return 0.0;
        }
        let d = self.updates.iter().filter(|u| u.op == Op::Delete).count();
        d as f64 / self.updates.len() as f64
    }

    /// Validates and applies the stream: every insert must hit an absent
    /// edge, every delete a present one, cardinalities must respect
    /// `max_rank`, and vertices must be `< n`. Returns the final hypergraph.
    pub fn final_hypergraph(&self) -> Result<Hypergraph, GraphError> {
        let mut live: BTreeSet<&HyperEdge> = BTreeSet::new();
        for (i, u) in self.updates.iter().enumerate() {
            if u.edge.cardinality() > self.max_rank {
                return Err(GraphError::InvalidEdge(format!(
                    "update {i}: cardinality {} exceeds declared max_rank {}",
                    u.edge.cardinality(),
                    self.max_rank
                )));
            }
            let max_v = *u.edge.vertices().last().unwrap();
            if max_v as usize >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: max_v,
                    n: self.n,
                });
            }
            match u.op {
                Op::Insert => {
                    if !live.insert(&u.edge) {
                        return Err(GraphError::MultiplicityViolation(format!(
                            "update {i}: insert of present edge {:?}",
                            u.edge
                        )));
                    }
                }
                Op::Delete => {
                    if !live.remove(&u.edge) {
                        return Err(GraphError::MultiplicityViolation(format!(
                            "update {i}: delete of absent edge {:?}",
                            u.edge
                        )));
                    }
                }
            }
        }
        Ok(Hypergraph::from_edges(self.n, live.into_iter().cloned()))
    }

    /// The final graph of a rank-2 stream.
    pub fn final_graph(&self) -> Result<Graph, GraphError> {
        let h = self.final_hypergraph()?;
        let mut g = Graph::new(self.n);
        for e in h.edges() {
            let (u, v) = e.as_pair();
            g.add_edge(u, v);
        }
        Ok(g)
    }

    /// Convenience for building a graph stream update.
    pub fn pair_update(u: VertexId, v: VertexId, op: Op) -> Update {
        Update {
            edge: HyperEdge::pair(u, v),
            op,
        }
    }
}

// Binary codecs for stream elements — the unit of the write-ahead log
// (`crate::wal`). An update is `[op u8][cardinality u32][vertex u32]*`.

impl dgs_field::Codec for Op {
    fn encode(&self, w: &mut dgs_field::Writer) {
        w.put_u8(match self {
            Op::Insert => 0,
            Op::Delete => 1,
        });
    }
    fn decode(r: &mut dgs_field::Reader<'_>) -> Result<Self, dgs_field::CodecError> {
        match r.get_u8()? {
            0 => Ok(Op::Insert),
            1 => Ok(Op::Delete),
            other => Err(dgs_field::CodecError {
                offset: 0,
                message: format!("unknown op tag {other}"),
            }),
        }
    }
}

impl dgs_field::Codec for HyperEdge {
    fn encode(&self, w: &mut dgs_field::Writer) {
        w.put_u32(self.cardinality() as u32);
        for &v in self.vertices() {
            w.put_u32(v);
        }
    }
    fn decode(r: &mut dgs_field::Reader<'_>) -> Result<Self, dgs_field::CodecError> {
        let card = r.get_u32()?;
        if card > 1 << 16 {
            return Err(dgs_field::CodecError {
                offset: 0,
                message: format!("hyperedge cardinality {card} exceeds bound"),
            });
        }
        let mut vs = Vec::with_capacity(card as usize);
        for _ in 0..card {
            vs.push(r.get_u32()?);
        }
        HyperEdge::new(vs).map_err(|e| dgs_field::CodecError {
            offset: 0,
            message: format!("invalid hyperedge: {e}"),
        })
    }
}

impl dgs_field::Codec for Update {
    fn encode(&self, w: &mut dgs_field::Writer) {
        self.op.encode(w);
        self.edge.encode(w);
    }
    fn decode(r: &mut dgs_field::Reader<'_>) -> Result<Self, dgs_field::CodecError> {
        Ok(Update {
            op: Op::decode(r)?,
            edge: HyperEdge::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(u: u32, v: u32) -> HyperEdge {
        HyperEdge::pair(u, v)
    }

    #[test]
    fn insert_delete_cancels() {
        let mut s = UpdateStream::new(4, 2);
        s.push_insert(pair(0, 1));
        s.push_insert(pair(1, 2));
        s.push_delete(pair(0, 1));
        let g = s.final_graph().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(1, 2));
        assert!((s.deletion_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reinsert_after_delete_is_legal() {
        let mut s = UpdateStream::new(3, 2);
        s.push_insert(pair(0, 1));
        s.push_delete(pair(0, 1));
        s.push_insert(pair(0, 1));
        let g = s.final_graph().unwrap();
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn double_insert_rejected() {
        let mut s = UpdateStream::new(3, 2);
        s.push_insert(pair(0, 1));
        s.push_insert(pair(1, 0));
        assert!(matches!(
            s.final_hypergraph(),
            Err(GraphError::MultiplicityViolation(_))
        ));
    }

    #[test]
    fn delete_of_absent_rejected() {
        let mut s = UpdateStream::new(3, 2);
        s.push_delete(pair(0, 1));
        assert!(matches!(
            s.final_hypergraph(),
            Err(GraphError::MultiplicityViolation(_))
        ));
    }

    #[test]
    fn rank_and_range_validation() {
        let mut s = UpdateStream::new(3, 2);
        s.push_insert(HyperEdge::new(vec![0, 1, 2]).unwrap());
        assert!(matches!(
            s.final_hypergraph(),
            Err(GraphError::InvalidEdge(_))
        ));

        let mut s = UpdateStream::new(3, 3);
        s.push_insert(HyperEdge::new(vec![0, 1, 5]).unwrap());
        assert!(matches!(
            s.final_hypergraph(),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 3 })
        ));
    }

    #[test]
    fn inserts_of_round_trips() {
        let h = Hypergraph::from_edges(
            5,
            vec![
                HyperEdge::new(vec![0, 1, 2]).unwrap(),
                pair(3, 4),
                pair(0, 4),
            ],
        );
        let s = UpdateStream::inserts_of(&h);
        assert_eq!(s.max_rank, 3);
        let h2 = s.final_hypergraph().unwrap();
        assert_eq!(h2.edge_count(), 3);
        for e in h.edges() {
            assert!(h2.has_edge(e));
        }
    }

    #[test]
    fn op_deltas() {
        assert_eq!(Op::Insert.delta(), 1);
        assert_eq!(Op::Delete.delta(), -1);
    }

    #[test]
    fn update_codec_round_trips() {
        use dgs_field::{Codec, Reader, Writer};
        let updates = [
            Update::insert(HyperEdge::pair(0, 7)),
            Update::delete(HyperEdge::new(vec![3, 1, 9]).unwrap()),
        ];
        let mut w = Writer::new();
        for u in &updates {
            u.encode(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for u in &updates {
            assert_eq!(&Update::decode(&mut r).unwrap(), u);
        }
        r.expect_end().unwrap();
    }

    #[test]
    fn update_codec_rejects_malformed_bytes() {
        use dgs_field::{Codec, Reader, Writer};
        // Unknown op tag.
        let mut w = Writer::new();
        w.put_u8(9);
        let bytes = w.into_bytes();
        assert!(Update::decode(&mut Reader::new(&bytes)).is_err());
        // Cardinality-1 edge (invalid by construction).
        let mut w = Writer::new();
        w.put_u8(0);
        w.put_u32(1);
        w.put_u32(5);
        let bytes = w.into_bytes();
        assert!(Update::decode(&mut Reader::new(&bytes)).is_err());
        // Truncated vertex list.
        let mut w = Writer::new();
        w.put_u8(0);
        w.put_u32(4);
        w.put_u32(5);
        let bytes = w.into_bytes();
        assert!(Update::decode(&mut Reader::new(&bytes)).is_err());
    }
}
