//! A segmented, checksum-framed write-ahead log for dynamic-stream updates.
//!
//! Linear sketches make crash recovery *exact*: the sketch of a stream
//! prefix plus a replay of the logged tail is bit-identical to uninterrupted
//! ingestion. This module provides the durable half of that equation — an
//! append-only log of [`Update`] records that survives process death and
//! detects (never silently absorbs) on-disk corruption.
//!
//! ## On-disk format
//!
//! The log is a directory of segment files `seg-<index>.wal`:
//!
//! ```text
//! segment  = magic "DGSWAL1\n" | header-frame | record-frame* | trailer-frame?
//! frame    = [payload_len u32 LE] [fnv1a64(payload) u64 LE] [payload]
//! header   = tag 2 | n u64 | max_rank u64 | base_offset u64 | z u64
//! record   = tag 0 | Update (op u8, cardinality u32, vertex u32 ...)
//! trailer  = tag 1 | record_count u64 | fingerprint u64
//! ```
//!
//! Every frame carries its own FNV-1a checksum (the same framing the lossy
//! channel in [`crate::fault`] uses), so torn writes and bit flips are
//! *detected*. A sealed segment additionally ends with a polynomial
//! fingerprint trailer `F = Σ_i fnv(record_i) · z^i  (mod 2^61 − 1)` over
//! its records (the [`dgs_field::Fingerprinter`] construction), which
//! catches whole-frame substitutions and reorderings that per-frame
//! checksums cannot.
//!
//! ## Failure semantics
//!
//! * A torn tail — a partial final frame, a checksum mismatch, or trailing
//!   garbage in the **last** segment — is expected after a crash:
//!   [`read_wal`] truncates to the last valid frame and reports the dropped
//!   byte count in [`WalReplay::torn_bytes_dropped`]. Never a panic.
//! * Any corruption in a **sealed** (non-final) segment is not a crash
//!   artifact and surfaces as [`WalError::Corrupt`].
//! * [`WalWriter::resume`] reopens an existing log after a crash: it
//!   physically truncates the torn tail, seals the final segment with a
//!   recomputed fingerprint trailer, and continues in a fresh segment.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use dgs_field::{Codec, Fingerprinter, Fp, Reader, SeedTree, Writer};
use dgs_obs::{Counter, Histogram, MetricsSink};

use crate::fault::fnv1a64;
use crate::stream::{Update, UpdateStream};

/// Leading bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DGSWAL1\n";

/// Largest accepted frame payload; anything bigger is corruption.
const MAX_FRAME_PAYLOAD: u32 = 1 << 24;

const TAG_RECORD: u8 = 0;
const TAG_TRAILER: u8 = 1;
const TAG_HEADER: u8 = 2;

/// A typed write-ahead-log failure. Corrupt bytes are reported, never
/// panicked on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: String,
        /// The OS error text.
        detail: String,
    },
    /// A sealed portion of the log is damaged (bad magic, failed checksum
    /// or fingerprint, missing segment, inconsistent offsets).
    Corrupt {
        /// Segment index where the damage was found.
        segment: u64,
        /// What failed to validate.
        detail: String,
    },
    /// The directory contains no segments to read.
    Empty {
        /// The directory that was scanned.
        dir: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, detail } => write!(f, "wal io error on {path}: {detail}"),
            WalError::Corrupt { segment, detail } => {
                write!(f, "wal segment {segment} corrupt: {detail}")
            }
            WalError::Empty { dir } => write!(f, "wal directory {dir} has no segments"),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, e: std::io::Error) -> WalError {
    WalError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Per-call writer configuration.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Records per segment before sealing and rotating.
    pub segment_records: u64,
    /// Seed for the per-segment fingerprint points.
    pub seed: u64,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            segment_records: 4096,
            seed: 0x57A1_0001,
        }
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.wal"))
}

/// Frames a payload: `[len u32][fnv1a64 u64][payload]`.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(payload.len() as u32);
    w.put_u64(fnv1a64(payload));
    w.put_bytes(payload);
    w.into_bytes()
}

/// Metric handles for a WAL writer; null (free) by default.
#[derive(Clone, Debug, Default)]
struct WalMetrics {
    append_ns: Histogram,
    append_bytes: Counter,
    sync_ns: Histogram,
    segments_sealed: Counter,
}

impl WalMetrics {
    fn resolve(sink: &MetricsSink) -> WalMetrics {
        WalMetrics {
            append_ns: sink.histogram("dgs_hypergraph_wal_append_ns"),
            append_bytes: sink.counter("dgs_hypergraph_wal_append_bytes"),
            sync_ns: sink.histogram("dgs_hypergraph_wal_sync_ns"),
            segments_sealed: sink.counter("dgs_hypergraph_wal_segments_sealed"),
        }
    }
}

/// An append-only writer over a segment directory.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    n: usize,
    max_rank: usize,
    cfg: WalConfig,
    file: fs::File,
    seg_index: u64,
    seg_count: u64,
    fper: Fingerprinter,
    fp_acc: Fp,
    zpow: Fp,
    offset: u64,
    metrics: WalMetrics,
}

impl WalWriter {
    /// Creates a fresh log for a stream over `n` vertices with rank bound
    /// `max_rank`. The directory is created if absent and must not already
    /// contain segments.
    pub fn create(
        dir: impl Into<PathBuf>,
        n: usize,
        max_rank: usize,
        cfg: WalConfig,
    ) -> Result<WalWriter, WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        if !list_segments(&dir)?.is_empty() {
            return Err(WalError::Io {
                path: dir.display().to_string(),
                detail: "directory already contains wal segments (use resume)".into(),
            });
        }
        assert!(cfg.segment_records >= 1, "segments must hold records");
        Self::open_segment(dir, n, max_rank, cfg, 0, 0)
    }

    /// Reopens an existing log after a crash: validates it, physically
    /// truncates any torn tail, seals the final segment, and continues in a
    /// fresh segment. Returns the writer positioned after the last durable
    /// record, plus the replay of everything recovered. An empty or absent
    /// directory degrades to [`WalWriter::create`].
    pub fn resume(
        dir: impl Into<PathBuf>,
        n: usize,
        max_rank: usize,
        cfg: WalConfig,
    ) -> Result<(WalWriter, WalReplay), WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let segments = list_segments(&dir)?;
        if segments.is_empty() {
            let w = Self::create(dir, n, max_rank, cfg)?;
            return Ok((
                w,
                WalReplay {
                    n,
                    max_rank,
                    updates: Vec::new(),
                    segments: 0,
                    torn_bytes_dropped: 0,
                },
            ));
        }
        let scan = scan_segments(&dir, &segments)?;
        if scan.replay.n != n || scan.replay.max_rank != max_rank {
            return Err(WalError::Corrupt {
                segment: 0,
                detail: format!(
                    "log is for a ({}, {})-stream, resume asked for ({n}, {max_rank})",
                    scan.replay.n, scan.replay.max_rank
                ),
            });
        }
        let last_index = segments.len() as u64 - 1;
        let last_path = segment_path(&dir, last_index);
        let offset = scan.replay.updates.len() as u64;
        if scan.last_wholly_torn {
            // The final segment never got a valid header: delete the debris
            // and reuse its index.
            fs::remove_file(&last_path).map_err(|e| io_err(&last_path, e))?;
            let writer = Self::open_segment(dir, n, max_rank, cfg, last_index, offset)?;
            return Ok((writer, scan.replay));
        }
        // Drop the torn tail from disk, then seal with the recomputed
        // fingerprint so the segment passes the strict (non-final) checks
        // from now on.
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&last_path)
            .map_err(|e| io_err(&last_path, e))?;
        file.set_len(scan.last_valid_len)
            .map_err(|e| io_err(&last_path, e))?;
        if !scan.last_sealed {
            let mut file = fs::OpenOptions::new()
                .append(true)
                .open(&last_path)
                .map_err(|e| io_err(&last_path, e))?;
            let trailer = trailer_payload(scan.last_count, scan.last_fp);
            file.write_all(&frame_bytes(&trailer))
                .map_err(|e| io_err(&last_path, e))?;
            file.sync_all().map_err(|e| io_err(&last_path, e))?;
        }
        let writer = Self::open_segment(dir, n, max_rank, cfg, last_index + 1, offset)?;
        Ok((writer, scan.replay))
    }

    fn open_segment(
        dir: PathBuf,
        n: usize,
        max_rank: usize,
        cfg: WalConfig,
        seg_index: u64,
        offset: u64,
    ) -> Result<WalWriter, WalError> {
        let path = segment_path(&dir, seg_index);
        let mut file = fs::OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let fper = Fingerprinter::new(&SeedTree::new(cfg.seed).child(seg_index));
        let mut header = Writer::new();
        header.put_u8(TAG_HEADER);
        header.put_u64(n as u64);
        header.put_u64(max_rank as u64);
        header.put_u64(offset);
        header.put_u64(fper.point().value());
        let mut bytes = SEGMENT_MAGIC.to_vec();
        bytes.extend_from_slice(&frame_bytes(&header.into_bytes()));
        file.write_all(&bytes).map_err(|e| io_err(&path, e))?;
        Ok(WalWriter {
            dir,
            n,
            max_rank,
            cfg,
            file,
            seg_index,
            seg_count: 0,
            fper,
            fp_acc: Fp::ZERO,
            zpow: Fp::ONE,
            offset,
            metrics: WalMetrics::default(),
        })
    }

    /// Attach metric handles resolved from `sink`
    /// (`dgs_hypergraph_wal_*`: append latency/bytes, sync latency, sealed
    /// segments). Default is the null sink.
    pub fn set_sink(&mut self, sink: &MetricsSink) {
        self.metrics = WalMetrics::resolve(sink);
    }

    /// Appends one update. The record is on the OS's side of the crash line
    /// once this returns (a single `write` of a complete frame); call
    /// [`sync`](Self::sync) to force it to the device too.
    pub fn append(&mut self, u: &Update) -> Result<(), WalError> {
        let timer = self.metrics.append_ns.start_timer();
        let mut payload = Writer::new();
        payload.put_u8(TAG_RECORD);
        u.encode(&mut payload);
        let payload = payload.into_bytes();
        let path = segment_path(&self.dir, self.seg_index);
        let frame = frame_bytes(&payload);
        self.metrics.append_bytes.add(frame.len() as u64);
        self.file.write_all(&frame).map_err(|e| io_err(&path, e))?;
        self.fp_acc = self.fp_acc.add(Fp::new(fnv1a64(&payload)).mul(self.zpow));
        self.zpow = self.zpow.mul(self.fper.point());
        self.seg_count += 1;
        self.offset += 1;
        if self.seg_count >= self.cfg.segment_records {
            self.rotate()?;
        }
        timer.observe();
        Ok(())
    }

    /// Seals the active segment (fingerprint trailer + fsync) and opens the
    /// next one.
    fn rotate(&mut self) -> Result<(), WalError> {
        let path = segment_path(&self.dir, self.seg_index);
        let trailer = trailer_payload(self.seg_count, self.fp_acc);
        self.file
            .write_all(&frame_bytes(&trailer))
            .map_err(|e| io_err(&path, e))?;
        self.file.sync_all().map_err(|e| io_err(&path, e))?;
        let mut next = Self::open_segment(
            self.dir.clone(),
            self.n,
            self.max_rank,
            self.cfg,
            self.seg_index + 1,
            self.offset,
        )?;
        // `open_segment` starts with null handles; the live ones survive the
        // rotation.
        next.metrics = self.metrics.clone();
        next.metrics.segments_sealed.inc();
        *self = next;
        Ok(())
    }

    /// Forces buffered appends to the storage device.
    pub fn sync(&mut self) -> Result<(), WalError> {
        let timer = self.metrics.sync_ns.start_timer();
        let path = segment_path(&self.dir, self.seg_index);
        let out = self.file.sync_all().map_err(|e| io_err(&path, e));
        timer.observe();
        out
    }

    /// Total records ever appended — the stream offset the next record gets.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Index of the segment currently being written.
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn trailer_payload(count: u64, fp: Fp) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(TAG_TRAILER);
    w.put_u64(count);
    w.put_u64(fp.value());
    w.into_bytes()
}

/// Everything recovered from a log directory.
#[derive(Clone, Debug)]
pub struct WalReplay {
    /// Vertex count declared in the segment headers.
    pub n: usize,
    /// Rank bound declared in the segment headers.
    pub max_rank: usize,
    /// Every durable update, in append order.
    pub updates: Vec<Update>,
    /// Number of segment files read.
    pub segments: usize,
    /// Bytes discarded from the final segment's torn tail (0 after a clean
    /// shutdown).
    pub torn_bytes_dropped: u64,
}

impl WalReplay {
    /// The recovered records as an [`UpdateStream`].
    pub fn stream(&self) -> UpdateStream {
        UpdateStream {
            n: self.n,
            max_rank: self.max_rank,
            updates: self.updates.clone(),
        }
    }
}

/// Sorted segment indexes present in `dir`, validated contiguous from 0.
fn list_segments(dir: &Path) -> Result<Vec<u64>, WalError> {
    let mut indexes = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(indexes),
        Err(e) => return Err(io_err(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".wal"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            indexes.push(idx);
        }
    }
    indexes.sort_unstable();
    for (i, &idx) in indexes.iter().enumerate() {
        if idx != i as u64 {
            return Err(WalError::Corrupt {
                segment: i as u64,
                detail: format!("segment {i} missing (found index {idx} instead)"),
            });
        }
    }
    Ok(indexes)
}

/// Internal scan result: the replay plus enough state to resume writing.
struct Scan {
    replay: WalReplay,
    /// Byte length of the valid prefix of the final segment.
    last_valid_len: u64,
    /// Whether the final segment already ends with a valid trailer.
    last_sealed: bool,
    /// Records in the final segment's valid prefix.
    last_count: u64,
    /// Fingerprint accumulator over those records.
    last_fp: Fp,
    /// The final segment never got a valid header (crash during creation):
    /// resume deletes and recreates it rather than truncating.
    last_wholly_torn: bool,
}

/// Reads and validates the whole log. Torn tails in the final segment are
/// truncated (and reported); corruption anywhere else is a typed error.
pub fn read_wal(dir: impl AsRef<Path>) -> Result<WalReplay, WalError> {
    let dir = dir.as_ref();
    let segments = list_segments(dir)?;
    if segments.is_empty() {
        return Err(WalError::Empty {
            dir: dir.display().to_string(),
        });
    }
    Ok(scan_segments(dir, &segments)?.replay)
}

fn scan_segments(dir: &Path, segments: &[u64]) -> Result<Scan, WalError> {
    let mut updates = Vec::new();
    let mut stream_params: Option<(usize, usize)> = None;
    let mut torn_bytes = 0u64;
    let mut last_valid_len = 0u64;
    let mut last_sealed = false;
    let mut last_count = 0u64;
    let mut last_fp = Fp::ZERO;
    let mut last_wholly_torn = false;
    for (i, &seg) in segments.iter().enumerate() {
        let is_last = i + 1 == segments.len();
        let path = segment_path(dir, seg);
        let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
        let seg_scan = match scan_one_segment(&bytes, seg, is_last, updates.len() as u64)? {
            Some(s) => s,
            None => {
                // The final segment's header never hit the disk (crash
                // while opening it). It holds no records; the whole file is
                // crash debris.
                torn_bytes = bytes.len() as u64;
                last_wholly_torn = true;
                continue;
            }
        };
        match stream_params {
            None => stream_params = Some((seg_scan.n, seg_scan.max_rank)),
            Some((n, r)) => {
                if (seg_scan.n, seg_scan.max_rank) != (n, r) {
                    return Err(WalError::Corrupt {
                        segment: seg,
                        detail: format!(
                            "stream params ({}, {}) disagree with segment 0's ({n}, {r})",
                            seg_scan.n, seg_scan.max_rank
                        ),
                    });
                }
            }
        }
        updates.extend(seg_scan.updates);
        if is_last {
            torn_bytes = seg_scan.torn_bytes;
            last_valid_len = seg_scan.valid_len;
            last_sealed = seg_scan.sealed;
            last_count = seg_scan.count;
            last_fp = seg_scan.fp_acc;
        }
    }
    let (n, max_rank) = stream_params.expect("at least one readable segment");
    Ok(Scan {
        replay: WalReplay {
            n,
            max_rank,
            updates,
            segments: segments.len(),
            torn_bytes_dropped: torn_bytes,
        },
        last_valid_len,
        last_sealed,
        last_count,
        last_fp,
        last_wholly_torn,
    })
}

struct SegmentScan {
    n: usize,
    max_rank: usize,
    updates: Vec<Update>,
    torn_bytes: u64,
    valid_len: u64,
    sealed: bool,
    count: u64,
    fp_acc: Fp,
}

/// Validates one segment's bytes. `is_last` selects torn-tail tolerance;
/// sealed segments must validate end to end, trailer included. `Ok(None)`
/// means the final segment's header itself was torn (only legal when a
/// prior segment exists to supply the stream parameters).
fn scan_one_segment(
    bytes: &[u8],
    seg: u64,
    is_last: bool,
    base_offset: u64,
) -> Result<Option<SegmentScan>, WalError> {
    let corrupt = |detail: String| WalError::Corrupt {
        segment: seg,
        detail,
    };
    // A final segment whose magic or header frame is damaged is crash
    // debris from `open_segment` — tolerable when segment 0 still supplies
    // the stream parameters; fatal otherwise.
    let header_torn = |detail: String| {
        if is_last && seg > 0 {
            Ok(None)
        } else {
            Err(corrupt(detail))
        }
    };
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return header_torn("bad segment magic".into());
    }
    let mut pos = SEGMENT_MAGIC.len();

    // Pulls the next checksum-verified frame payload, or None on a torn /
    // corrupt boundary (the caller decides whether torn is tolerable).
    let next_frame = |pos: &mut usize| -> Option<Vec<u8>> {
        let start = *pos;
        let header = bytes.get(start..start + 12)?;
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME_PAYLOAD {
            return None;
        }
        let declared = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let payload = bytes.get(start + 12..start + 12 + len as usize)?;
        if fnv1a64(payload) != declared {
            return None;
        }
        *pos = start + 12 + len as usize;
        Some(payload.to_vec())
    };

    let header = match next_frame(&mut pos) {
        Some(p) => p,
        None => return header_torn("segment header torn or corrupt".into()),
    };
    let mut r = Reader::new(&header);
    let parse = |e: dgs_field::CodecError| corrupt(format!("header: {e}"));
    if r.get_u8().map_err(parse)? != TAG_HEADER {
        return Err(corrupt("first frame is not a header".into()));
    }
    let n = r.get_u64().map_err(parse)? as usize;
    let max_rank = r.get_u64().map_err(parse)? as usize;
    let declared_base = r.get_u64().map_err(parse)?;
    let z = Fp::new(r.get_u64().map_err(parse)?);
    r.expect_end().map_err(parse)?;
    if declared_base != base_offset {
        return Err(corrupt(format!(
            "header declares base offset {declared_base}, log position is {base_offset}"
        )));
    }
    if z.is_zero() || z == Fp::ONE {
        return Err(corrupt("degenerate fingerprint point".into()));
    }

    let mut updates = Vec::new();
    let mut fp_acc = Fp::ZERO;
    let mut zpow = Fp::ONE;
    let mut count = 0u64;
    let mut sealed = false;
    let mut valid_len = pos as u64;
    loop {
        if pos == bytes.len() {
            break; // clean unsealed end
        }
        let frame_start = pos;
        let Some(payload) = next_frame(&mut pos) else {
            // Torn or corrupt frame boundary.
            if is_last {
                return Ok(Some(SegmentScan {
                    n,
                    max_rank,
                    updates,
                    torn_bytes: (bytes.len() - frame_start) as u64,
                    valid_len,
                    sealed: false,
                    count,
                    fp_acc,
                }));
            }
            return Err(corrupt(format!("invalid frame at byte {frame_start}")));
        };
        match payload.first().copied() {
            Some(TAG_RECORD) => {
                if sealed {
                    return Err(corrupt("record frame after trailer".into()));
                }
                let mut r = Reader::new(&payload[1..]);
                match Update::decode(&mut r).and_then(|u| r.expect_end().map(|()| u)) {
                    Ok(u) => {
                        fp_acc = fp_acc.add(Fp::new(fnv1a64(&payload)).mul(zpow));
                        zpow = zpow.mul(z);
                        count += 1;
                        updates.push(u);
                        valid_len = pos as u64;
                    }
                    Err(e) => {
                        // The checksum passed but the payload is not a
                        // well-formed update: disk corruption colliding
                        // with FNV is ~2^-64; treat as corrupt even in the
                        // last segment rather than silently dropping a
                        // frame the checksum vouched for.
                        return Err(corrupt(format!(
                            "checksummed record at byte {frame_start} undecodable: {e}"
                        )));
                    }
                }
            }
            Some(TAG_TRAILER) => {
                let mut r = Reader::new(&payload[1..]);
                let tparse = |e: dgs_field::CodecError| corrupt(format!("trailer: {e}"));
                let declared_count = r.get_u64().map_err(tparse)?;
                let declared_fp = Fp::new(r.get_u64().map_err(tparse)?);
                r.expect_end().map_err(tparse)?;
                if declared_count != count || declared_fp != fp_acc {
                    return Err(corrupt(format!(
                        "fingerprint trailer mismatch: declared ({declared_count}, {}), \
                         recomputed ({count}, {})",
                        declared_fp.value(),
                        fp_acc.value()
                    )));
                }
                sealed = true;
                valid_len = pos as u64;
            }
            Some(TAG_HEADER) => return Err(corrupt("header frame mid-segment".into())),
            _ => return Err(corrupt(format!("unknown frame tag at byte {frame_start}"))),
        }
        if sealed && pos != bytes.len() {
            // Bytes after a valid trailer: crash debris in the last
            // segment, corruption anywhere else.
            if is_last {
                return Ok(Some(SegmentScan {
                    n,
                    max_rank,
                    updates,
                    torn_bytes: (bytes.len() - pos) as u64,
                    valid_len,
                    sealed,
                    count,
                    fp_acc,
                }));
            }
            return Err(corrupt("trailing bytes after trailer".into()));
        }
    }
    if !is_last && !sealed {
        return Err(corrupt("sealed segment is missing its trailer".into()));
    }
    Ok(Some(SegmentScan {
        n,
        max_rank,
        updates,
        torn_bytes: 0,
        valid_len,
        sealed,
        count,
        fp_acc,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::HyperEdge;
    use crate::fault::{truncated, with_bit_flipped};

    fn tmpdir(label: &str) -> PathBuf {
        static UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dgs-wal-{label}-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_updates(m: usize) -> Vec<Update> {
        (0..m)
            .map(|i| {
                let e = HyperEdge::pair(i as u32 % 7, 7 + (i as u32 % 5));
                if i % 3 == 2 {
                    Update::delete(e)
                } else {
                    Update::insert(e)
                }
            })
            .collect()
    }

    fn small_cfg() -> WalConfig {
        WalConfig {
            segment_records: 8,
            seed: 42,
        }
    }

    #[test]
    fn round_trips_across_segment_rotations() {
        let dir = tmpdir("rt");
        let updates = sample_updates(37); // 8-record segments -> 5 files
        let mut w = WalWriter::create(&dir, 16, 2, small_cfg()).unwrap();
        for u in &updates {
            w.append(u).unwrap();
        }
        assert_eq!(w.offset(), 37);
        assert_eq!(w.segment_index(), 4);
        let replay = read_wal(&dir).unwrap();
        assert_eq!(replay.updates, updates);
        assert_eq!(replay.n, 16);
        assert_eq!(replay.max_rank, 2);
        assert_eq!(replay.segments, 5);
        assert_eq!(replay.torn_bytes_dropped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_frame() {
        let dir = tmpdir("torn");
        let updates = sample_updates(6);
        let mut w = WalWriter::create(&dir, 16, 2, small_cfg()).unwrap();
        for u in &updates {
            w.append(u).unwrap();
        }
        drop(w); // crash: no seal
        let path = segment_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        // Chop off part of the last frame: replay must hold 5 records.
        fs::write(&path, truncated(&full, full.len() - 3)).unwrap();
        let replay = read_wal(&dir).unwrap();
        assert_eq!(replay.updates, updates[..5]);
        assert!(replay.torn_bytes_dropped > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_sealed_segment_is_a_typed_error() {
        let dir = tmpdir("sealedflip");
        let mut w = WalWriter::create(&dir, 16, 2, small_cfg()).unwrap();
        for u in sample_updates(20) {
            w.append(&u).unwrap(); // seals segments 0 and 1
        }
        let path = segment_path(&dir, 0);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, with_bit_flipped(&bytes, bytes.len() * 4)).unwrap();
        match read_wal(&dir) {
            Err(WalError::Corrupt { segment: 0, .. }) => {}
            other => panic!("expected segment-0 corruption, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_seals_and_continues() {
        let dir = tmpdir("resume");
        let updates = sample_updates(11);
        let mut w = WalWriter::create(&dir, 16, 2, small_cfg()).unwrap();
        for u in &updates {
            w.append(u).unwrap();
        }
        drop(w);
        // Tear the active segment's tail.
        let path = segment_path(&dir, 1);
        let full = fs::read(&path).unwrap();
        fs::write(&path, truncated(&full, full.len() - 1)).unwrap();

        let (mut w, replay) = WalWriter::resume(&dir, 16, 2, small_cfg()).unwrap();
        assert_eq!(replay.updates, updates[..10]);
        assert_eq!(w.offset(), 10);
        let more = sample_updates(3);
        for u in &more {
            w.append(u).unwrap();
        }
        drop(w);
        let replay = read_wal(&dir).unwrap();
        assert_eq!(replay.updates.len(), 13);
        assert_eq!(replay.updates[10..], more[..]);
        // The previously-torn segment is now sealed: corruption in it is no
        // longer tolerated as a torn tail.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, with_bit_flipped(&bytes, 8 * 100)).unwrap();
        assert!(matches!(read_wal(&dir), Err(WalError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_detected() {
        let dir = tmpdir("gap");
        let mut w = WalWriter::create(&dir, 16, 2, small_cfg()).unwrap();
        for u in sample_updates(20) {
            w.append(&u).unwrap();
        }
        fs::remove_file(segment_path(&dir, 1)).unwrap();
        assert!(matches!(read_wal(&dir), Err(WalError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_is_a_typed_error() {
        let dir = tmpdir("empty");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(read_wal(&dir), Err(WalError::Empty { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_of_the_log_recovers_a_prefix() {
        let dir = tmpdir("prefix");
        let updates = sample_updates(7);
        let mut w = WalWriter::create(&dir, 16, 2, WalConfig::default()).unwrap();
        for u in &updates {
            w.append(u).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        let mut seen = 0usize;
        for cut in 0..=full.len() {
            fs::write(&path, truncated(&full, cut)).unwrap();
            match read_wal(&dir) {
                Ok(replay) => {
                    assert_eq!(
                        replay.updates,
                        updates[..replay.updates.len()],
                        "cut {cut}: recovered a non-prefix"
                    );
                    seen = seen.max(replay.updates.len());
                }
                Err(WalError::Corrupt { .. }) => {} // header cut away
                Err(e) => panic!("cut {cut}: unexpected error {e}"),
            }
        }
        assert_eq!(seen, updates.len());
        fs::remove_dir_all(&dir).unwrap();
    }
}
