//! Graphs, hypergraphs, dynamic streams, workload generators, and exact
//! reference algorithms.
//!
//! This crate is the non-sketch substrate of the workspace. It provides:
//!
//! * [`edge::HyperEdge`] — a canonical (sorted, deduplicated) vertex subset of
//!   cardinality between 2 and a rank bound `r`;
//! * [`encoding::EdgeSpace`] — the exact combinatorial ranking of the edge
//!   space `P_r(V)` into `[0, d)`, `d = Σ_{s=2}^r C(n,s)`, realizing the
//!   index space of the paper's Section 4.1 vectors;
//! * [`graph::Graph`] and [`hypergraph::Hypergraph`] — simple in-memory
//!   structures with exact queries, plus [`hypergraph::WeightedHypergraph`]
//!   for sparsifier outputs;
//! * [`stream`] — insert/delete update streams and strict application;
//! * [`io`] — a line-oriented text format for persisting/replaying streams;
//! * [`wal`] — a segmented, checksum-framed write-ahead log of updates with
//!   torn-tail truncation and fingerprint-sealed segments (the durable half
//!   of crash recovery; see `dgs_core::checkpoint`);
//! * [`fault`] — deterministic stream/byte fault injection, jittered
//!   exponential backoff, and a lossy retransmitting channel for the
//!   resilience suite;
//! * [`chaos`] — seeded, replayable fault *campaigns* (scripted schedules
//!   of shard poisoning, checkpoint corruption, WAL torn-tails, decode
//!   stalls) for the self-healing soak harness (experiment E20);
//! * [`generators`] — Erdős–Rényi, Harary (exactly k-vertex-connected),
//!   planted-cut, degenerate, and hypergraph families, plus dynamic stream
//!   workloads with churn;
//! * [`algo`] — exact algorithms used both inside the paper's constructions
//!   (post-processing) and as ground truth in experiments: union-find,
//!   components, spanning forests, Dinic max-flow, Stoer–Wagner min cut,
//!   Even–Tarjan vertex connectivity, hypergraph cut/flow machinery,
//!   Benczúr–Karger edge strength and exact `light_k`, degeneracy and
//!   cut-degeneracy.

pub mod algo;
pub mod chaos;
pub mod edge;
pub mod encoding;
pub mod fault;
pub mod generators;
pub mod graph;
pub mod hypergraph;
pub mod io;
pub mod stream;
pub mod wal;

pub use chaos::{ChaosCampaign, ChaosEvent, ChaosFault, ChaosScheduler};
pub use edge::HyperEdge;
pub use encoding::EdgeSpace;
pub use fault::{
    default_channel_backoff, Backoff, BackoffConfig, ChannelError, ChannelStats, FaultClass,
    FaultInjector, InjectedFault, LossyChannel, DEFAULT_RETRY_BUDGET,
};
pub use graph::Graph;
pub use hypergraph::{Hypergraph, WeightedHypergraph};
pub use stream::{Op, Update, UpdateStream};
pub use wal::{read_wal, WalConfig, WalError, WalReplay, WalWriter};

/// Vertices are dense integer ids in `[0, n)`.
pub type VertexId = u32;

/// Errors raised by graph, stream, and encoding operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A hyperedge had fewer than 2 distinct vertices or exceeded the rank bound.
    InvalidEdge(String),
    /// A vertex id was `>= n`.
    VertexOutOfRange { vertex: VertexId, n: usize },
    /// Strict stream application saw an insert of a present edge or a delete
    /// of an absent one.
    MultiplicityViolation(String),
    /// The requested edge space does not fit the supported index range.
    EdgeSpaceTooLarge { n: usize, max_rank: usize },
    /// An underlying I/O operation failed (stream files, checkpoints).
    Io {
        /// Where in the input the failure happened (file, line, offset).
        context: String,
        /// The OS error text.
        detail: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::InvalidEdge(msg) => write!(f, "invalid hyperedge: {msg}"),
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for n = {n}")
            }
            GraphError::MultiplicityViolation(msg) => {
                write!(f, "stream multiplicity violation: {msg}")
            }
            GraphError::EdgeSpaceTooLarge { n, max_rank } => write!(
                f,
                "edge space for n = {n}, r = {max_rank} exceeds the 2^60 index budget"
            ),
            GraphError::Io { context, detail } => write!(f, "io error at {context}: {detail}"),
        }
    }
}

impl std::error::Error for GraphError {}
