//! Deterministic fault injection for the resilience test suite.
//!
//! Robustness claims are only as good as the faults they were tested
//! against. This module provides the two fault surfaces the workspace's
//! typed-error contract (`DESIGN.md`, "Failure semantics & fault model") is
//! verified under:
//!
//! * **Stream faults** — [`FaultInjector`] corrupts an [`UpdateStream`]
//!   with one of the [`FaultClass`]es (duplicated updates, dropped updates,
//!   deletes of absent edges, out-of-range vertices), returning both the
//!   corrupted stream and a machine-readable [`InjectedFault`] record so a
//!   test can assert the fault was *detected* (typed error from stream
//!   validation or a strict sketch decode) or *degraded gracefully*
//!   (the answer is consistent with the stream actually received).
//! * **Byte faults** — [`truncated`] and [`with_bit_flipped`] corrupt
//!   encoded sketch state; every [`Codec`] decode must reject them with a
//!   `CodecError`, never panic.
//!
//! [`LossyChannel`] composes the byte faults into a simple unreliable
//! transport for the simultaneous-communication protocol (experiment E15):
//! each transmitted message is framed with an FNV-1a checksum, frames are
//! lost or bit-corrupted with configurable probabilities, and the receiver
//! discards any frame that fails the checksum or decode — triggering a
//! retransmission, exactly like a stop-and-wait ARQ. Delivered messages are
//! therefore intact with overwhelming probability; the cost shows up only
//! in [`ChannelStats`].
//!
//! Everything here is deterministic from its seed (the in-tree
//! [`dgs_field::prng`]), so every failing case is replayable.

use crate::edge::HyperEdge;
use crate::stream::{Update, UpdateStream};
use dgs_field::prng::*;
use dgs_field::{Codec, CodecError, Reader, Writer};
use dgs_obs::{Counter, MetricsSink};
use std::collections::BTreeSet;

/// The stream-level fault classes the resilience suite injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// An update is replayed immediately after itself (multiplicity 2 for
    /// inserts, a double-delete for deletes).
    DuplicateUpdate,
    /// An update is silently removed from the stream.
    DropUpdate,
    /// A delete of an edge that never appears in the stream.
    DeleteAbsent,
    /// An inserted edge references a vertex `>= n`.
    OutOfRangeVertex,
}

impl FaultClass {
    /// Every stream fault class, for exhaustive test loops.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::DuplicateUpdate,
        FaultClass::DropUpdate,
        FaultClass::DeleteAbsent,
        FaultClass::OutOfRangeVertex,
    ];
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultClass::DuplicateUpdate => "duplicate-update",
            FaultClass::DropUpdate => "drop-update",
            FaultClass::DeleteAbsent => "delete-absent",
            FaultClass::OutOfRangeVertex => "out-of-range-vertex",
        };
        f.write_str(s)
    }
}

/// A record of one injected fault: what was done and where, so tests can
/// assert the right detection without re-deriving the corruption.
#[derive(Clone, Debug)]
pub struct InjectedFault {
    /// Which class was injected.
    pub class: FaultClass,
    /// Index in the *corrupted* stream where the fault materializes (for
    /// [`FaultClass::DropUpdate`], the index the removed update had in the
    /// original stream).
    pub position: usize,
    /// Human-readable description of the corruption.
    pub detail: String,
}

/// Injects stream faults deterministically from a seed.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: StdRng,
    /// One `dgs_hypergraph_fault_injected{class="..."}` counter per entry of
    /// [`FaultClass::ALL`], in that order; null (free) by default.
    injected: [Counter; FaultClass::ALL.len()],
}

impl FaultInjector {
    /// A fresh injector; equal seeds inject identical faults.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
            injected: Default::default(),
        }
    }

    /// Attach metric handles resolved from `sink`: every injected fault
    /// increments `dgs_hypergraph_fault_injected{class="<class>"}`, so a
    /// resilience harness can reconcile detected faults against injected
    /// ones. Default is the null sink.
    pub fn set_sink(&mut self, sink: &MetricsSink) {
        self.injected = FaultClass::ALL.map(|class| {
            sink.counter_labelled(
                "dgs_hypergraph_fault_injected",
                &[("class", &class.to_string())],
            )
        });
    }

    /// Returns a corrupted copy of `stream` with one fault of `class`
    /// injected, plus the injection record.
    ///
    /// # Panics
    /// Panics if the stream is empty (there is nothing to corrupt), or if
    /// `class` is [`FaultClass::DeleteAbsent`] and the complete graph on
    /// `stream.n` vertices appears in the stream (no absent pair exists).
    pub fn inject(
        &mut self,
        stream: &UpdateStream,
        class: FaultClass,
    ) -> (UpdateStream, InjectedFault) {
        assert!(!stream.is_empty(), "cannot inject into an empty stream");
        let slot = FaultClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("ALL is exhaustive");
        self.injected[slot].inc();
        let mut out = stream.clone();
        let fault = match class {
            FaultClass::DuplicateUpdate => {
                let i = self.rng.gen_range(0..out.updates.len());
                let dup = out.updates[i].clone();
                let detail = format!("replayed update {i}: {:?} {:?}", dup.op, dup.edge);
                out.updates.insert(i + 1, dup);
                InjectedFault {
                    class,
                    position: i + 1,
                    detail,
                }
            }
            FaultClass::DropUpdate => {
                let i = self.rng.gen_range(0..out.updates.len());
                let gone = out.updates.remove(i);
                InjectedFault {
                    class,
                    position: i,
                    detail: format!("dropped update {i}: {:?} {:?}", gone.op, gone.edge),
                }
            }
            FaultClass::DeleteAbsent => {
                let edge = self.absent_pair(stream);
                let i = self.rng.gen_range(0..=out.updates.len());
                let detail = format!("inserted delete of absent edge {edge:?} at {i}");
                out.updates.insert(i, Update::delete(edge));
                InjectedFault {
                    class,
                    position: i,
                    detail,
                }
            }
            FaultClass::OutOfRangeVertex => {
                let ghost = stream.n as u32 + self.rng.gen_range(0u32..4);
                let anchor = self.rng.gen_range(0..stream.n as u32);
                let edge = HyperEdge::pair(anchor, ghost);
                let i = self.rng.gen_range(0..=out.updates.len());
                let detail = format!(
                    "inserted edge {edge:?} with vertex {ghost} >= n = {} at {i}",
                    stream.n
                );
                out.updates.insert(i, Update::insert(edge));
                InjectedFault {
                    class,
                    position: i,
                    detail,
                }
            }
        };
        (out, fault)
    }

    /// A rank-2 edge over `[0, n)` that appears nowhere in the stream.
    fn absent_pair(&mut self, stream: &UpdateStream) -> HyperEdge {
        let seen: BTreeSet<&HyperEdge> = stream.updates.iter().map(|u| &u.edge).collect();
        let n = stream.n as u32;
        assert!(n >= 2, "need at least two vertices");
        // Random probes first (fast on sparse streams), then exhaustive scan.
        for _ in 0..64 {
            let u = self.rng.gen_range(0..n);
            let v = self.rng.gen_range(0..n);
            if u != v {
                let e = HyperEdge::pair(u, v);
                if !seen.contains(&e) {
                    return e;
                }
            }
        }
        for u in 0..n {
            for v in (u + 1)..n {
                let e = HyperEdge::pair(u, v);
                if !seen.contains(&e) {
                    return e;
                }
            }
        }
        panic!("every pair over {n} vertices appears in the stream");
    }
}

/// The first `len` bytes of `bytes` — a truncation fault on encoded state.
pub fn truncated(bytes: &[u8], len: usize) -> Vec<u8> {
    bytes[..len.min(bytes.len())].to_vec()
}

/// A copy of `bytes` with bit `bit` (counting from the LSB of byte 0)
/// flipped — a single-bit corruption fault on encoded state.
pub fn with_bit_flipped(bytes: &[u8], bit: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[bit / 8] ^= 1 << (bit % 8);
    out
}

/// Policy for bounded exponential backoff with jitter.
///
/// Delays are *virtual nanoseconds*: nothing in this module sleeps. A
/// retry loop asks [`Backoff::next_delay`] for the next wait; simulated
/// transports ([`LossyChannel`]) and the supervision layer in `dgs-core`
/// account the returned delay in their stats/metrics, while a real
/// deployment would sleep on it. Keeping the clock virtual keeps every
/// retry schedule deterministic and replayable from its seed.
///
/// The schedule is the classic capped exponential: attempt `k` waits
/// `min(base_ns * multiplier^k, max_ns)`, jittered uniformly within
/// `±jitter` of itself (full-jitter style, in-tree PRNG). A hard
/// `total_budget_ns` cap bounds the *sum* of all delays — once the budget
/// would be exceeded the backoff reports exhaustion instead of spinning
/// forever.
#[derive(Clone, Copy, Debug)]
pub struct BackoffConfig {
    /// First retry delay, in (virtual) nanoseconds.
    pub base_ns: u64,
    /// Multiplicative growth per attempt (>= 1).
    pub multiplier: u32,
    /// Per-attempt delay ceiling.
    pub max_ns: u64,
    /// Cap on the *total* delay across all attempts; exceeding it makes
    /// [`Backoff::next_delay`] return `None` (exhausted).
    pub total_budget_ns: u64,
    /// Jitter fraction in `[0, 1]`: each delay is drawn uniformly from
    /// `[d * (1 - jitter), d * (1 + jitter)]`.
    pub jitter: f64,
}

impl Default for BackoffConfig {
    fn default() -> BackoffConfig {
        BackoffConfig {
            base_ns: 1_000_000, // 1 ms
            multiplier: 2,
            max_ns: 64_000_000,           // 64 ms ceiling
            total_budget_ns: 256_000_000, // 256 ms total
            jitter: 0.5,
        }
    }
}

/// One retry sequence under a [`BackoffConfig`]. Deterministic from its
/// seed; see the config docs for the schedule.
#[derive(Clone, Debug)]
pub struct Backoff {
    cfg: BackoffConfig,
    rng: StdRng,
    attempts: u32,
    waited_ns: u64,
}

impl Backoff {
    /// A fresh sequence. Equal `(cfg, seed)` pairs produce identical
    /// schedules.
    ///
    /// # Panics
    /// Panics on a malformed config (`multiplier` 0, `jitter` outside
    /// `[0, 1]`, zero `base_ns`) — configuration bugs, not runtime faults.
    pub fn new(cfg: BackoffConfig, seed: u64) -> Backoff {
        assert!(cfg.multiplier >= 1, "backoff multiplier must be >= 1");
        assert!(cfg.base_ns >= 1, "backoff base delay must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.jitter),
            "jitter fraction {} outside [0, 1]",
            cfg.jitter
        );
        Backoff {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            attempts: 0,
            waited_ns: 0,
        }
    }

    /// The next delay in nanoseconds, or `None` when the total budget is
    /// exhausted (the caller should give up — quarantine the shard, fail
    /// the transmit — rather than keep spinning).
    pub fn next_delay(&mut self) -> Option<u64> {
        let exp = self.attempts.min(62);
        let raw = (self.cfg.base_ns)
            .saturating_mul((self.cfg.multiplier as u64).saturating_pow(exp))
            .min(self.cfg.max_ns);
        let jittered = if self.cfg.jitter == 0.0 {
            raw
        } else {
            let lo = (raw as f64 * (1.0 - self.cfg.jitter)) as u64;
            let hi = (raw as f64 * (1.0 + self.cfg.jitter)) as u64;
            self.rng.gen_range(lo..=hi.max(lo))
        };
        if self.waited_ns.saturating_add(jittered) > self.cfg.total_budget_ns {
            return None;
        }
        self.attempts += 1;
        self.waited_ns += jittered;
        Some(jittered)
    }

    /// Retry attempts granted so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Total (virtual) nanoseconds of delay granted so far.
    pub fn waited_ns(&self) -> u64 {
        self.waited_ns
    }

    /// Resets the sequence (after a success) without reseeding the jitter.
    pub fn reset(&mut self) {
        self.attempts = 0;
        self.waited_ns = 0;
    }
}

/// FNV-1a over the payload — the frame checksum [`LossyChannel`] uses to
/// turn arbitrary in-flight corruption into *detected* corruption. The
/// implementation lives in `dgs-field` so checksum-framed formats below the
/// graph layer (e.g. trace postmortem files) share the exact same hash.
pub use dgs_field::fnv1a64;

/// Frames a message for transmission: `[fnv1a64(payload) as u64 LE][payload]`.
pub fn encode_frame<T: Codec>(msg: &T) -> Vec<u8> {
    let mut w = Writer::new();
    msg.encode(&mut w);
    let payload = w.into_bytes();
    let mut frame = fnv1a64(&payload).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

/// Verifies and decodes a received frame. Any truncation or bit corruption
/// fails the checksum (or the decode) and is reported as a `CodecError` —
/// never a silently wrong message.
pub fn decode_frame<T: Codec>(frame: &[u8]) -> Result<T, CodecError> {
    if frame.len() < 8 {
        return Err(CodecError {
            offset: frame.len(),
            message: "frame shorter than its checksum header".into(),
        });
    }
    let (header, payload) = frame.split_at(8);
    let declared = u64::from_le_bytes(header.try_into().expect("8 bytes"));
    if fnv1a64(payload) != declared {
        return Err(CodecError {
            offset: 0,
            message: "frame checksum mismatch".into(),
        });
    }
    let mut r = Reader::new(payload);
    let msg = T::decode(&mut r)?;
    r.expect_end()?;
    Ok(msg)
}

/// Delivery accounting for a [`LossyChannel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames put on the wire (including retransmissions).
    pub attempts: usize,
    /// Frames lost in flight.
    pub losses: usize,
    /// Frames corrupted in flight.
    pub corruptions: usize,
    /// Frames the receiver rejected (checksum or decode failure).
    pub rejected: usize,
    /// Messages delivered intact.
    pub delivered: usize,
    /// Messages abandoned after exhausting the attempt or backoff budget.
    pub exhausted: usize,
    /// Total virtual nanoseconds spent backing off between retransmissions.
    pub backoff_waited_ns: u64,
}

/// The channel gave up: every attempt was lost or rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChannelError {
    /// `max_attempts` transmissions all failed.
    Exhausted {
        /// Number of attempts made.
        attempts: usize,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Exhausted { attempts } => {
                write!(f, "channel exhausted after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// An unreliable transport with retransmission under jittered exponential
/// backoff, for running the distributed player protocol over injected loss
/// and corruption.
#[derive(Clone, Debug)]
pub struct LossyChannel {
    rng: StdRng,
    loss_probability: f64,
    corruption_probability: f64,
    retry_budget: usize,
    backoff: Backoff,
    /// Cumulative delivery accounting.
    pub stats: ChannelStats,
    metrics: ChannelMetrics,
}

/// Metric handles for a [`LossyChannel`]; null (free) until
/// [`LossyChannel::set_sink`] resolves them.
#[derive(Clone, Debug, Default)]
struct ChannelMetrics {
    attempts: Counter,
    delivered: Counter,
    exhausted: Counter,
    backoff_ns: Counter,
}

/// Default per-message retry budget for [`LossyChannel::transmit`].
pub const DEFAULT_RETRY_BUDGET: usize = 16;

/// Default backoff policy for [`LossyChannel`]: the same capped exponential
/// as [`BackoffConfig::default`], but with a total budget generous enough
/// that the *attempt* budget is what binds by default — the backoff budget
/// is an additional safety net, not the primary cutoff. Tighten it with
/// [`LossyChannel::with_backoff`] to make the time budget bind first.
pub fn default_channel_backoff() -> BackoffConfig {
    BackoffConfig {
        total_budget_ns: 4_000_000_000, // 4 s — covers DEFAULT_RETRY_BUDGET attempts
        ..BackoffConfig::default()
    }
}

impl LossyChannel {
    /// A channel that loses each frame with probability `loss_probability`
    /// and corrupts each surviving frame (one random bit flip or a random
    /// truncation) with probability `corruption_probability`. Deterministic
    /// from `seed`. The default retry budget is [`DEFAULT_RETRY_BUDGET`];
    /// tune it with [`with_retry_budget`](Self::with_retry_budget).
    pub fn new(seed: u64, loss_probability: f64, corruption_probability: f64) -> LossyChannel {
        assert!(
            (0.0..=1.0).contains(&loss_probability),
            "loss probability {loss_probability}"
        );
        assert!(
            (0.0..=1.0).contains(&corruption_probability),
            "corruption probability {corruption_probability}"
        );
        LossyChannel {
            rng: StdRng::seed_from_u64(seed),
            loss_probability,
            corruption_probability,
            retry_budget: DEFAULT_RETRY_BUDGET,
            // Sibling seed so backoff jitter never perturbs the loss RNG.
            backoff: Backoff::new(default_channel_backoff(), seed ^ 0x6261_636b_6f66_6621),
            stats: ChannelStats::default(),
            metrics: ChannelMetrics::default(),
        }
    }

    /// Replaces the retransmission backoff policy. A message whose
    /// cumulative backoff would exceed `cfg.total_budget_ns` fails with
    /// [`ChannelError::Exhausted`] even if attempts remain — retransmission
    /// never spins past its time budget.
    pub fn with_backoff(mut self, cfg: BackoffConfig) -> LossyChannel {
        // Re-derive the jitter seed without perturbing the loss RNG.
        self.backoff = Backoff::new(cfg, self.rng.clone().gen());
        self
    }

    /// Attach metric handles resolved from `sink`:
    /// `dgs_hypergraph_channel_attempts`, `dgs_hypergraph_channel_delivered`,
    /// `dgs_hypergraph_channel_exhausted`, and
    /// `dgs_hypergraph_channel_backoff_ns` (virtual nanoseconds waited).
    /// Default is the null sink.
    pub fn set_sink(&mut self, sink: &MetricsSink) {
        self.metrics = ChannelMetrics {
            attempts: sink.counter("dgs_hypergraph_channel_attempts"),
            delivered: sink.counter("dgs_hypergraph_channel_delivered"),
            exhausted: sink.counter("dgs_hypergraph_channel_exhausted"),
            backoff_ns: sink.counter("dgs_hypergraph_channel_backoff_ns"),
        };
    }

    /// Sets the per-message attempt budget used by
    /// [`transmit`](Self::transmit). A message whose every attempt is lost
    /// or rejected within the budget fails with
    /// [`ChannelError::Exhausted`] — the caller always learns delivery did
    /// not happen; nothing blocks forever.
    ///
    /// # Panics
    /// Panics if `budget` is 0 (a channel that never transmits is a
    /// configuration bug, not a runtime fault).
    pub fn with_retry_budget(mut self, budget: usize) -> LossyChannel {
        assert!(budget >= 1, "retry budget must allow at least one attempt");
        self.retry_budget = budget;
        self
    }

    /// The configured per-message attempt budget.
    pub fn retry_budget(&self) -> usize {
        self.retry_budget
    }

    /// Transmits `msg` under the channel's configured retry budget.
    pub fn transmit<T: Codec>(&mut self, msg: &T) -> Result<(T, usize), ChannelError> {
        self.transmit_with_retry(msg, self.retry_budget)
    }

    /// Transmits `msg`, retransmitting on loss or detected corruption, up
    /// to `max_attempts` times with jittered exponential backoff between
    /// attempts. Returns the received message and the number of attempts it
    /// took. Fails with [`ChannelError::Exhausted`] when either the attempt
    /// budget or the backoff's total time budget runs out, whichever binds
    /// first.
    pub fn transmit_with_retry<T: Codec>(
        &mut self,
        msg: &T,
        max_attempts: usize,
    ) -> Result<(T, usize), ChannelError> {
        assert!(max_attempts >= 1, "need at least one attempt");
        let frame = encode_frame(msg);
        self.backoff.reset();
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                // Stop-and-wait became wait-and-grow: back off before every
                // retransmission, giving up if the time budget is spent.
                match self.backoff.next_delay() {
                    Some(delay_ns) => {
                        self.stats.backoff_waited_ns += delay_ns;
                        self.metrics.backoff_ns.add(delay_ns);
                    }
                    None => {
                        self.stats.exhausted += 1;
                        self.metrics.exhausted.inc();
                        return Err(ChannelError::Exhausted {
                            attempts: attempt - 1,
                        });
                    }
                }
            }
            self.stats.attempts += 1;
            self.metrics.attempts.inc();
            if self.rng.gen_bool(self.loss_probability) {
                self.stats.losses += 1;
                continue; // sender times out and retransmits
            }
            let mut received = frame.clone();
            if self.rng.gen_bool(self.corruption_probability) {
                self.stats.corruptions += 1;
                received = if self.rng.gen_bool(0.5) {
                    let bit = self.rng.gen_range(0..received.len() * 8);
                    with_bit_flipped(&received, bit)
                } else {
                    let len = self.rng.gen_range(0..received.len());
                    truncated(&received, len)
                };
            }
            match decode_frame::<T>(&received) {
                Ok(decoded) => {
                    self.stats.delivered += 1;
                    self.metrics.delivered.inc();
                    return Ok((decoded, attempt));
                }
                Err(_) => {
                    self.stats.rejected += 1; // receiver NAKs; retransmit
                }
            }
        }
        self.stats.exhausted += 1;
        self.metrics.exhausted.inc();
        Err(ChannelError::Exhausted {
            attempts: max_attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Op;
    use crate::GraphError;

    fn sample_stream() -> UpdateStream {
        let mut s = UpdateStream::new(6, 2);
        s.push_insert(HyperEdge::pair(0, 1));
        s.push_insert(HyperEdge::pair(1, 2));
        s.push_insert(HyperEdge::pair(2, 3));
        s.push_delete(HyperEdge::pair(1, 2));
        s.push_insert(HyperEdge::pair(4, 5));
        s
    }

    #[test]
    fn duplicate_update_violates_multiplicity() {
        let s = sample_stream();
        let (bad, fault) = FaultInjector::new(1).inject(&s, FaultClass::DuplicateUpdate);
        assert_eq!(bad.len(), s.len() + 1);
        assert_eq!(bad.updates[fault.position], bad.updates[fault.position - 1]);
        assert!(matches!(
            bad.final_hypergraph(),
            Err(GraphError::MultiplicityViolation(_))
        ));
    }

    #[test]
    fn dropped_update_shrinks_the_stream() {
        let s = sample_stream();
        let (bad, fault) = FaultInjector::new(2).inject(&s, FaultClass::DropUpdate);
        assert_eq!(bad.len(), s.len() - 1);
        assert!(fault.detail.starts_with("dropped update"));
    }

    #[test]
    fn delete_absent_is_detected_by_strict_application() {
        let s = sample_stream();
        let (bad, fault) = FaultInjector::new(3).inject(&s, FaultClass::DeleteAbsent);
        assert_eq!(bad.updates[fault.position].op, Op::Delete);
        assert!(matches!(
            bad.final_hypergraph(),
            Err(GraphError::MultiplicityViolation(_))
        ));
    }

    #[test]
    fn out_of_range_vertex_is_detected_by_strict_application() {
        let s = sample_stream();
        let (bad, _fault) = FaultInjector::new(4).inject(&s, FaultClass::OutOfRangeVertex);
        assert!(matches!(
            bad.final_hypergraph(),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let s = sample_stream();
        for class in FaultClass::ALL {
            let (a, fa) = FaultInjector::new(7).inject(&s, class);
            let (b, fb) = FaultInjector::new(7).inject(&s, class);
            assert_eq!(a.updates, b.updates, "{class}");
            assert_eq!(fa.position, fb.position, "{class}");
        }
    }

    #[test]
    fn perfect_channel_delivers_first_try() {
        let mut ch = LossyChannel::new(5, 0.0, 0.0);
        let msg: Vec<u64> = (0..32).collect();
        let (got, attempts) = ch.transmit_with_retry(&msg, 4).unwrap();
        assert_eq!(got, msg);
        assert_eq!(attempts, 1);
        assert_eq!(ch.stats.delivered, 1);
        assert_eq!(ch.stats.losses + ch.stats.rejected, 0);
    }

    #[test]
    fn fully_lossy_channel_exhausts() {
        let mut ch = LossyChannel::new(6, 1.0, 0.0);
        let msg: Vec<u64> = vec![1, 2, 3];
        assert_eq!(
            ch.transmit_with_retry(&msg, 5),
            Err(ChannelError::Exhausted { attempts: 5 })
        );
        assert_eq!(ch.stats.losses, 5);
        assert_eq!(ch.stats.delivered, 0);
    }

    #[test]
    fn noisy_channel_delivers_intact_or_not_at_all() {
        let mut ch = LossyChannel::new(7, 0.2, 0.5);
        let msg: Vec<u64> = (0..16).map(|i| i * i).collect();
        for _ in 0..50 {
            let (got, _) = ch.transmit_with_retry(&msg, 64).unwrap();
            assert_eq!(got, msg, "a corrupted frame slipped past the checksum");
        }
        assert!(ch.stats.rejected > 0, "corruption never exercised");
        assert!(ch.stats.losses > 0, "loss never exercised");
        assert_eq!(ch.stats.delivered, 50);
    }

    #[test]
    fn configured_retry_budget_bounds_attempts() {
        let mut ch = LossyChannel::new(8, 1.0, 0.0).with_retry_budget(3);
        assert_eq!(ch.retry_budget(), 3);
        let msg: Vec<u64> = vec![9];
        assert_eq!(
            ch.transmit(&msg),
            Err(ChannelError::Exhausted { attempts: 3 })
        );
        assert_eq!(ch.stats.attempts, 3);
    }

    #[test]
    fn default_budget_applies_when_unconfigured() {
        let mut ch = LossyChannel::new(9, 1.0, 0.0);
        let msg: Vec<u64> = vec![1];
        assert_eq!(
            ch.transmit(&msg),
            Err(ChannelError::Exhausted {
                attempts: DEFAULT_RETRY_BUDGET
            })
        );
    }

    #[test]
    #[should_panic(expected = "retry budget")]
    fn zero_budget_is_rejected_at_configuration() {
        let _ = LossyChannel::new(10, 0.0, 0.0).with_retry_budget(0);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let cfg = BackoffConfig {
            base_ns: 1_000,
            multiplier: 2,
            max_ns: 8_000,
            total_budget_ns: 1_000_000,
            jitter: 0.5,
        };
        let mut a = Backoff::new(cfg, 11);
        let mut b = Backoff::new(cfg, 11);
        for i in 0..10 {
            let da = a.next_delay().unwrap();
            let db = b.next_delay().unwrap();
            assert_eq!(da, db, "attempt {i}");
            // Per-attempt ceiling: max_ns * (1 + jitter).
            assert!(da <= 12_000, "attempt {i} delay {da} over jittered cap");
        }
        assert_eq!(a.attempts(), 10);
        assert_eq!(a.waited_ns(), b.waited_ns());
    }

    #[test]
    fn backoff_grows_until_the_per_attempt_ceiling() {
        let cfg = BackoffConfig {
            base_ns: 100,
            multiplier: 2,
            max_ns: 1_600,
            total_budget_ns: u64::MAX,
            jitter: 0.0,
        };
        let mut bo = Backoff::new(cfg, 0);
        let delays: Vec<u64> = (0..8).map(|_| bo.next_delay().unwrap()).collect();
        assert_eq!(delays, vec![100, 200, 400, 800, 1_600, 1_600, 1_600, 1_600]);
    }

    #[test]
    fn backoff_total_budget_exhausts() {
        let cfg = BackoffConfig {
            base_ns: 1_000,
            multiplier: 2,
            max_ns: 1_000_000,
            total_budget_ns: 6_900, // fits 1000 + 2000 + rejects 4000
            jitter: 0.0,
        };
        let mut bo = Backoff::new(cfg, 3);
        assert_eq!(bo.next_delay(), Some(1_000));
        assert_eq!(bo.next_delay(), Some(2_000));
        assert_eq!(bo.next_delay(), None);
        assert_eq!(bo.waited_ns(), 3_000);
        bo.reset();
        assert_eq!(bo.next_delay(), Some(1_000), "reset restarts the schedule");
    }

    #[test]
    fn lossy_channel_accounts_backoff_time() {
        let mut ch = LossyChannel::new(12, 1.0, 0.0);
        let msg: Vec<u64> = vec![7];
        assert_eq!(
            ch.transmit_with_retry(&msg, 4),
            Err(ChannelError::Exhausted { attempts: 4 })
        );
        assert!(ch.stats.backoff_waited_ns > 0, "no backoff accounted");
        assert_eq!(ch.stats.exhausted, 1);
        // First try of each message is immediate; only retries wait.
        let mut ok = LossyChannel::new(13, 0.0, 0.0);
        ok.transmit_with_retry(&msg, 4).unwrap();
        assert_eq!(ok.stats.backoff_waited_ns, 0);
        assert_eq!(ok.stats.exhausted, 0);
    }

    #[test]
    fn tight_backoff_budget_binds_before_attempt_budget() {
        let cfg = BackoffConfig {
            base_ns: 1_000_000,
            multiplier: 2,
            max_ns: 64_000_000,
            total_budget_ns: 2_000_000, // roughly one or two retries' worth
            jitter: 0.5,
        };
        let mut ch = LossyChannel::new(14, 1.0, 0.0).with_backoff(cfg);
        let msg: Vec<u64> = vec![1, 2];
        match ch.transmit_with_retry(&msg, 1_000) {
            Err(ChannelError::Exhausted { attempts }) => {
                assert!(attempts < 1_000, "time budget never bound");
                assert!(ch.stats.backoff_waited_ns <= cfg.total_budget_ns);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(ch.stats.exhausted, 1);
    }

    #[test]
    fn channel_metrics_reach_the_sink() {
        let registry = dgs_obs::Registry::new();
        let mut ch = LossyChannel::new(15, 1.0, 0.0).with_retry_budget(3);
        ch.set_sink(&registry.sink());
        let msg: Vec<u64> = vec![5];
        let _ = ch.transmit(&msg);
        assert_eq!(
            registry.counter_value("dgs_hypergraph_channel_attempts"),
            Some(3)
        );
        assert_eq!(
            registry.counter_value("dgs_hypergraph_channel_exhausted"),
            Some(1)
        );
        let waited = registry
            .counter_value("dgs_hypergraph_channel_backoff_ns")
            .unwrap();
        assert_eq!(waited, ch.stats.backoff_waited_ns);
    }

    #[test]
    fn checksum_catches_every_single_bit_flip_and_truncation() {
        let msg: Vec<u64> = vec![0xDEAD, 0xBEEF, 42];
        let frame = encode_frame(&msg);
        for bit in 0..frame.len() * 8 {
            let bad = with_bit_flipped(&frame, bit);
            assert!(decode_frame::<Vec<u64>>(&bad).is_err(), "bit {bit}");
        }
        for len in 0..frame.len() {
            let bad = truncated(&frame, len);
            assert!(decode_frame::<Vec<u64>>(&bad).is_err(), "len {len}");
        }
        assert_eq!(decode_frame::<Vec<u64>>(&frame).unwrap(), msg);
    }
}
