//! Deterministic fault injection for the resilience test suite.
//!
//! Robustness claims are only as good as the faults they were tested
//! against. This module provides the two fault surfaces the workspace's
//! typed-error contract (`DESIGN.md`, "Failure semantics & fault model") is
//! verified under:
//!
//! * **Stream faults** — [`FaultInjector`] corrupts an [`UpdateStream`]
//!   with one of the [`FaultClass`]es (duplicated updates, dropped updates,
//!   deletes of absent edges, out-of-range vertices), returning both the
//!   corrupted stream and a machine-readable [`InjectedFault`] record so a
//!   test can assert the fault was *detected* (typed error from stream
//!   validation or a strict sketch decode) or *degraded gracefully*
//!   (the answer is consistent with the stream actually received).
//! * **Byte faults** — [`truncated`] and [`with_bit_flipped`] corrupt
//!   encoded sketch state; every [`Codec`] decode must reject them with a
//!   `CodecError`, never panic.
//!
//! [`LossyChannel`] composes the byte faults into a simple unreliable
//! transport for the simultaneous-communication protocol (experiment E15):
//! each transmitted message is framed with an FNV-1a checksum, frames are
//! lost or bit-corrupted with configurable probabilities, and the receiver
//! discards any frame that fails the checksum or decode — triggering a
//! retransmission, exactly like a stop-and-wait ARQ. Delivered messages are
//! therefore intact with overwhelming probability; the cost shows up only
//! in [`ChannelStats`].
//!
//! Everything here is deterministic from its seed (the in-tree
//! [`dgs_field::prng`]), so every failing case is replayable.

use crate::edge::HyperEdge;
use crate::stream::{Update, UpdateStream};
use dgs_field::prng::*;
use dgs_field::{Codec, CodecError, Reader, Writer};
use dgs_obs::{Counter, MetricsSink};
use std::collections::BTreeSet;

/// The stream-level fault classes the resilience suite injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// An update is replayed immediately after itself (multiplicity 2 for
    /// inserts, a double-delete for deletes).
    DuplicateUpdate,
    /// An update is silently removed from the stream.
    DropUpdate,
    /// A delete of an edge that never appears in the stream.
    DeleteAbsent,
    /// An inserted edge references a vertex `>= n`.
    OutOfRangeVertex,
}

impl FaultClass {
    /// Every stream fault class, for exhaustive test loops.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::DuplicateUpdate,
        FaultClass::DropUpdate,
        FaultClass::DeleteAbsent,
        FaultClass::OutOfRangeVertex,
    ];
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultClass::DuplicateUpdate => "duplicate-update",
            FaultClass::DropUpdate => "drop-update",
            FaultClass::DeleteAbsent => "delete-absent",
            FaultClass::OutOfRangeVertex => "out-of-range-vertex",
        };
        f.write_str(s)
    }
}

/// A record of one injected fault: what was done and where, so tests can
/// assert the right detection without re-deriving the corruption.
#[derive(Clone, Debug)]
pub struct InjectedFault {
    /// Which class was injected.
    pub class: FaultClass,
    /// Index in the *corrupted* stream where the fault materializes (for
    /// [`FaultClass::DropUpdate`], the index the removed update had in the
    /// original stream).
    pub position: usize,
    /// Human-readable description of the corruption.
    pub detail: String,
}

/// Injects stream faults deterministically from a seed.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: StdRng,
    /// One `dgs_hypergraph_fault_injected{class="..."}` counter per entry of
    /// [`FaultClass::ALL`], in that order; null (free) by default.
    injected: [Counter; FaultClass::ALL.len()],
}

impl FaultInjector {
    /// A fresh injector; equal seeds inject identical faults.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
            injected: Default::default(),
        }
    }

    /// Attach metric handles resolved from `sink`: every injected fault
    /// increments `dgs_hypergraph_fault_injected{class="<class>"}`, so a
    /// resilience harness can reconcile detected faults against injected
    /// ones. Default is the null sink.
    pub fn set_sink(&mut self, sink: &MetricsSink) {
        self.injected = FaultClass::ALL.map(|class| {
            sink.counter_labelled(
                "dgs_hypergraph_fault_injected",
                &[("class", &class.to_string())],
            )
        });
    }

    /// Returns a corrupted copy of `stream` with one fault of `class`
    /// injected, plus the injection record.
    ///
    /// # Panics
    /// Panics if the stream is empty (there is nothing to corrupt), or if
    /// `class` is [`FaultClass::DeleteAbsent`] and the complete graph on
    /// `stream.n` vertices appears in the stream (no absent pair exists).
    pub fn inject(
        &mut self,
        stream: &UpdateStream,
        class: FaultClass,
    ) -> (UpdateStream, InjectedFault) {
        assert!(!stream.is_empty(), "cannot inject into an empty stream");
        let slot = FaultClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("ALL is exhaustive");
        self.injected[slot].inc();
        let mut out = stream.clone();
        let fault = match class {
            FaultClass::DuplicateUpdate => {
                let i = self.rng.gen_range(0..out.updates.len());
                let dup = out.updates[i].clone();
                let detail = format!("replayed update {i}: {:?} {:?}", dup.op, dup.edge);
                out.updates.insert(i + 1, dup);
                InjectedFault {
                    class,
                    position: i + 1,
                    detail,
                }
            }
            FaultClass::DropUpdate => {
                let i = self.rng.gen_range(0..out.updates.len());
                let gone = out.updates.remove(i);
                InjectedFault {
                    class,
                    position: i,
                    detail: format!("dropped update {i}: {:?} {:?}", gone.op, gone.edge),
                }
            }
            FaultClass::DeleteAbsent => {
                let edge = self.absent_pair(stream);
                let i = self.rng.gen_range(0..=out.updates.len());
                let detail = format!("inserted delete of absent edge {edge:?} at {i}");
                out.updates.insert(i, Update::delete(edge));
                InjectedFault {
                    class,
                    position: i,
                    detail,
                }
            }
            FaultClass::OutOfRangeVertex => {
                let ghost = stream.n as u32 + self.rng.gen_range(0u32..4);
                let anchor = self.rng.gen_range(0..stream.n as u32);
                let edge = HyperEdge::pair(anchor, ghost);
                let i = self.rng.gen_range(0..=out.updates.len());
                let detail = format!(
                    "inserted edge {edge:?} with vertex {ghost} >= n = {} at {i}",
                    stream.n
                );
                out.updates.insert(i, Update::insert(edge));
                InjectedFault {
                    class,
                    position: i,
                    detail,
                }
            }
        };
        (out, fault)
    }

    /// A rank-2 edge over `[0, n)` that appears nowhere in the stream.
    fn absent_pair(&mut self, stream: &UpdateStream) -> HyperEdge {
        let seen: BTreeSet<&HyperEdge> = stream.updates.iter().map(|u| &u.edge).collect();
        let n = stream.n as u32;
        assert!(n >= 2, "need at least two vertices");
        // Random probes first (fast on sparse streams), then exhaustive scan.
        for _ in 0..64 {
            let u = self.rng.gen_range(0..n);
            let v = self.rng.gen_range(0..n);
            if u != v {
                let e = HyperEdge::pair(u, v);
                if !seen.contains(&e) {
                    return e;
                }
            }
        }
        for u in 0..n {
            for v in (u + 1)..n {
                let e = HyperEdge::pair(u, v);
                if !seen.contains(&e) {
                    return e;
                }
            }
        }
        panic!("every pair over {n} vertices appears in the stream");
    }
}

/// The first `len` bytes of `bytes` — a truncation fault on encoded state.
pub fn truncated(bytes: &[u8], len: usize) -> Vec<u8> {
    bytes[..len.min(bytes.len())].to_vec()
}

/// A copy of `bytes` with bit `bit` (counting from the LSB of byte 0)
/// flipped — a single-bit corruption fault on encoded state.
pub fn with_bit_flipped(bytes: &[u8], bit: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[bit / 8] ^= 1 << (bit % 8);
    out
}

/// FNV-1a over the payload — the frame checksum [`LossyChannel`] uses to
/// turn arbitrary in-flight corruption into *detected* corruption.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frames a message for transmission: `[fnv1a64(payload) as u64 LE][payload]`.
pub fn encode_frame<T: Codec>(msg: &T) -> Vec<u8> {
    let mut w = Writer::new();
    msg.encode(&mut w);
    let payload = w.into_bytes();
    let mut frame = fnv1a64(&payload).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

/// Verifies and decodes a received frame. Any truncation or bit corruption
/// fails the checksum (or the decode) and is reported as a `CodecError` —
/// never a silently wrong message.
pub fn decode_frame<T: Codec>(frame: &[u8]) -> Result<T, CodecError> {
    if frame.len() < 8 {
        return Err(CodecError {
            offset: frame.len(),
            message: "frame shorter than its checksum header".into(),
        });
    }
    let (header, payload) = frame.split_at(8);
    let declared = u64::from_le_bytes(header.try_into().expect("8 bytes"));
    if fnv1a64(payload) != declared {
        return Err(CodecError {
            offset: 0,
            message: "frame checksum mismatch".into(),
        });
    }
    let mut r = Reader::new(payload);
    let msg = T::decode(&mut r)?;
    r.expect_end()?;
    Ok(msg)
}

/// Delivery accounting for a [`LossyChannel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames put on the wire (including retransmissions).
    pub attempts: usize,
    /// Frames lost in flight.
    pub losses: usize,
    /// Frames corrupted in flight.
    pub corruptions: usize,
    /// Frames the receiver rejected (checksum or decode failure).
    pub rejected: usize,
    /// Messages delivered intact.
    pub delivered: usize,
}

/// The channel gave up: every attempt was lost or rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChannelError {
    /// `max_attempts` transmissions all failed.
    Exhausted {
        /// Number of attempts made.
        attempts: usize,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Exhausted { attempts } => {
                write!(f, "channel exhausted after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// An unreliable transport with stop-and-wait retransmission, for running
/// the distributed player protocol over injected loss and corruption.
#[derive(Clone, Debug)]
pub struct LossyChannel {
    rng: StdRng,
    loss_probability: f64,
    corruption_probability: f64,
    retry_budget: usize,
    /// Cumulative delivery accounting.
    pub stats: ChannelStats,
}

/// Default per-message retry budget for [`LossyChannel::transmit`].
pub const DEFAULT_RETRY_BUDGET: usize = 16;

impl LossyChannel {
    /// A channel that loses each frame with probability `loss_probability`
    /// and corrupts each surviving frame (one random bit flip or a random
    /// truncation) with probability `corruption_probability`. Deterministic
    /// from `seed`. The default retry budget is [`DEFAULT_RETRY_BUDGET`];
    /// tune it with [`with_retry_budget`](Self::with_retry_budget).
    pub fn new(seed: u64, loss_probability: f64, corruption_probability: f64) -> LossyChannel {
        assert!(
            (0.0..=1.0).contains(&loss_probability),
            "loss probability {loss_probability}"
        );
        assert!(
            (0.0..=1.0).contains(&corruption_probability),
            "corruption probability {corruption_probability}"
        );
        LossyChannel {
            rng: StdRng::seed_from_u64(seed),
            loss_probability,
            corruption_probability,
            retry_budget: DEFAULT_RETRY_BUDGET,
            stats: ChannelStats::default(),
        }
    }

    /// Sets the per-message attempt budget used by
    /// [`transmit`](Self::transmit). A message whose every attempt is lost
    /// or rejected within the budget fails with
    /// [`ChannelError::Exhausted`] — the caller always learns delivery did
    /// not happen; nothing blocks forever.
    ///
    /// # Panics
    /// Panics if `budget` is 0 (a channel that never transmits is a
    /// configuration bug, not a runtime fault).
    pub fn with_retry_budget(mut self, budget: usize) -> LossyChannel {
        assert!(budget >= 1, "retry budget must allow at least one attempt");
        self.retry_budget = budget;
        self
    }

    /// The configured per-message attempt budget.
    pub fn retry_budget(&self) -> usize {
        self.retry_budget
    }

    /// Transmits `msg` under the channel's configured retry budget.
    pub fn transmit<T: Codec>(&mut self, msg: &T) -> Result<(T, usize), ChannelError> {
        self.transmit_with_retry(msg, self.retry_budget)
    }

    /// Transmits `msg`, retransmitting on loss or detected corruption, up
    /// to `max_attempts` times. Returns the received message and the number
    /// of attempts it took.
    pub fn transmit_with_retry<T: Codec>(
        &mut self,
        msg: &T,
        max_attempts: usize,
    ) -> Result<(T, usize), ChannelError> {
        assert!(max_attempts >= 1, "need at least one attempt");
        let frame = encode_frame(msg);
        for attempt in 1..=max_attempts {
            self.stats.attempts += 1;
            if self.rng.gen_bool(self.loss_probability) {
                self.stats.losses += 1;
                continue; // sender times out and retransmits
            }
            let mut received = frame.clone();
            if self.rng.gen_bool(self.corruption_probability) {
                self.stats.corruptions += 1;
                received = if self.rng.gen_bool(0.5) {
                    let bit = self.rng.gen_range(0..received.len() * 8);
                    with_bit_flipped(&received, bit)
                } else {
                    let len = self.rng.gen_range(0..received.len());
                    truncated(&received, len)
                };
            }
            match decode_frame::<T>(&received) {
                Ok(decoded) => {
                    self.stats.delivered += 1;
                    return Ok((decoded, attempt));
                }
                Err(_) => {
                    self.stats.rejected += 1; // receiver NAKs; retransmit
                }
            }
        }
        Err(ChannelError::Exhausted {
            attempts: max_attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Op;
    use crate::GraphError;

    fn sample_stream() -> UpdateStream {
        let mut s = UpdateStream::new(6, 2);
        s.push_insert(HyperEdge::pair(0, 1));
        s.push_insert(HyperEdge::pair(1, 2));
        s.push_insert(HyperEdge::pair(2, 3));
        s.push_delete(HyperEdge::pair(1, 2));
        s.push_insert(HyperEdge::pair(4, 5));
        s
    }

    #[test]
    fn duplicate_update_violates_multiplicity() {
        let s = sample_stream();
        let (bad, fault) = FaultInjector::new(1).inject(&s, FaultClass::DuplicateUpdate);
        assert_eq!(bad.len(), s.len() + 1);
        assert_eq!(bad.updates[fault.position], bad.updates[fault.position - 1]);
        assert!(matches!(
            bad.final_hypergraph(),
            Err(GraphError::MultiplicityViolation(_))
        ));
    }

    #[test]
    fn dropped_update_shrinks_the_stream() {
        let s = sample_stream();
        let (bad, fault) = FaultInjector::new(2).inject(&s, FaultClass::DropUpdate);
        assert_eq!(bad.len(), s.len() - 1);
        assert!(fault.detail.starts_with("dropped update"));
    }

    #[test]
    fn delete_absent_is_detected_by_strict_application() {
        let s = sample_stream();
        let (bad, fault) = FaultInjector::new(3).inject(&s, FaultClass::DeleteAbsent);
        assert_eq!(bad.updates[fault.position].op, Op::Delete);
        assert!(matches!(
            bad.final_hypergraph(),
            Err(GraphError::MultiplicityViolation(_))
        ));
    }

    #[test]
    fn out_of_range_vertex_is_detected_by_strict_application() {
        let s = sample_stream();
        let (bad, _fault) = FaultInjector::new(4).inject(&s, FaultClass::OutOfRangeVertex);
        assert!(matches!(
            bad.final_hypergraph(),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let s = sample_stream();
        for class in FaultClass::ALL {
            let (a, fa) = FaultInjector::new(7).inject(&s, class);
            let (b, fb) = FaultInjector::new(7).inject(&s, class);
            assert_eq!(a.updates, b.updates, "{class}");
            assert_eq!(fa.position, fb.position, "{class}");
        }
    }

    #[test]
    fn perfect_channel_delivers_first_try() {
        let mut ch = LossyChannel::new(5, 0.0, 0.0);
        let msg: Vec<u64> = (0..32).collect();
        let (got, attempts) = ch.transmit_with_retry(&msg, 4).unwrap();
        assert_eq!(got, msg);
        assert_eq!(attempts, 1);
        assert_eq!(ch.stats.delivered, 1);
        assert_eq!(ch.stats.losses + ch.stats.rejected, 0);
    }

    #[test]
    fn fully_lossy_channel_exhausts() {
        let mut ch = LossyChannel::new(6, 1.0, 0.0);
        let msg: Vec<u64> = vec![1, 2, 3];
        assert_eq!(
            ch.transmit_with_retry(&msg, 5),
            Err(ChannelError::Exhausted { attempts: 5 })
        );
        assert_eq!(ch.stats.losses, 5);
        assert_eq!(ch.stats.delivered, 0);
    }

    #[test]
    fn noisy_channel_delivers_intact_or_not_at_all() {
        let mut ch = LossyChannel::new(7, 0.2, 0.5);
        let msg: Vec<u64> = (0..16).map(|i| i * i).collect();
        for _ in 0..50 {
            let (got, _) = ch.transmit_with_retry(&msg, 64).unwrap();
            assert_eq!(got, msg, "a corrupted frame slipped past the checksum");
        }
        assert!(ch.stats.rejected > 0, "corruption never exercised");
        assert!(ch.stats.losses > 0, "loss never exercised");
        assert_eq!(ch.stats.delivered, 50);
    }

    #[test]
    fn configured_retry_budget_bounds_attempts() {
        let mut ch = LossyChannel::new(8, 1.0, 0.0).with_retry_budget(3);
        assert_eq!(ch.retry_budget(), 3);
        let msg: Vec<u64> = vec![9];
        assert_eq!(
            ch.transmit(&msg),
            Err(ChannelError::Exhausted { attempts: 3 })
        );
        assert_eq!(ch.stats.attempts, 3);
    }

    #[test]
    fn default_budget_applies_when_unconfigured() {
        let mut ch = LossyChannel::new(9, 1.0, 0.0);
        let msg: Vec<u64> = vec![1];
        assert_eq!(
            ch.transmit(&msg),
            Err(ChannelError::Exhausted {
                attempts: DEFAULT_RETRY_BUDGET
            })
        );
    }

    #[test]
    #[should_panic(expected = "retry budget")]
    fn zero_budget_is_rejected_at_configuration() {
        let _ = LossyChannel::new(10, 0.0, 0.0).with_retry_budget(0);
    }

    #[test]
    fn checksum_catches_every_single_bit_flip_and_truncation() {
        let msg: Vec<u64> = vec![0xDEAD, 0xBEEF, 42];
        let frame = encode_frame(&msg);
        for bit in 0..frame.len() * 8 {
            let bad = with_bit_flipped(&frame, bit);
            assert!(decode_frame::<Vec<u64>>(&bad).is_err(), "bit {bit}");
        }
        for len in 0..frame.len() {
            let bad = truncated(&frame, len);
            assert!(decode_frame::<Vec<u64>>(&bad).is_err(), "len {len}");
        }
        assert_eq!(decode_frame::<Vec<u64>>(&frame).unwrap(), msg);
    }
}
