//! In-memory hypergraphs: unweighted (inputs, ground truth) and weighted
//! (sparsifier outputs).

use std::collections::BTreeMap;

use crate::edge::HyperEdge;
use crate::graph::Graph;
use crate::VertexId;

/// A simple unweighted hypergraph: a set of distinct hyperedges over `[0, n)`.
#[derive(Clone, Debug, Default)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<HyperEdge>,
    index: BTreeMap<HyperEdge, usize>,
}

impl Hypergraph {
    /// An empty hypergraph on `n` vertices.
    pub fn new(n: usize) -> Hypergraph {
        Hypergraph {
            n,
            edges: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Builds from an edge list, ignoring duplicates.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = HyperEdge>) -> Hypergraph {
        let mut h = Hypergraph::new(n);
        for e in edges {
            h.add_edge(e);
        }
        h
    }

    /// View of a simple graph as a rank-2 hypergraph.
    pub fn from_graph(g: &Graph) -> Hypergraph {
        Hypergraph::from_edges(g.n(), g.edges().map(|(u, v)| HyperEdge::pair(u, v)))
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The largest edge cardinality present (2 for graphs; 0 if empty).
    pub fn max_rank(&self) -> usize {
        self.edges
            .iter()
            .map(|e| e.cardinality())
            .max()
            .unwrap_or(0)
    }

    /// Inserts a hyperedge; returns false if already present.
    ///
    /// # Panics
    /// Panics if any vertex is out of range.
    pub fn add_edge(&mut self, e: HyperEdge) -> bool {
        assert!(
            (*e.vertices().last().unwrap() as usize) < self.n,
            "vertex out of range"
        );
        if self.index.contains_key(&e) {
            return false;
        }
        self.index.insert(e.clone(), self.edges.len());
        self.edges.push(e);
        true
    }

    /// Membership test.
    pub fn has_edge(&self, e: &HyperEdge) -> bool {
        self.index.contains_key(e)
    }

    /// The hyperedges, in insertion order.
    #[inline]
    pub fn edges(&self) -> &[HyperEdge] {
        &self.edges
    }

    /// Vertex → incident edge indices (built on demand).
    pub fn incidence(&self) -> Vec<Vec<usize>> {
        let mut inc = vec![Vec::new(); self.n];
        for (i, e) in self.edges.iter().enumerate() {
            for &v in e.vertices() {
                inc[v as usize].push(i);
            }
        }
        inc
    }

    /// Degree of a vertex = number of incident hyperedges.
    pub fn degree(&self, v: VertexId) -> usize {
        self.edges.iter().filter(|e| e.contains(v)).count()
    }

    /// `|δ(S)|`: the number of hyperedges crossing the cut given by the
    /// indicator `in_s`.
    pub fn cut_size(&self, in_s: &[bool]) -> usize {
        assert_eq!(in_s.len(), self.n);
        self.edges
            .iter()
            .filter(|e| e.crosses(|v| in_s[v as usize]))
            .count()
    }

    /// Indices of the hyperedges in `δ(S)`.
    pub fn crossing(&self, in_s: &[bool]) -> Vec<usize> {
        assert_eq!(in_s.len(), self.n);
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.crosses(|v| in_s[v as usize]))
            .map(|(i, _)| i)
            .collect()
    }

    /// The sub-hypergraph with the edges at `remove` deleted (vertex set
    /// unchanged). Indices refer to [`edges`](Self::edges) order.
    pub fn remove_edges(&self, remove: &[usize]) -> Hypergraph {
        let mut dead = vec![false; self.edges.len()];
        for &i in remove {
            dead[i] = true;
        }
        Hypergraph::from_edges(
            self.n,
            self.edges
                .iter()
                .enumerate()
                .filter(|(i, _)| !dead[*i])
                .map(|(_, e)| e.clone()),
        )
    }

    /// The clique expansion: a simple graph with an edge for every vertex
    /// pair that co-occurs in some hyperedge. Removing a vertex set S
    /// disconnects the hypergraph iff it disconnects the clique expansion,
    /// so hypergraph vertex connectivity reduces to graph vertex
    /// connectivity of this expansion.
    pub fn clique_expansion(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for e in &self.edges {
            for (u, v) in e.pairs() {
                g.add_edge(u, v);
            }
        }
        g
    }
}

/// A weighted hypergraph — the output type of sparsifiers. Weights accumulate
/// when the same hyperedge is added twice.
#[derive(Clone, Debug, Default)]
pub struct WeightedHypergraph {
    n: usize,
    entries: BTreeMap<HyperEdge, f64>,
}

impl WeightedHypergraph {
    /// An empty weighted hypergraph on `n` vertices.
    pub fn new(n: usize) -> WeightedHypergraph {
        WeightedHypergraph {
            n,
            entries: BTreeMap::new(),
        }
    }

    /// All edges of an unweighted hypergraph with unit weight.
    pub fn unit(h: &Hypergraph) -> WeightedHypergraph {
        let mut w = WeightedHypergraph::new(h.n());
        for e in h.edges() {
            w.add(e.clone(), 1.0);
        }
        w
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct weighted hyperedges.
    pub fn edge_count(&self) -> usize {
        self.entries.len()
    }

    /// Adds `weight` to hyperedge `e` (inserting it if absent).
    pub fn add(&mut self, e: HyperEdge, weight: f64) {
        assert!((*e.vertices().last().unwrap() as usize) < self.n);
        assert!(weight > 0.0, "non-positive weight {weight}");
        *self.entries.entry(e).or_insert(0.0) += weight;
    }

    /// The weight of a hyperedge (0 if absent).
    pub fn weight(&self, e: &HyperEdge) -> f64 {
        self.entries.get(e).copied().unwrap_or(0.0)
    }

    /// Iterates `(edge, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&HyperEdge, f64)> {
        self.entries.iter().map(|(e, &w)| (e, w))
    }

    /// Total weight of hyperedges crossing the cut `in_s` — the quantity the
    /// sparsifier must preserve within `(1 ± ε)` (Definition 17).
    pub fn cut_weight(&self, in_s: &[bool]) -> f64 {
        assert_eq!(in_s.len(), self.n);
        self.entries
            .iter()
            .filter(|(e, _)| e.crosses(|v| in_s[v as usize]))
            .map(|(_, &w)| w)
            .sum()
    }

    /// Total weight of all hyperedges.
    pub fn total_weight(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Forgets weights (support hypergraph).
    pub fn support(&self) -> Hypergraph {
        Hypergraph::from_edges(self.n, self.entries.keys().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(a: u32, b: u32, c: u32) -> HyperEdge {
        HyperEdge::new(vec![a, b, c]).unwrap()
    }

    #[test]
    fn add_and_dedup() {
        let mut h = Hypergraph::new(5);
        assert!(h.add_edge(tri(0, 1, 2)));
        assert!(!h.add_edge(tri(2, 1, 0)), "duplicate accepted");
        assert!(h.has_edge(&tri(1, 0, 2)));
        assert_eq!(h.edge_count(), 1);
        assert_eq!(h.max_rank(), 3);
    }

    #[test]
    fn cut_size_counts_crossing_edges() {
        let h = Hypergraph::from_edges(
            4,
            vec![tri(0, 1, 2), HyperEdge::pair(2, 3), HyperEdge::pair(0, 1)],
        );
        // S = {0, 1}: tri crosses (2 outside), pair(2,3) doesn't, pair(0,1) doesn't.
        let in_s = [true, true, false, false];
        assert_eq!(h.cut_size(&in_s), 1);
        assert_eq!(h.crossing(&in_s), vec![0]);
        // S = {0}: tri crosses, pair(0,1) crosses.
        let in_s = [true, false, false, false];
        assert_eq!(h.cut_size(&in_s), 2);
    }

    #[test]
    fn remove_edges_by_index() {
        let h = Hypergraph::from_edges(4, vec![tri(0, 1, 2), HyperEdge::pair(2, 3)]);
        let h2 = h.remove_edges(&[0]);
        assert_eq!(h2.edge_count(), 1);
        assert!(h2.has_edge(&HyperEdge::pair(2, 3)));
    }

    #[test]
    fn clique_expansion_of_triangle_edge() {
        let h = Hypergraph::from_edges(4, vec![tri(0, 1, 3)]);
        let g = h.clique_expansion();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 3) && g.has_edge(1, 3));
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn degrees_and_incidence_agree() {
        let h = Hypergraph::from_edges(4, vec![tri(0, 1, 2), HyperEdge::pair(1, 3)]);
        let inc = h.incidence();
        for (v, inc_v) in inc.iter().enumerate() {
            assert_eq!(inc_v.len(), h.degree(v as u32), "vertex {v}");
        }
    }

    #[test]
    fn weighted_cut_accumulates() {
        let mut w = WeightedHypergraph::new(3);
        w.add(HyperEdge::pair(0, 1), 2.0);
        w.add(HyperEdge::pair(0, 1), 3.0);
        w.add(HyperEdge::pair(1, 2), 1.0);
        assert_eq!(w.edge_count(), 2);
        assert_eq!(w.weight(&HyperEdge::pair(0, 1)), 5.0);
        assert_eq!(w.cut_weight(&[true, false, false]), 5.0);
        assert_eq!(w.cut_weight(&[true, true, false]), 1.0);
        assert_eq!(w.total_weight(), 6.0);
    }

    #[test]
    fn unit_weighting_matches_cut_size() {
        let h = Hypergraph::from_edges(4, vec![tri(0, 1, 2), HyperEdge::pair(2, 3)]);
        let w = WeightedHypergraph::unit(&h);
        for mask in 1..(1u32 << 4) - 1 {
            let in_s: Vec<bool> = (0..4).map(|v| mask >> v & 1 == 1).collect();
            assert_eq!(w.cut_weight(&in_s), h.cut_size(&in_s) as f64, "mask {mask}");
        }
    }

    #[test]
    #[should_panic(expected = "non-positive weight")]
    fn rejects_nonpositive_weight() {
        let mut w = WeightedHypergraph::new(3);
        w.add(HyperEdge::pair(0, 1), 0.0);
    }
}
