//! Deterministic chaos campaigns: scripted fault schedules for soak tests.
//!
//! [`fault`](crate::fault) injects *one* fault and hands back the record;
//! this module composes many of them into a **campaign** — a seeded,
//! replayable schedule of faults fired at scripted update indices while a
//! pipeline ingests and answers. A campaign says nothing about *how* a
//! fault is applied: the harness (experiment E20, the resilience tests)
//! maps each [`ChaosFault`] onto the matching hook of the supervision
//! layer (`dgs_core::supervise`), the checkpoint store, or the WAL. That
//! keeps the production crates chaos-agnostic — they only ever see the
//! same typed errors and byte corruption real deployments see.
//!
//! Everything is deterministic from the campaign seed (in-tree
//! [`dgs_field::prng`]): a failing soak run replays bit-for-bit from its
//! `(name, seed)` pair.

use dgs_field::prng::*;
use dgs_obs::{Counter, MetricsSink};

/// One fault a chaos campaign can fire. The `shard` index addresses a
/// repetition of the supervised ensemble; stream-level indices are carried
/// by the surrounding [`ChaosEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosFault {
    /// The shard's next `attempts` sketch applies fail with a *retryable*
    /// `SketchError` — a transient fault the backoff/retry ladder should
    /// absorb without quarantining.
    ShardError {
        /// Target repetition.
        shard: usize,
        /// How many consecutive applies fail before the fault clears.
        attempts: u32,
    },
    /// The shard fails every apply until rebuilt — a poisoned shard that
    /// must be quarantined and recovered from snapshot + WAL replay.
    ShardPoison {
        /// Target repetition.
        shard: usize,
    },
    /// A *valid-looking* divergent update is applied to one shard only, so
    /// no typed error ever fires — only a scrub audit (rebuild from durable
    /// state and byte-compare) can catch it.
    SilentCorruption {
        /// Target repetition.
        shard: usize,
    },
    /// The shard's newest snapshot on disk is bit-corrupted; the next
    /// rebuild must detect it and fall back down the recovery ladder.
    CheckpointCorruption {
        /// Target repetition.
        shard: usize,
    },
    /// The WAL loses its last `bytes` bytes (torn tail), simulating a crash
    /// mid-append; resume must seal the tail and replay only durable state.
    WalTornTail {
        /// Bytes torn off the active segment's tail.
        bytes: usize,
    },
    /// The shard's next `queries` decode calls stall past any reasonable
    /// per-shard deadline, exercising the query-budget path.
    DecodeStall {
        /// Target repetition.
        shard: usize,
        /// Number of consecutive stalled queries.
        queries: u32,
    },
    /// `queries` back-to-back queries arrive at once (no stream positions
    /// between them), exercising the admission queue, quota, and brownout
    /// ladder of a serving layer. Targets no shard.
    LoadSpike {
        /// Queries in the burst.
        queries: u32,
    },
    /// A consumer holds its next `queries` answers for `millis` each
    /// (slow reader), keeping admission slots occupied and forcing
    /// depth-based brownout on everyone behind it. Targets no shard.
    SlowConsumer {
        /// Queries the slow consumer issues.
        queries: u32,
        /// Hold time per answer, in milliseconds.
        millis: u32,
    },
}

impl ChaosFault {
    /// Stable class label, used for metric labels and report rows.
    pub fn kind(&self) -> &'static str {
        match self {
            ChaosFault::ShardError { .. } => "shard-error",
            ChaosFault::ShardPoison { .. } => "shard-poison",
            ChaosFault::SilentCorruption { .. } => "silent-corruption",
            ChaosFault::CheckpointCorruption { .. } => "checkpoint-corruption",
            ChaosFault::WalTornTail { .. } => "wal-torn-tail",
            ChaosFault::DecodeStall { .. } => "decode-stall",
            ChaosFault::LoadSpike { .. } => "load-spike",
            ChaosFault::SlowConsumer { .. } => "slow-consumer",
        }
    }

    /// The shard a fault targets, when it targets one.
    pub fn shard(&self) -> Option<usize> {
        match *self {
            ChaosFault::ShardError { shard, .. }
            | ChaosFault::ShardPoison { shard }
            | ChaosFault::SilentCorruption { shard }
            | ChaosFault::CheckpointCorruption { shard }
            | ChaosFault::DecodeStall { shard, .. } => Some(shard),
            ChaosFault::WalTornTail { .. }
            | ChaosFault::LoadSpike { .. }
            | ChaosFault::SlowConsumer { .. } => None,
        }
    }
}

impl std::fmt::Display for ChaosFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ChaosFault::ShardError { shard, attempts } => {
                write!(f, "shard-error(shard={shard}, attempts={attempts})")
            }
            ChaosFault::ShardPoison { shard } => write!(f, "shard-poison(shard={shard})"),
            ChaosFault::SilentCorruption { shard } => {
                write!(f, "silent-corruption(shard={shard})")
            }
            ChaosFault::CheckpointCorruption { shard } => {
                write!(f, "checkpoint-corruption(shard={shard})")
            }
            ChaosFault::WalTornTail { bytes } => write!(f, "wal-torn-tail(bytes={bytes})"),
            ChaosFault::DecodeStall { shard, queries } => {
                write!(f, "decode-stall(shard={shard}, queries={queries})")
            }
            ChaosFault::LoadSpike { queries } => write!(f, "load-spike(queries={queries})"),
            ChaosFault::SlowConsumer { queries, millis } => {
                write!(f, "slow-consumer(queries={queries}, millis={millis})")
            }
        }
    }
}

/// A fault scheduled at a stream position: fire after `at_update` updates
/// have been pushed (0 = before the first update).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Stream position the fault fires at.
    pub at_update: usize,
    /// The fault to fire.
    pub fault: ChaosFault,
}

/// A named, seeded, replayable fault schedule.
#[derive(Clone, Debug)]
pub struct ChaosCampaign {
    /// Campaign name (report rows, metric labels).
    pub name: String,
    /// Seed the schedule (and any seeded harness around it) derives from.
    pub seed: u64,
    /// The scripted events, in no particular order; the scheduler sorts.
    pub events: Vec<ChaosEvent>,
}

impl ChaosCampaign {
    /// An empty campaign to script by hand with [`at`](Self::at).
    pub fn new(name: &str, seed: u64) -> ChaosCampaign {
        ChaosCampaign {
            name: name.to_string(),
            seed,
            events: Vec::new(),
        }
    }

    /// Adds one scripted event (builder style).
    pub fn at(mut self, at_update: usize, fault: ChaosFault) -> ChaosCampaign {
        self.events.push(ChaosEvent { at_update, fault });
        self
    }

    /// Generates a campaign of `count` faults drawn from `palette` at
    /// uniform positions in `[0, n_updates)`, targeting shards in
    /// `[0, shards)`. `palette` entries are templates: their shard field is
    /// re-rolled per event, other parameters are kept. Deterministic from
    /// `seed`; equal inputs generate identical schedules.
    ///
    /// # Panics
    /// Panics if `palette` is empty, or `shards`/`n_updates` is zero —
    /// campaign-construction bugs, not runtime faults.
    pub fn generate(
        name: &str,
        seed: u64,
        n_updates: usize,
        shards: usize,
        palette: &[ChaosFault],
        count: usize,
    ) -> ChaosCampaign {
        assert!(!palette.is_empty(), "empty fault palette");
        assert!(shards >= 1, "need at least one shard");
        assert!(n_updates >= 1, "need a non-empty stream");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let template = palette[rng.gen_range(0..palette.len())];
            let shard = rng.gen_range(0..shards);
            let fault = match template {
                ChaosFault::ShardError { attempts, .. } => {
                    ChaosFault::ShardError { shard, attempts }
                }
                ChaosFault::ShardPoison { .. } => ChaosFault::ShardPoison { shard },
                ChaosFault::SilentCorruption { .. } => ChaosFault::SilentCorruption { shard },
                ChaosFault::CheckpointCorruption { .. } => {
                    ChaosFault::CheckpointCorruption { shard }
                }
                ChaosFault::WalTornTail { bytes } => ChaosFault::WalTornTail { bytes },
                ChaosFault::DecodeStall { queries, .. } => {
                    ChaosFault::DecodeStall { shard, queries }
                }
                ChaosFault::LoadSpike { queries } => ChaosFault::LoadSpike { queries },
                ChaosFault::SlowConsumer { queries, millis } => {
                    ChaosFault::SlowConsumer { queries, millis }
                }
            };
            events.push(ChaosEvent {
                at_update: rng.gen_range(0..n_updates),
                fault,
            });
        }
        ChaosCampaign {
            name: name.to_string(),
            seed,
            events,
        }
    }
}

/// Walks a [`ChaosCampaign`] alongside a stream: the harness calls
/// [`due`](Self::due) as its position advances and fires whatever comes
/// back. Events are delivered exactly once, in `at_update` order (ties in
/// scripted order).
#[derive(Clone, Debug)]
pub struct ChaosScheduler {
    events: Vec<ChaosEvent>,
    cursor: usize,
    fired: Counter,
    by_kind: std::collections::BTreeMap<&'static str, Counter>,
}

impl ChaosScheduler {
    /// A scheduler over `campaign`'s events, sorted by position.
    pub fn new(campaign: &ChaosCampaign) -> ChaosScheduler {
        let mut events = campaign.events.clone();
        events.sort_by_key(|e| e.at_update);
        ChaosScheduler {
            events,
            cursor: 0,
            fired: Counter::null(),
            by_kind: std::collections::BTreeMap::new(),
        }
    }

    /// Attach metric handles resolved from `sink`: every delivered event
    /// increments `dgs_hypergraph_chaos_fired` and
    /// `dgs_hypergraph_chaos_fired_kind{kind="<kind>"}`. Default is the
    /// null sink.
    pub fn set_sink(&mut self, sink: &MetricsSink) {
        self.fired = sink.counter("dgs_hypergraph_chaos_fired");
        self.by_kind = self
            .events
            .iter()
            .map(|e| e.fault.kind())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|kind| {
                (
                    kind,
                    sink.counter_labelled("dgs_hypergraph_chaos_fired_kind", &[("kind", kind)]),
                )
            })
            .collect();
    }

    /// Every not-yet-delivered event with `at_update <= position`, in
    /// order. Subsequent calls never re-deliver.
    pub fn due(&mut self, position: usize) -> Vec<ChaosEvent> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at_update <= position {
            self.cursor += 1;
        }
        let fired = &self.events[start..self.cursor];
        for e in fired {
            self.fired.inc();
            if let Some(c) = self.by_kind.get(e.fault.kind()) {
                c.inc();
            }
            // Stamp the fault injection into any ambient trace (inert
            // otherwise), so a postmortem's recent-events window shows the
            // chaos that preceded the failure.
            dgs_trace::mark(e.fault.kind());
        }
        fired.to_vec()
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Total events in the campaign.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the campaign schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_events_fire_once_in_order() {
        let campaign = ChaosCampaign::new("scripted", 1)
            .at(10, ChaosFault::ShardPoison { shard: 1 })
            .at(3, ChaosFault::WalTornTail { bytes: 5 })
            .at(10, ChaosFault::SilentCorruption { shard: 0 });
        let mut sched = ChaosScheduler::new(&campaign);
        assert_eq!(sched.len(), 3);
        assert_eq!(sched.due(2), vec![]);
        assert_eq!(
            sched.due(3),
            vec![ChaosEvent {
                at_update: 3,
                fault: ChaosFault::WalTornTail { bytes: 5 }
            }]
        );
        assert_eq!(sched.due(3), vec![], "no re-delivery");
        let rest = sched.due(usize::MAX);
        assert_eq!(rest.len(), 2);
        assert!(rest.iter().all(|e| e.at_update == 10));
        assert_eq!(sched.remaining(), 0);
    }

    #[test]
    fn generation_is_deterministic_and_in_bounds() {
        let palette = [
            ChaosFault::ShardError {
                shard: 0,
                attempts: 3,
            },
            ChaosFault::ShardPoison { shard: 0 },
            ChaosFault::DecodeStall {
                shard: 0,
                queries: 2,
            },
        ];
        let a = ChaosCampaign::generate("gen", 42, 1_000, 4, &palette, 25);
        let b = ChaosCampaign::generate("gen", 42, 1_000, 4, &palette, 25);
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.len(), 25);
        for e in &a.events {
            assert!(e.at_update < 1_000);
            if let Some(shard) = e.fault.shard() {
                assert!(shard < 4);
            }
        }
        let c = ChaosCampaign::generate("gen", 43, 1_000, 4, &palette, 25);
        assert_ne!(a.events, c.events, "different seeds, different schedules");
    }

    #[test]
    fn template_parameters_survive_generation() {
        let palette = [ChaosFault::ShardError {
            shard: 0,
            attempts: 7,
        }];
        let c = ChaosCampaign::generate("params", 5, 100, 3, &palette, 10);
        for e in &c.events {
            match e.fault {
                ChaosFault::ShardError { attempts, .. } => assert_eq!(attempts, 7),
                other => panic!("unexpected fault {other}"),
            }
        }
    }

    #[test]
    fn load_events_target_no_shard_and_keep_parameters() {
        let palette = [
            ChaosFault::LoadSpike { queries: 12 },
            ChaosFault::SlowConsumer {
                queries: 3,
                millis: 40,
            },
        ];
        let c = ChaosCampaign::generate("load", 9, 500, 4, &palette, 20);
        assert_eq!(c.events.len(), 20);
        for e in &c.events {
            assert_eq!(e.fault.shard(), None);
            match e.fault {
                ChaosFault::LoadSpike { queries } => {
                    assert_eq!(queries, 12);
                    assert_eq!(e.fault.kind(), "load-spike");
                }
                ChaosFault::SlowConsumer { queries, millis } => {
                    assert_eq!((queries, millis), (3, 40));
                    assert_eq!(e.fault.kind(), "slow-consumer");
                }
                other => panic!("unexpected fault {other}"),
            }
        }
    }

    #[test]
    fn scheduler_metrics_count_fired_events() {
        let campaign = ChaosCampaign::new("metrics", 2)
            .at(1, ChaosFault::ShardPoison { shard: 0 })
            .at(2, ChaosFault::ShardPoison { shard: 1 })
            .at(9, ChaosFault::WalTornTail { bytes: 1 });
        let registry = dgs_obs::Registry::new();
        let mut sched = ChaosScheduler::new(&campaign);
        sched.set_sink(&registry.sink());
        let _ = sched.due(5);
        assert_eq!(
            registry.counter_value("dgs_hypergraph_chaos_fired"),
            Some(2)
        );
        assert_eq!(
            registry.counter_value("dgs_hypergraph_chaos_fired_kind{kind=\"shard-poison\"}"),
            Some(2)
        );
        assert_eq!(
            registry.counter_value("dgs_hypergraph_chaos_fired_kind{kind=\"wal-torn-tail\"}"),
            Some(0),
            "registered at set_sink, not yet fired"
        );
    }
}
