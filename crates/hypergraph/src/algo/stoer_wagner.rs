//! Stoer–Wagner global minimum cut for weighted undirected graphs.
//!
//! O(n^3) matrix implementation — the experiments use it on graphs with at
//! most a few hundred vertices (ground truth, strength recursion, and
//! sparsifier quality checks). Parallel edges are accumulated into a single
//! weight.

use crate::VertexId;

/// Global minimum cut of the weighted graph on `n` vertices.
///
/// Returns `(cut_weight, side)` where `side[v]` is true for vertices on one
/// shore of an optimal cut. For a disconnected graph the cut weight is 0 and
/// the side is one connected component. Returns `None` when `n < 2` (no cut
/// exists).
pub fn stoer_wagner(n: usize, edges: &[(VertexId, VertexId, f64)]) -> Option<(f64, Vec<bool>)> {
    if n < 2 {
        return None;
    }
    // Accumulated weight matrix.
    let mut w = vec![vec![0.0f64; n]; n];
    for &(u, v, wt) in edges {
        assert!(wt >= 0.0, "negative weight {wt}");
        assert_ne!(u, v, "self-loop in stoer_wagner");
        w[u as usize][v as usize] += wt;
        w[v as usize][u as usize] += wt;
    }

    // groups[i] = original vertices merged into super-vertex i.
    let mut groups: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best = f64::INFINITY;
    let mut best_group: Vec<usize> = Vec::new();

    while active.len() > 1 {
        // Maximum-adjacency ordering from an arbitrary start.
        let m = active.len();
        let mut in_a = vec![false; m];
        let mut weight_to_a = vec![0.0f64; m];
        let mut order = Vec::with_capacity(m);
        for _ in 0..m {
            let mut pick = usize::MAX;
            for i in 0..m {
                if !in_a[i] && (pick == usize::MAX || weight_to_a[i] > weight_to_a[pick]) {
                    pick = i;
                }
            }
            in_a[pick] = true;
            order.push(pick);
            for i in 0..m {
                if !in_a[i] {
                    weight_to_a[i] += w[active[pick]][active[i]];
                }
            }
        }
        let t_local = order[m - 1];
        let s_local = order[m - 2];
        let t = active[t_local];
        let s = active[s_local];

        // Cut of the phase: ({t}, rest) in the current contracted graph.
        let cut_of_phase = weight_to_a[t_local];
        if cut_of_phase < best {
            best = cut_of_phase;
            best_group = groups[t].clone();
        }

        // Contract t into s.
        let t_group = std::mem::take(&mut groups[t]);
        groups[s].extend(t_group);
        for &x in &active {
            if x != s && x != t {
                w[s][x] += w[t][x];
                w[x][s] = w[s][x];
            }
        }
        active.retain(|&x| x != t);
    }

    let mut side = vec![false; n];
    for &v in &best_group {
        side[v] = true;
    }
    Some((best, side))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(edges: &[(u32, u32)]) -> Vec<(u32, u32, f64)> {
        edges.iter().map(|&(u, v)| (u, v, 1.0)).collect()
    }

    fn cut_weight(_n: usize, edges: &[(u32, u32, f64)], side: &[bool]) -> f64 {
        edges
            .iter()
            .filter(|&&(u, v, _)| side[u as usize] != side[v as usize])
            .map(|&(_, _, w)| w)
            .sum()
    }

    fn brute_min_cut(n: usize, edges: &[(u32, u32, f64)]) -> f64 {
        let mut best = f64::INFINITY;
        for mask in 1..(1u32 << n) - 1 {
            let side: Vec<bool> = (0..n).map(|v| mask >> v & 1 == 1).collect();
            best = best.min(cut_weight(n, edges, &side));
        }
        best
    }

    #[test]
    fn single_edge() {
        let (c, side) = stoer_wagner(2, &unit(&[(0, 1)])).unwrap();
        assert_eq!(c, 1.0);
        assert_ne!(side[0], side[1]);
    }

    #[test]
    fn bridge_between_triangles() {
        let edges = unit(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let (c, side) = stoer_wagner(6, &edges).unwrap();
        assert_eq!(c, 1.0);
        assert_eq!(cut_weight(6, &edges, &side), 1.0);
        assert_eq!(side[0], side[1]);
        assert_eq!(side[1], side[2]);
        assert_ne!(side[2], side[3]);
    }

    #[test]
    fn cycle_has_cut_two() {
        let n = 8;
        let edges: Vec<_> = (0..n as u32)
            .map(|i| (i, (i + 1) % n as u32, 1.0))
            .collect();
        let (c, _) = stoer_wagner(n, &edges).unwrap();
        assert_eq!(c, 2.0);
    }

    #[test]
    fn complete_graph_cut_is_n_minus_1() {
        let n = 6;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                edges.push((u, v, 1.0));
            }
        }
        let (c, side) = stoer_wagner(n, &edges).unwrap();
        assert_eq!(c, (n - 1) as f64);
        assert_eq!(side.iter().filter(|&&b| b).count().min(n - 1), 1);
    }

    #[test]
    fn weighted_bottleneck() {
        let edges = vec![(0, 1, 10.0), (1, 2, 0.5), (2, 3, 10.0)];
        let (c, side) = stoer_wagner(4, &edges).unwrap();
        assert_eq!(c, 0.5);
        assert_eq!(cut_weight(4, &edges, &side), 0.5);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let (c, side) = stoer_wagner(4, &unit(&[(0, 1), (2, 3)])).unwrap();
        assert_eq!(c, 0.0);
        assert!(side.iter().any(|&b| b) && side.iter().any(|&b| !b));
        assert_eq!(cut_weight(4, &unit(&[(0, 1), (2, 3)]), &side), 0.0);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let edges = vec![(0, 1, 1.0), (0, 1, 1.0), (1, 2, 1.0)];
        let (c, _) = stoer_wagner(3, &edges).unwrap();
        assert_eq!(c, 1.0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use dgs_field::prng::*;
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..30 {
            let n = rng.gen_range(3..9);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    if rng.gen_bool(0.55) {
                        edges.push((u, v, rng.gen_range(1..6) as f64));
                    }
                }
            }
            let (c, side) = stoer_wagner(n, &edges).unwrap();
            let brute = brute_min_cut(n, &edges);
            assert!(
                (c - brute).abs() < 1e-9,
                "trial {trial}: sw {c} vs brute {brute}"
            );
            assert!((cut_weight(n, &edges, &side) - brute).abs() < 1e-9);
        }
    }

    #[test]
    fn n_below_two_is_none() {
        assert!(stoer_wagner(0, &[]).is_none());
        assert!(stoer_wagner(1, &[]).is_none());
    }
}
