//! Connected components for graphs and hypergraphs.

use super::union_find::UnionFind;
use crate::graph::Graph;
use crate::hypergraph::Hypergraph;

/// Component label (representative vertex id) for every vertex.
pub fn component_labels(g: &Graph) -> Vec<u32> {
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    uf.labels()
}

/// Number of connected components (each isolated vertex is a component; the
/// empty graph has 0).
pub fn component_count(g: &Graph) -> usize {
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    uf.component_count()
}

/// True iff the graph is connected (vacuously true for n <= 1).
pub fn is_connected(g: &Graph) -> bool {
    component_count(g) <= 1
}

/// Component labels for a hypergraph: a hyperedge merges all its vertices.
pub fn hyper_component_labels(h: &Hypergraph) -> Vec<u32> {
    let mut uf = UnionFind::new(h.n());
    for e in h.edges() {
        let vs = e.vertices();
        for w in vs.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    uf.labels()
}

/// Number of connected components of a hypergraph.
pub fn hyper_component_count(h: &Hypergraph) -> usize {
    let mut uf = UnionFind::new(h.n());
    for e in h.edges() {
        let vs = e.vertices();
        for w in vs.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    uf.component_count()
}

/// True iff the hypergraph is connected.
pub fn is_hyper_connected(h: &Hypergraph) -> bool {
    hyper_component_count(h) <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::HyperEdge;

    #[test]
    fn path_is_connected() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_connected(&g));
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn isolated_vertices_count() {
        let g = Graph::from_edges(5, &[(0, 1)]);
        assert_eq!(component_count(&g), 4);
        assert!(!is_connected(&g));
        let labels = component_labels(&g);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[2], labels[3]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
    }

    #[test]
    fn hyperedge_merges_all_vertices() {
        let h = Hypergraph::from_edges(5, vec![HyperEdge::new(vec![0, 1, 2, 3]).unwrap()]);
        assert_eq!(hyper_component_count(&h), 2); // {0,1,2,3} and {4}
        let h2 = Hypergraph::from_edges(
            5,
            vec![
                HyperEdge::new(vec![0, 1, 2]).unwrap(),
                HyperEdge::new(vec![2, 3, 4]).unwrap(),
            ],
        );
        assert!(is_hyper_connected(&h2));
    }

    #[test]
    fn hyper_labels_match_component_structure() {
        let h = Hypergraph::from_edges(
            6,
            vec![
                HyperEdge::new(vec![0, 1]).unwrap(),
                HyperEdge::new(vec![3, 4, 5]).unwrap(),
            ],
        );
        let labels = hyper_component_labels(&h);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[2], labels[0]);
    }
}
