//! Exact reference algorithms.
//!
//! These serve three roles: (1) post-processing inside the paper's
//! constructions (e.g. running an exact vertex-connectivity algorithm on the
//! decoded subgraph `H` in Theorem 8), (2) ground truth for every
//! experiment, and (3) the offline baselines that the sketch algorithms are
//! compared against.

pub mod components;
pub mod degeneracy;
pub mod dfs;
pub mod dinic;
pub mod gomory_hu;
pub mod hyper_cut;
pub mod spanning;
pub mod stoer_wagner;
pub mod strength;
pub mod union_find;
pub mod vertex_conn;

pub use components::{
    component_count, component_labels, hyper_component_count, hyper_component_labels, is_connected,
    is_hyper_connected,
};
pub use degeneracy::{cut_degeneracy, degeneracy, is_d_degenerate, k_core};
pub use dfs::{articulation_points, bridges, is_biconnected};
pub use dinic::Dinic;
pub use gomory_hu::GomoryHuTree;
pub use hyper_cut::{
    brute_force_min_cut, hyper_edge_connectivity, hyper_local_edge_connectivity, hyper_min_cut,
    weighted_min_cut_value,
};
pub use spanning::{hyper_spanning_subgraph, spanning_forest};
pub use stoer_wagner::stoer_wagner;
pub use strength::{
    edge_strengths, hyper_edge_strengths, lambda_e, light_k_exact, local_edge_connectivity,
};
pub use union_find::UnionFind;
pub use vertex_conn::{
    disconnects, vertex_connectivity, vertex_connectivity_bounded, vertex_connectivity_pair,
};
