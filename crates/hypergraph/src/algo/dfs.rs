//! DFS-based connectivity structure: articulation points, bridges, and
//! biconnected components.
//!
//! These are the exact `k = 1` special cases of the paper's queries —
//! an articulation point is a size-1 disconnecting set (Theorem 4 with
//! `k = 1`), a bridge is an edge with `λ_e = 1` (the first peel of
//! `light_1`) — and serve as fast ground truth in tests and experiments.

use crate::graph::Graph;
use crate::VertexId;

/// The classic lowpoint computation, iteratively (no recursion depth
/// limits) over all components.
struct LowpointDfs<'a> {
    g: &'a Graph,
    disc: Vec<u32>,
    low: Vec<u32>,
    parent: Vec<u32>,
    timer: u32,
    articulation: Vec<bool>,
    bridges: Vec<(VertexId, VertexId)>,
}

const UNSET: u32 = u32::MAX;

impl<'a> LowpointDfs<'a> {
    fn run(g: &'a Graph) -> LowpointDfs<'a> {
        let n = g.n();
        let mut s = LowpointDfs {
            g,
            disc: vec![UNSET; n],
            low: vec![UNSET; n],
            parent: vec![UNSET; n],
            timer: 0,
            articulation: vec![false; n],
            bridges: Vec::new(),
        };
        for root in 0..n as VertexId {
            if s.disc[root as usize] == UNSET {
                s.dfs_from(root);
            }
        }
        s
    }

    fn dfs_from(&mut self, root: VertexId) {
        // Explicit stack of (vertex, neighbor index) frames.
        let mut stack: Vec<(VertexId, usize)> = vec![(root, 0)];
        self.disc[root as usize] = self.timer;
        self.low[root as usize] = self.timer;
        self.timer += 1;
        let mut root_children = 0;

        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            let neighbors = self.g.neighbors(v);
            if *idx < neighbors.len() {
                let u = neighbors[*idx];
                *idx += 1;
                if self.disc[u as usize] == UNSET {
                    self.parent[u as usize] = v;
                    self.disc[u as usize] = self.timer;
                    self.low[u as usize] = self.timer;
                    self.timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((u, 0));
                } else if u != self.parent[v as usize] {
                    // Back edge (parallel edges don't exist in simple graphs;
                    // a single parent edge is skipped once, which is correct
                    // because simple graphs have no parallel parent edges).
                    self.low[v as usize] = self.low[v as usize].min(self.disc[u as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    self.low[p as usize] = self.low[p as usize].min(self.low[v as usize]);
                    if self.low[v as usize] > self.disc[p as usize] {
                        self.bridges.push((p.min(v), p.max(v)));
                    }
                    if p != root && self.low[v as usize] >= self.disc[p as usize] {
                        self.articulation[p as usize] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            self.articulation[root as usize] = true;
        }
    }
}

/// All articulation points (cut vertices): vertices whose removal increases
/// the number of connected components.
pub fn articulation_points(g: &Graph) -> Vec<VertexId> {
    let s = LowpointDfs::run(g);
    (0..g.n() as VertexId)
        .filter(|&v| s.articulation[v as usize])
        .collect()
}

/// All bridges: edges whose removal increases the component count
/// (equivalently, edges with `λ_e = 1`). Returned as `(u, v)` with `u < v`,
/// sorted.
pub fn bridges(g: &Graph) -> Vec<(VertexId, VertexId)> {
    let mut b = LowpointDfs::run(g).bridges;
    b.sort_unstable();
    b
}

/// True iff the connected graph remains connected after removing any one
/// vertex (i.e. κ(G) >= 2), vacuously false if already disconnected.
pub fn is_biconnected(g: &Graph) -> bool {
    if g.n() <= 2 {
        return g.n() == 2 && g.has_edge(0, 1);
    }
    super::components::is_connected(g) && articulation_points(g).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::strength::lambda_e;
    use crate::algo::vertex_conn::disconnects;
    use crate::generators::{gnp, grid, harary, random_tree};
    use crate::hypergraph::Hypergraph;
    use dgs_field::prng::*;

    #[test]
    fn path_internals_are_articulation_points() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(articulation_points(&g), vec![1, 2, 3]);
        assert_eq!(bridges(&g).len(), 4);
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn cycle_has_none() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(articulation_points(&g).is_empty());
        assert!(bridges(&g).is_empty());
        assert!(is_biconnected(&g));
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert_eq!(articulation_points(&g), vec![2]);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn every_tree_edge_is_a_bridge() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_tree(20, &mut rng);
        assert_eq!(bridges(&g).len(), 19);
    }

    #[test]
    fn harary_graphs_are_biconnected() {
        for k in 2..5 {
            assert!(is_biconnected(&harary(k, 11)), "H_{{{k},11}}");
        }
        assert!(!is_biconnected(&harary(1, 11)));
    }

    #[test]
    fn matches_removal_ground_truth_on_random_graphs() {
        use crate::algo::components::component_count;
        let mut rng = StdRng::seed_from_u64(2);
        for trial in 0..20 {
            let n = rng.gen_range(4..12);
            let g = gnp(n, rng.gen_range(0.2..0.6), &mut rng);
            let aps: std::collections::BTreeSet<u32> =
                articulation_points(&g).into_iter().collect();
            let base = component_count(&g);
            for v in 0..n as u32 {
                // Articulation = removal increases the component count
                // (discounting the removed vertex itself, which becomes
                // isolated in `filter_vertices`).
                let mut keep = vec![true; n];
                keep[v as usize] = false;
                let after = component_count(&g.filter_vertices(&keep)) - 1;
                assert_eq!(aps.contains(&v), after > base, "trial {trial} vertex {v}");
            }
            // On connected graphs the Theorem 4 single-vertex query agrees.
            if base == 1 {
                for v in 0..n as u32 {
                    assert_eq!(aps.contains(&v), disconnects(&g, &[v]));
                }
            }
        }
    }

    #[test]
    fn bridges_are_exactly_lambda_1_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..10 {
            let n = rng.gen_range(4..10);
            let g = gnp(n, 0.4, &mut rng);
            let h = Hypergraph::from_graph(&g);
            let bs: std::collections::BTreeSet<(u32, u32)> = bridges(&g).into_iter().collect();
            for (idx, e) in h.edges().iter().enumerate() {
                let is_bridge = bs.contains(&e.as_pair());
                assert_eq!(
                    is_bridge,
                    lambda_e(&h, idx, 2) == 1,
                    "trial {trial} edge {e:?}"
                );
            }
        }
    }

    #[test]
    fn grid_is_biconnected() {
        assert!(is_biconnected(&grid(4, 4)));
        assert!(bridges(&grid(4, 4)).is_empty());
    }

    #[test]
    fn tiny_cases() {
        assert!(!is_biconnected(&Graph::new(0)));
        assert!(!is_biconnected(&Graph::new(1)));
        assert!(!is_biconnected(&Graph::new(2)));
        assert!(is_biconnected(&Graph::complete(2)));
        assert!(is_biconnected(&Graph::complete(3)));
        assert!(articulation_points(&Graph::new(3)).is_empty());
    }
}
