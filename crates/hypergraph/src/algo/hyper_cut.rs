//! Hypergraph cut machinery: local edge connectivity via flow, global
//! minimum cuts (unweighted and weighted), and brute-force validation.
//!
//! The flow network for hyperedge cuts is the standard incidence gadget:
//! every hyperedge `e` becomes an arc `e_in -> e_out` of capacity `w(e)`;
//! every incidence `v ∈ e` becomes infinite arcs `v -> e_in` and
//! `e_out -> v`. A `u`–`v` max flow then equals the minimum number (weight)
//! of hyperedges whose removal separates `u` from `v`.
//!
//! The weighted global minimum cut uses Queyranne's symmetric submodular
//! minimization (the hypergraph generalization of Stoer–Wagner): repeatedly
//! build a maximum-adjacency-style ordering with key
//! `f(W ∪ {u}) - f({u})`, take the pendant pair `(s, t)`, record the cut
//! `({t}, rest)`, and contract. Correctness for arbitrary symmetric
//! submodular `f` — the hypergraph cut function in particular — is
//! Queyranne (1998); we additionally brute-force-validate it in tests.

use super::components::{hyper_component_count, hyper_component_labels};
use super::dinic::Dinic;
use crate::hypergraph::{Hypergraph, WeightedHypergraph};
use crate::VertexId;

/// Minimum number of hyperedges separating `u` from `v`, capped at `limit`.
/// Returns 0 when `u` and `v` are in different components.
pub fn hyper_local_edge_connectivity(
    h: &Hypergraph,
    u: VertexId,
    v: VertexId,
    limit: usize,
) -> usize {
    assert_ne!(u, v);
    let n = h.n();
    let m = h.edge_count();
    let inf = (m as u64) + 1;
    let mut d = Dinic::new(n + 2 * m);
    for (i, e) in h.edges().iter().enumerate() {
        let e_in = n + 2 * i;
        let e_out = n + 2 * i + 1;
        d.add_edge(e_in, e_out, 1);
        for &x in e.vertices() {
            d.add_edge(x as usize, e_in, inf);
            d.add_edge(e_out, x as usize, inf);
        }
    }
    d.max_flow(u as usize, v as usize, limit as u64) as usize
}

/// Global minimum hyperedge cut: `(value, side)` with `side` one shore.
/// Returns `None` for `n < 2`. Disconnected hypergraphs have value 0.
pub fn hyper_min_cut(h: &Hypergraph) -> Option<(usize, Vec<bool>)> {
    let n = h.n();
    if n < 2 {
        return None;
    }
    if hyper_component_count(h) > 1 {
        let labels = hyper_component_labels(h);
        let side: Vec<bool> = labels.iter().map(|&l| l == labels[0]).collect();
        return Some((0, side));
    }
    // Fix v0 = 0; the global min cut separates 0 from some vertex.
    let m = h.edge_count();
    let inf = (m as u64) + 1;
    let mut best = usize::MAX;
    let mut best_side = vec![false; n];
    for t in 1..n as VertexId {
        let mut d = Dinic::new(n + 2 * m);
        for (i, e) in h.edges().iter().enumerate() {
            let e_in = n + 2 * i;
            let e_out = n + 2 * i + 1;
            d.add_edge(e_in, e_out, 1);
            for &x in e.vertices() {
                d.add_edge(x as usize, e_in, inf);
                d.add_edge(e_out, x as usize, inf);
            }
        }
        let f = d.max_flow(0, t as usize, best as u64) as usize;
        if f < best {
            best = f;
            let reach = d.min_cut_side(0);
            best_side = reach[..n].to_vec();
        }
    }
    Some((best, best_side))
}

/// The hyperedge connectivity (global min cut value; 0 if disconnected).
pub fn hyper_edge_connectivity(h: &Hypergraph) -> usize {
    match hyper_min_cut(h) {
        Some((v, _)) => v,
        None => 0,
    }
}

/// Exhaustive minimum cut for hypergraphs with `n <= 24` vertices — the
/// validation oracle in tests.
pub fn brute_force_min_cut(h: &Hypergraph) -> Option<(usize, Vec<bool>)> {
    let n = h.n();
    if n < 2 {
        return None;
    }
    assert!(n <= 24, "brute force limited to n <= 24 (got {n})");
    let mut best = usize::MAX;
    let mut best_side = Vec::new();
    // Fix vertex 0 on the false side to halve the enumeration.
    for mask in 1u32..(1 << (n - 1)) {
        let side: Vec<bool> = (0..n).map(|v| v > 0 && mask >> (v - 1) & 1 == 1).collect();
        let c = h.cut_size(&side);
        if c < best {
            best = c;
            best_side = side;
        }
    }
    Some((best, best_side))
}

/// Weighted global minimum cut value of a weighted hypergraph (Queyranne).
/// Returns `None` for `n < 2`; 0 when disconnected.
pub fn weighted_min_cut_value(w: &WeightedHypergraph) -> Option<f64> {
    weighted_min_cut(w).map(|(v, _)| v)
}

/// Weighted global minimum cut `(value, side)` of a weighted hypergraph.
pub fn weighted_min_cut(w: &WeightedHypergraph) -> Option<(f64, Vec<bool>)> {
    let n = w.n();
    if n < 2 {
        return None;
    }
    // Contracted state: edges as sorted vertex lists over active vertices.
    let mut edges: Vec<(Vec<u32>, f64)> = w
        .iter()
        .map(|(e, wt)| (e.vertices().to_vec(), wt))
        .collect();
    let mut groups: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut active: Vec<u32> = (0..n as u32).collect();

    let mut best = f64::INFINITY;
    let mut best_group: Vec<usize> = Vec::new();

    while active.len() > 1 {
        let (s, t, cut_of_phase) = queyranne_phase(&active, &edges);
        if cut_of_phase < best {
            best = cut_of_phase;
            best_group = groups[t as usize].clone();
        }
        // Contract t into s.
        let t_group = std::mem::take(&mut groups[t as usize]);
        groups[s as usize].extend(t_group);
        let mut merged: Vec<(Vec<u32>, f64)> = Vec::with_capacity(edges.len());
        for (mut vs, wt) in edges.drain(..) {
            for v in vs.iter_mut() {
                if *v == t {
                    *v = s;
                }
            }
            vs.sort_unstable();
            vs.dedup();
            if vs.len() >= 2 {
                merged.push((vs, wt));
            }
        }
        edges = merged;
        active.retain(|&x| x != t);
    }

    let mut side = vec![false; n];
    for &v in &best_group {
        side[v] = true;
    }
    Some((best, side))
}

/// One Queyranne phase: returns the pendant pair `(s, t)` and
/// `f({t})` in the current contracted hypergraph.
fn queyranne_phase(active: &[u32], edges: &[(Vec<u32>, f64)]) -> (u32, u32, f64) {
    let m = active.len();
    debug_assert!(m >= 2);
    let max_id = *active.iter().max().unwrap() as usize + 1;
    let mut pos = vec![usize::MAX; max_id];
    for (i, &v) in active.iter().enumerate() {
        pos[v as usize] = i;
    }

    // Per-candidate incident edge lists.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (ei, (vs, _)) in edges.iter().enumerate() {
        for &v in vs {
            incident[pos[v as usize]].push(ei);
        }
    }
    // Weighted degree f({u}).
    let degree: Vec<f64> = (0..m)
        .map(|i| incident[i].iter().map(|&e| edges[e].1).sum())
        .collect();

    let mut in_w = vec![false; m];
    let mut in_w_count = vec![0usize; edges.len()]; // |e ∩ W|
    let mut order = Vec::with_capacity(m);

    // Start from the first active vertex.
    let start = 0;
    add_to_w(start, &mut in_w, &mut in_w_count, &incident);
    order.push(start);

    for _ in 1..m {
        // key(u) = Δ(u) - f({u}) where
        // Δ(u) = Σ_{e∋u} w_e ([e ⊄ W∪{u}] - [e∩W ≠ ∅]); minimize key.
        let mut pick = usize::MAX;
        let mut pick_key = f64::INFINITY;
        for u in 0..m {
            if in_w[u] {
                continue;
            }
            let mut delta = 0.0;
            for &e in &incident[u] {
                let (vs, wt) = &edges[e];
                let inside = in_w_count[e];
                let not_subset = inside + 1 < vs.len();
                let touches = inside > 0;
                delta += wt * ((not_subset as i32 - touches as i32) as f64);
            }
            let key = delta - degree[u];
            if key < pick_key {
                pick_key = key;
                pick = u;
            }
        }
        add_to_w(pick, &mut in_w, &mut in_w_count, &incident);
        order.push(pick);
    }

    let t = order[m - 1];
    let s = order[m - 2];
    (active[s], active[t], degree[t])
}

fn add_to_w(u: usize, in_w: &mut [bool], in_w_count: &mut [usize], incident: &[Vec<usize>]) {
    in_w[u] = true;
    for &e in &incident[u] {
        in_w_count[e] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::HyperEdge;
    use dgs_field::prng::*;

    fn he(vs: &[u32]) -> HyperEdge {
        HyperEdge::new(vs.to_vec()).unwrap()
    }

    #[test]
    fn local_connectivity_of_tight_path() {
        // Hyperedges {0,1,2}, {2,3,4}: separating 0 from 4 needs 1 edge.
        let h = Hypergraph::from_edges(5, vec![he(&[0, 1, 2]), he(&[2, 3, 4])]);
        assert_eq!(hyper_local_edge_connectivity(&h, 0, 4, usize::MAX), 1);
        // 0 and 1 share one edge only.
        assert_eq!(hyper_local_edge_connectivity(&h, 0, 1, usize::MAX), 1);
    }

    #[test]
    fn local_connectivity_counts_parallel_structures() {
        // Two vertex-disjoint "paths" of hyperedges from 0 to 5.
        let h = Hypergraph::from_edges(
            6,
            vec![
                he(&[0, 1]),
                he(&[1, 5]),
                he(&[0, 2]),
                he(&[2, 5]),
                he(&[3, 4]),
            ],
        );
        assert_eq!(hyper_local_edge_connectivity(&h, 0, 5, usize::MAX), 2);
        assert_eq!(hyper_local_edge_connectivity(&h, 0, 3, usize::MAX), 0);
    }

    #[test]
    fn local_connectivity_respects_limit() {
        let mut edges = Vec::new();
        for i in 1..6u32 {
            edges.push(he(&[0, i]));
            edges.push(he(&[i, 6]));
        }
        let h = Hypergraph::from_edges(7, edges);
        assert_eq!(hyper_local_edge_connectivity(&h, 0, 6, 3), 3);
        assert_eq!(hyper_local_edge_connectivity(&h, 0, 6, usize::MAX), 5);
    }

    #[test]
    fn min_cut_flow_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..25 {
            let n = rng.gen_range(3..8);
            let m = rng.gen_range(2..10);
            let mut edges = Vec::new();
            for _ in 0..m {
                let r = rng.gen_range(2..=3.min(n));
                let mut vs: Vec<u32> = (0..n as u32).collect();
                vs.shuffle(&mut rng);
                vs.truncate(r);
                edges.push(HyperEdge::new(vs).unwrap());
            }
            let h = Hypergraph::from_edges(n, edges);
            let (flow_val, flow_side) = hyper_min_cut(&h).unwrap();
            let (brute_val, _) = brute_force_min_cut(&h).unwrap();
            assert_eq!(flow_val, brute_val, "trial {trial}");
            assert_eq!(h.cut_size(&flow_side), flow_val, "trial {trial} side");
            assert!(flow_side.iter().any(|&b| b) && flow_side.iter().any(|&b| !b));
        }
    }

    #[test]
    fn weighted_min_cut_matches_brute_force_unit_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..25 {
            let n = rng.gen_range(3..8);
            let m = rng.gen_range(2..12);
            let mut h = Hypergraph::new(n);
            for _ in 0..m {
                let r = rng.gen_range(2..=3.min(n));
                let mut vs: Vec<u32> = (0..n as u32).collect();
                vs.shuffle(&mut rng);
                vs.truncate(r);
                h.add_edge(HyperEdge::new(vs).unwrap());
            }
            let w = WeightedHypergraph::unit(&h);
            let (qval, qside) = weighted_min_cut(&w).unwrap();
            let (brute, _) = brute_force_min_cut(&h).unwrap();
            assert!(
                (qval - brute as f64).abs() < 1e-9,
                "trial {trial}: queyranne {qval} vs brute {brute}"
            );
            assert!((w.cut_weight(&qside) - qval).abs() < 1e-9, "trial {trial}");
        }
    }

    #[test]
    fn weighted_min_cut_matches_weighted_brute_force() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = rng.gen_range(3..7);
            let m = rng.gen_range(2..10);
            let mut w = WeightedHypergraph::new(n);
            for _ in 0..m {
                let r = rng.gen_range(2..=3.min(n));
                let mut vs: Vec<u32> = (0..n as u32).collect();
                vs.shuffle(&mut rng);
                vs.truncate(r);
                w.add(
                    HyperEdge::new(vs).unwrap(),
                    rng.gen_range(1..8) as f64 / 2.0,
                );
            }
            let (qval, _) = weighted_min_cut(&w).unwrap();
            // Weighted brute force.
            let mut brute = f64::INFINITY;
            for mask in 1u32..(1 << (n - 1)) {
                let side: Vec<bool> = (0..n).map(|v| v > 0 && mask >> (v - 1) & 1 == 1).collect();
                brute = brute.min(w.cut_weight(&side));
            }
            assert!(
                (qval - brute).abs() < 1e-9,
                "trial {trial}: queyranne {qval} vs brute {brute}"
            );
        }
    }

    #[test]
    fn disconnected_has_zero_cut() {
        let h = Hypergraph::from_edges(5, vec![he(&[0, 1]), he(&[2, 3, 4])]);
        let (v, side) = hyper_min_cut(&h).unwrap();
        assert_eq!(v, 0);
        assert_eq!(h.cut_size(&side), 0);
        let w = WeightedHypergraph::unit(&h);
        assert_eq!(weighted_min_cut_value(&w).unwrap(), 0.0);
    }

    #[test]
    fn tiny_inputs() {
        assert!(hyper_min_cut(&Hypergraph::new(1)).is_none());
        assert!(weighted_min_cut(&WeightedHypergraph::new(0)).is_none());
        let h = Hypergraph::from_edges(2, vec![he(&[0, 1])]);
        assert_eq!(hyper_min_cut(&h).unwrap().0, 1);
    }

    #[test]
    fn fat_hyperedge_is_one_cut() {
        // A single hyperedge covering everything: any cut removes it.
        let h = Hypergraph::from_edges(5, vec![he(&[0, 1, 2, 3, 4])]);
        assert_eq!(hyper_edge_connectivity(&h), 1);
        let w = WeightedHypergraph::unit(&h);
        assert_eq!(weighted_min_cut_value(&w).unwrap(), 1.0);
    }
}
