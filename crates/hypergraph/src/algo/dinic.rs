//! Dinic's maximum-flow algorithm with integer capacities.
//!
//! Used for local edge connectivity (graphs and hypergraphs, via gadget
//! networks) and vertex connectivity (split-vertex networks). Supports an
//! early-exit `limit`: connectivity tests of the form "is λ(u,v) > k?" stop
//! after k+1 augmenting units, which keeps the peeling loops of `light_k`
//! cheap.

/// A directed flow edge (paired with its reverse at `id ^ 1`).
#[derive(Clone, Debug)]
struct FlowEdge {
    to: u32,
    cap: u64,
}

/// A Dinic max-flow instance.
#[derive(Clone, Debug)]
pub struct Dinic {
    edges: Vec<FlowEdge>,
    adj: Vec<Vec<u32>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// A network with `n` nodes and no edges.
    pub fn new(n: usize) -> Dinic {
        Dinic {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `from -> to` with capacity `cap`; the reverse
    /// edge has capacity 0. Returns the forward edge id.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> usize {
        let id = self.edges.len();
        self.adj[from].push(id as u32);
        self.edges.push(FlowEdge { to: to as u32, cap });
        self.adj[to].push(id as u32 + 1);
        self.edges.push(FlowEdge {
            to: from as u32,
            cap: 0,
        });
        id
    }

    /// Adds an undirected unit-capacity edge (capacity `cap` both ways).
    pub fn add_undirected(&mut self, a: usize, b: usize, cap: u64) {
        // Two antiparallel directed edges; residuals interleave correctly
        // because each direction has its own reverse edge.
        self.add_edge(a, b, cap);
        self.add_edge(b, a, cap);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v] {
                let e = &self.edges[eid as usize];
                if e.cap > 0 && self.level[e.to as usize] < 0 {
                    self.level[e.to as usize] = self.level[v] + 1;
                    queue.push_back(e.to as usize);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, pushed: u64) -> u64 {
        if v == t {
            return pushed;
        }
        while self.iter[v] < self.adj[v].len() {
            let eid = self.adj[v][self.iter[v]] as usize;
            let (to, cap) = (self.edges[eid].to as usize, self.edges[eid].cap);
            if cap > 0 && self.level[to] == self.level[v] + 1 {
                let got = self.dfs(to, t, pushed.min(cap));
                if got > 0 {
                    self.edges[eid].cap -= got;
                    self.edges[eid ^ 1].cap += got;
                    return got;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    /// Maximum flow from `s` to `t`, stopping early once `limit` units have
    /// been pushed (pass `u64::MAX` for the true max flow).
    pub fn max_flow(&mut self, s: usize, t: usize, limit: u64) -> u64 {
        assert_ne!(s, t);
        let mut flow = 0;
        while flow < limit && self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(s, t, limit - flow);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
                if flow >= limit {
                    break;
                }
            }
        }
        flow
    }

    /// After a max-flow run, the set of nodes reachable from `s` in the
    /// residual network — the source side of a minimum cut.
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            for &eid in &self.adj[v] {
                let e = &self.edges[eid as usize];
                if e.cap > 0 && !seen[e.to as usize] {
                    seen[e.to as usize] = true;
                    stack.push(e.to as usize);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 4);
        d.add_edge(1, 2, 2);
        assert_eq!(d.max_flow(0, 2, u64::MAX), 2);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 3);
        d.add_edge(1, 3, 3);
        d.add_edge(0, 2, 5);
        d.add_edge(2, 3, 4);
        assert_eq!(d.max_flow(0, 3, u64::MAX), 7);
    }

    #[test]
    fn classic_augmenting_instance() {
        // The textbook instance where a greedy path choice needs the
        // residual back edge.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(0, 2, 1);
        d.add_edge(1, 2, 1);
        d.add_edge(1, 3, 1);
        d.add_edge(2, 3, 1);
        assert_eq!(d.max_flow(0, 3, u64::MAX), 2);
    }

    #[test]
    fn early_exit_limit() {
        let mut d = Dinic::new(2);
        for _ in 0..10 {
            d.add_edge(0, 1, 1);
        }
        assert_eq!(d.max_flow(0, 1, 3), 3);
    }

    #[test]
    fn undirected_edges_carry_flow_both_ways() {
        // Path 0 - 1 - 2 with undirected unit edges.
        let mut d = Dinic::new(3);
        d.add_undirected(0, 1, 1);
        d.add_undirected(1, 2, 1);
        assert_eq!(d.max_flow(2, 0, u64::MAX), 1);
    }

    #[test]
    fn min_cut_side_separates() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 10);
        d.add_edge(1, 2, 1); // bottleneck
        d.add_edge(2, 3, 10);
        let f = d.max_flow(0, 3, u64::MAX);
        assert_eq!(f, 1);
        let side = d.min_cut_side(0);
        assert!(side[0] && side[1]);
        assert!(!side[2] && !side[3]);
    }

    #[test]
    fn disconnected_yields_zero() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 5);
        assert_eq!(d.max_flow(0, 2, u64::MAX), 0);
    }
}
