//! Degeneracy, k-cores, and cut-degeneracy (Definition 9).
//!
//! A hypergraph is *d-degenerate* if every induced subgraph has a vertex of
//! degree at most `d`; it is *d-cut-degenerate* if every induced subgraph
//! has a cut of size at most `d` (Definition 9 — a strictly weaker
//! property, Lemma 10). By Lemma 16, `light_d(G) = E` exactly when no
//! induced subgraph is (d+1)-edge-connected, so the cut-degeneracy equals
//! the smallest `d` whose peeling consumes every edge.

use super::strength::light_k_exact;
use crate::hypergraph::Hypergraph;
use crate::VertexId;

/// The degeneracy of a hypergraph: the maximum, over the min-degree peeling
/// order, of the degree at removal time. Removing a vertex removes all
/// incident hyperedges. 0 for edgeless hypergraphs.
pub fn degeneracy(h: &Hypergraph) -> usize {
    let n = h.n();
    let inc = h.incidence();
    let mut alive_edge = vec![true; h.edge_count()];
    let mut degree: Vec<usize> = (0..n).map(|v| inc[v].len()).collect();
    let mut removed = vec![false; n];
    let mut best = 0;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| degree[v])
            .expect("vertex remains");
        best = best.max(degree[v]);
        removed[v] = true;
        for &e in &inc[v] {
            if alive_edge[e] {
                alive_edge[e] = false;
                for &u in h.edges()[e].vertices() {
                    if !removed[u as usize] {
                        degree[u as usize] -= 1;
                    }
                }
            }
        }
    }
    best
}

/// True iff the hypergraph is d-degenerate.
pub fn is_d_degenerate(h: &Hypergraph, d: usize) -> bool {
    degeneracy(h) <= d
}

/// The cut-degeneracy (Definition 9): the smallest `d` such that the exact
/// `light_d` peeling removes every hyperedge. 0 for edgeless hypergraphs.
///
/// Always at most the degeneracy (Lemma 10).
pub fn cut_degeneracy(h: &Hypergraph) -> usize {
    if h.edge_count() == 0 {
        return 0;
    }
    let cap = degeneracy(h); // Lemma 10: cut-degeneracy <= degeneracy.
    for d in 1..=cap {
        let (peeled, _) = light_k_exact(h, d);
        if peeled.len() == h.edge_count() {
            return d;
        }
    }
    cap
}

/// The vertices of the k-core of a graph viewed as a hypergraph: the maximal
/// sub-hypergraph in which every vertex has degree at least `k`.
pub fn k_core(h: &Hypergraph, k: usize) -> Vec<VertexId> {
    let n = h.n();
    let inc = h.incidence();
    let mut alive_edge = vec![true; h.edge_count()];
    let mut degree: Vec<usize> = (0..n).map(|v| inc[v].len()).collect();
    let mut removed = vec![false; n];
    loop {
        let victim = (0..n).find(|&v| !removed[v] && degree[v] < k);
        let Some(v) = victim else { break };
        removed[v] = true;
        for &e in &inc[v] {
            if alive_edge[e] {
                alive_edge[e] = false;
                for &u in h.edges()[e].vertices() {
                    if !removed[u as usize] {
                        degree[u as usize] -= 1;
                    }
                }
            }
        }
    }
    (0..n as VertexId)
        .filter(|&v| !removed[v as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::HyperEdge;
    use crate::graph::Graph;

    #[test]
    fn tree_is_1_degenerate() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (1, 3), (3, 4), (4, 5)]);
        let h = Hypergraph::from_graph(&g);
        assert_eq!(degeneracy(&h), 1);
        assert!(is_d_degenerate(&h, 1));
        assert!(!is_d_degenerate(&h, 0));
        assert_eq!(cut_degeneracy(&h), 1);
    }

    #[test]
    fn clique_degeneracy() {
        let h = Hypergraph::from_graph(&Graph::complete(5));
        assert_eq!(degeneracy(&h), 4);
        assert_eq!(cut_degeneracy(&h), 4);
    }

    #[test]
    fn cycle_is_2_degenerate() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let h = Hypergraph::from_graph(&g);
        assert_eq!(degeneracy(&h), 2);
        assert_eq!(cut_degeneracy(&h), 2);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(4);
        assert_eq!(degeneracy(&h), 0);
        assert_eq!(cut_degeneracy(&h), 0);
    }

    #[test]
    fn lemma_10_gadget_separates_the_notions() {
        // The paper's 8-vertex example: 3-degenerate (min degree 3) but
        // 2-cut-degenerate. Vertices: v1..v4 = 0..3, u1..u4 = 4..7.
        let mut g = Graph::new(8);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                if !(i == 0 && j == 3) {
                    g.add_edge(i, j); // v_i v_j except (v1, v4)
                    g.add_edge(i + 4, j + 4); // u_i u_j except (u1, u4)
                }
            }
        }
        g.add_edge(0, 4); // v1 u1
        g.add_edge(3, 7); // v4 u4
        assert_eq!(g.min_degree(), 3);
        let h = Hypergraph::from_graph(&g);
        assert_eq!(degeneracy(&h), 3, "gadget is not 2-degenerate");
        assert_eq!(cut_degeneracy(&h), 2, "gadget is 2-cut-degenerate");
    }

    #[test]
    fn hypergraph_degeneracy_counts_hyperedges() {
        // Star of hyperedges through vertex 0.
        let h = Hypergraph::from_edges(
            7,
            vec![
                HyperEdge::new(vec![0, 1, 2]).unwrap(),
                HyperEdge::new(vec![0, 3, 4]).unwrap(),
                HyperEdge::new(vec![0, 5, 6]).unwrap(),
            ],
        );
        // Leaves have degree 1; peeling leaves then 0.
        assert_eq!(degeneracy(&h), 1);
        assert_eq!(cut_degeneracy(&h), 1);
    }

    #[test]
    fn k_core_of_clique_plus_tail() {
        let mut g = Graph::new(7);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        let h = Hypergraph::from_graph(&g);
        assert_eq!(k_core(&h, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core(&h, 1).len(), 7);
        assert!(k_core(&h, 4).is_empty());
    }

    #[test]
    fn cut_degeneracy_never_exceeds_degeneracy() {
        use dgs_field::prng::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let n = rng.gen_range(4..8);
            let mut g = Graph::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        g.add_edge(u, v);
                    }
                }
            }
            let h = Hypergraph::from_graph(&g);
            assert!(cut_degeneracy(&h) <= degeneracy(&h));
        }
    }
}
