//! Disjoint-set forest with path halving and union by size.

/// A union-find structure over `[0, n)`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// True iff `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Canonical label (representative id) per element.
    pub fn labels(&mut self) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .map(|x| self.find(x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "redundant union reported as merge");
        assert_eq!(uf.component_count(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.set_size(1), 3);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn labels_are_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let labels = uf.labels();
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        assert_ne!(labels[1], labels[2]);
    }

    #[test]
    fn chain_collapses_to_one_component() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.set_size(0), n);
    }
}
