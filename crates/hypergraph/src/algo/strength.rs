//! Edge strength (Benczúr–Karger), `λ_e`, and exact `light_k` peeling.
//!
//! * `λ_e(G)` — the minimum cardinality of a cut that the hyperedge `e`
//!   crosses (Section 2 of the paper). Equivalently
//!   `min_{u≠v ∈ e} λ_G(u, v)`: every cut crossed by `e` separates some pair
//!   of its vertices, and every cut separating a pair is crossed by `e`.
//! * `light_k(G)` — the recursive peeling `E_i = {e : λ_e(G \ ∪_{j<i} E_j) ≤ k}`
//!   of Section 4.2.1, computed here *exactly* (no sketches) as ground truth
//!   and as the offline sparsifier baseline.
//! * Edge strength `k_e` — the maximum `k` such that a vertex-induced
//!   k-edge-connected subgraph contains `e` (Benczúr–Karger). Lemma 16 states
//!   `light_k(G) = {e : k_e ≤ k}` for graphs; experiment E7 verifies our two
//!   independent implementations against each other.
//!
//! Strengths are computed by recursive minimum-cut splitting: if a component
//! `C` has min cut value `λ` then every edge crossing that cut has
//! `k_e = max(λ, floor)` where `floor` is the running maximum of min-cut
//! values along the recursion path (each ancestor component is itself an
//! induced `λ_anc`-edge-connected subgraph containing `e`; and any induced
//! subgraph containing a crossing edge straddles some cut on the path).

use std::collections::BTreeMap;

use super::dinic::Dinic;
use super::hyper_cut::hyper_local_edge_connectivity;
use super::stoer_wagner::stoer_wagner;
use super::union_find::UnionFind;
use crate::graph::Graph;
use crate::hypergraph::Hypergraph;
use crate::VertexId;

/// Minimum number of edges separating `u` from `v` in a simple graph,
/// capped at `limit` (0 when disconnected).
pub fn local_edge_connectivity(g: &Graph, u: VertexId, v: VertexId, limit: usize) -> usize {
    assert_ne!(u, v);
    let mut d = Dinic::new(g.n());
    for (a, b) in g.edges() {
        d.add_undirected(a as usize, b as usize, 1);
    }
    d.max_flow(u as usize, v as usize, limit as u64) as usize
}

/// `min(λ_e(H), limit)` for the hyperedge at index `idx` of `h`.
pub fn lambda_e(h: &Hypergraph, idx: usize, limit: usize) -> usize {
    let e = &h.edges()[idx];
    let mut best = limit;
    for (u, v) in e.pairs() {
        if best == 0 {
            break;
        }
        let l = hyper_local_edge_connectivity(h, u, v, best);
        best = best.min(l);
    }
    best
}

/// Exact `light_k(G)`: indices (into `h.edges()`) of all hyperedges removed
/// by the recursive `λ_e <= k` peeling, in peeling order grouped by round.
///
/// Returns `(flattened_indices, round_sizes)` so callers can inspect the
/// peeling structure; `round_sizes[i] = |E_{i+1}|`.
pub fn light_k_exact(h: &Hypergraph, k: usize) -> (Vec<usize>, Vec<usize>) {
    let mut alive: Vec<usize> = (0..h.edge_count()).collect();
    let mut peeled = Vec::new();
    let mut rounds = Vec::new();
    loop {
        if alive.is_empty() {
            break;
        }
        let current = Hypergraph::from_edges(h.n(), alive.iter().map(|&i| h.edges()[i].clone()));
        // current.edges() preserves the order of `alive`.
        let mut this_round = Vec::new();
        let mut survivors = Vec::new();
        for (local, &orig) in alive.iter().enumerate() {
            if lambda_e(&current, local, k + 1) <= k {
                this_round.push(orig);
            } else {
                survivors.push(orig);
            }
        }
        if this_round.is_empty() {
            break;
        }
        rounds.push(this_round.len());
        peeled.extend(this_round);
        alive = survivors;
    }
    (peeled, rounds)
}

/// Exact strengths for every hyperedge: `k_e` = the largest `k` such that
/// some vertex-induced k-edge-connected sub-hypergraph contains `e`
/// (hyperedges of the induced sub-hypergraph are those fully inside the
/// vertex set). Indexed like `h.edges()`.
///
/// Same recursion as the graph case: split each component along a global
/// minimum cut; crossing hyperedges get `max(floor, λ)`; recurse into the
/// sides with the raised floor. The correctness argument is identical —
/// an induced sub-hypergraph containing a crossing edge must straddle some
/// cut on the recursion path.
pub fn hyper_edge_strengths(h: &Hypergraph) -> Vec<usize> {
    let mut out = vec![0usize; h.edge_count()];
    let all: Vec<VertexId> = (0..h.n() as VertexId).collect();
    hyper_strengths_recursive(h, &all, 0, &mut out);
    out
}

fn hyper_strengths_recursive(
    h: &Hypergraph,
    vertices: &[VertexId],
    floor: usize,
    out: &mut [usize],
) {
    // Edges fully inside `vertices`.
    let inside: Vec<bool> = {
        let set: std::collections::BTreeSet<VertexId> = vertices.iter().copied().collect();
        h.edges()
            .iter()
            .map(|e| e.vertices().iter().all(|v| set.contains(v)))
            .collect()
    };
    let edge_ids: Vec<usize> = (0..h.edge_count()).filter(|&i| inside[i]).collect();
    if edge_ids.is_empty() {
        return;
    }
    // Local coordinates.
    let mut local = BTreeMap::new();
    for (i, &v) in vertices.iter().enumerate() {
        local.insert(v, i as VertexId);
    }
    let sub = Hypergraph::from_edges(
        vertices.len(),
        edge_ids.iter().map(|&i| {
            crate::edge::HyperEdge::new(h.edges()[i].vertices().iter().map(|v| local[v]).collect())
                .expect("valid sub-hyperedge")
        }),
    );
    // Split disconnected pieces first.
    use super::components::{hyper_component_count, hyper_component_labels};
    if hyper_component_count(&sub) > 1 {
        let labels = hyper_component_labels(&sub);
        let mut parts: BTreeMap<u32, Vec<VertexId>> = BTreeMap::new();
        for (i, &v) in vertices.iter().enumerate() {
            parts.entry(labels[i]).or_default().push(v);
        }
        for part in parts.values() {
            if part.len() >= 2 {
                hyper_strengths_recursive(h, part, floor, out);
            }
        }
        return;
    }
    let Some((lambda, side)) = super::hyper_cut::hyper_min_cut(&sub) else {
        return;
    };
    debug_assert!(lambda >= 1);
    let new_floor = floor.max(lambda);
    let (mut side_a, mut side_b) = (Vec::new(), Vec::new());
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] {
            side_a.push(v);
        } else {
            side_b.push(v);
        }
    }
    // `sub` edges are in the same order as `edge_ids`.
    for (local_idx, &orig) in edge_ids.iter().enumerate() {
        let e = &sub.edges()[local_idx];
        if e.crosses(|v| side[v as usize]) {
            out[orig] = new_floor;
        }
    }
    if side_a.len() >= 2 {
        hyper_strengths_recursive(h, &side_a, new_floor, out);
    }
    if side_b.len() >= 2 {
        hyper_strengths_recursive(h, &side_b, new_floor, out);
    }
}

/// Exact Benczúr–Karger strengths for every edge of a simple graph, keyed by
/// the canonical `(u, v)` pair with `u < v`.
pub fn edge_strengths(g: &Graph) -> BTreeMap<(VertexId, VertexId), usize> {
    let mut result = BTreeMap::new();
    // Split into connected components first.
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let labels = uf.labels();
    let mut comps: BTreeMap<u32, Vec<VertexId>> = BTreeMap::new();
    for v in 0..g.n() as VertexId {
        comps.entry(labels[v as usize]).or_default().push(v);
    }
    for vertices in comps.values() {
        if vertices.len() >= 2 {
            strengths_recursive(g, vertices, 0, &mut result);
        }
    }
    result
}

fn strengths_recursive(
    g: &Graph,
    vertices: &[VertexId],
    floor: usize,
    out: &mut BTreeMap<(VertexId, VertexId), usize>,
) {
    // Induced edges, in local coordinates for Stoer–Wagner.
    let mut local = BTreeMap::new();
    for (i, &v) in vertices.iter().enumerate() {
        local.insert(v, i as VertexId);
    }
    let mut edges = Vec::new();
    for &v in vertices {
        for &u in g.neighbors(v) {
            if u > v {
                if let Some(&lu) = local.get(&u) {
                    edges.push((local[&v], lu, 1.0f64));
                }
            }
        }
    }
    if edges.is_empty() {
        return;
    }
    // The caller guarantees `vertices` spans one connected component of the
    // relevant induced subgraph except after splitting — re-split here.
    let mut uf = UnionFind::new(vertices.len());
    for &(a, b, _) in &edges {
        uf.union(a, b);
    }
    if uf.component_count() > 1 {
        let labels = uf.labels();
        let mut sub: BTreeMap<u32, Vec<VertexId>> = BTreeMap::new();
        for (i, &v) in vertices.iter().enumerate() {
            sub.entry(labels[i]).or_default().push(v);
        }
        for part in sub.values() {
            if part.len() >= 2 {
                strengths_recursive(g, part, floor, out);
            }
        }
        return;
    }

    let (cut_val, side) =
        stoer_wagner(vertices.len(), &edges).expect("component has >= 2 vertices");
    let lambda = cut_val.round() as usize;
    debug_assert!(lambda >= 1, "connected component with zero min cut");
    let new_floor = floor.max(lambda);

    // Crossing edges receive their final strength; the sides recurse.
    let mut side_a = Vec::new();
    let mut side_b = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] {
            side_a.push(v);
        } else {
            side_b.push(v);
        }
    }
    for &(a, b, _) in &edges {
        if side[a as usize] != side[b as usize] {
            let (gu, gv) = (vertices[a as usize], vertices[b as usize]);
            let key = if gu < gv { (gu, gv) } else { (gv, gu) };
            out.insert(key, new_floor);
        }
    }
    if side_a.len() >= 2 {
        strengths_recursive(g, &side_a, new_floor, out);
    }
    if side_b.len() >= 2 {
        strengths_recursive(g, &side_b, new_floor, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::HyperEdge;
    use dgs_field::prng::*;

    #[test]
    fn local_connectivity_basics() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert_eq!(local_edge_connectivity(&g, 1, 3, usize::MAX), 2);
        assert_eq!(local_edge_connectivity(&g, 0, 2, usize::MAX), 3);
        let disc = Graph::from_edges(4, &[(0, 1)]);
        assert_eq!(local_edge_connectivity(&disc, 0, 3, usize::MAX), 0);
    }

    #[test]
    fn lambda_e_of_bridge_is_one() {
        // Triangle 0-1-2 plus bridge 2-3.
        let h = Hypergraph::from_graph(&Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]));
        let bridge = h
            .edges()
            .iter()
            .position(|e| e.vertices() == [2, 3])
            .unwrap();
        assert_eq!(lambda_e(&h, bridge, usize::MAX), 1);
        let tri = h
            .edges()
            .iter()
            .position(|e| e.vertices() == [0, 1])
            .unwrap();
        assert_eq!(lambda_e(&h, tri, usize::MAX), 2);
    }

    #[test]
    fn lambda_e_hyperedge_min_over_pairs() {
        // Hyperedge {0,1,2} where 2 hangs off weakly.
        let h = Hypergraph::from_edges(
            3,
            vec![
                HyperEdge::new(vec![0, 1, 2]).unwrap(),
                HyperEdge::pair(0, 1),
            ],
        );
        // Separating 2 from {0,1} cuts only the big edge: λ_e = 1.
        assert_eq!(lambda_e(&h, 0, usize::MAX), 1);
        // The pair {0,1}: every 0-1 separating cut cuts both edges: λ_e = 2.
        assert_eq!(lambda_e(&h, 1, usize::MAX), 2);
    }

    #[test]
    fn light_k_peels_tree_completely() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        let h = Hypergraph::from_graph(&g);
        let (peeled, rounds) = light_k_exact(&h, 1);
        assert_eq!(peeled.len(), 4, "a tree is 1-cut-degenerate");
        assert_eq!(rounds, vec![4], "all edges go in the first round");
    }

    #[test]
    fn light_k_spares_the_clique() {
        // K5 with a pendant path: light_1 = the path edges only.
        let mut g = Graph::new(7);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        let h = Hypergraph::from_graph(&g);
        let (peeled, _) = light_k_exact(&h, 1);
        let peeled_edges: Vec<_> = peeled.iter().map(|&i| h.edges()[i].clone()).collect();
        assert_eq!(peeled.len(), 2);
        assert!(peeled_edges.contains(&HyperEdge::pair(4, 5)));
        assert!(peeled_edges.contains(&HyperEdge::pair(5, 6)));
        // light_4 takes everything (K5 is 4-edge-connected).
        let (all, _) = light_k_exact(&h, 4);
        assert_eq!(all.len(), h.edge_count());
    }

    #[test]
    fn light_k_multi_round_peeling() {
        // A path needs one round; a cycle attached to a path shows rounds:
        // cycle edges have λ_e = 2, path edges 1. With k = 1 only the path
        // peels (one round). With k = 2 everything peels.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let h = Hypergraph::from_graph(&g);
        let (p1, _) = light_k_exact(&h, 1);
        assert_eq!(p1.len(), 3); // edges (0,1), (1,2), (4,5)
        let (p2, _) = light_k_exact(&h, 2);
        assert_eq!(p2.len(), 6);
    }

    #[test]
    fn strengths_of_two_cliques_and_bridge() {
        // K4 on {0..3}, K4 on {4..7}, bridge (3,4).
        let mut g = Graph::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                g.add_edge(u, v);
            }
        }
        for u in 4..8u32 {
            for v in (u + 1)..8 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(3, 4);
        let s = edge_strengths(&g);
        assert_eq!(s[&(3, 4)], 1, "bridge strength");
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                assert_eq!(s[&(u, v)], 3, "K4 edge ({u},{v})");
            }
        }
        assert_eq!(s.len(), g.edge_count());
    }

    #[test]
    fn strength_floor_carries_down() {
        // A 3-edge-connected graph whose min-cut side induces a sparse graph:
        // strengths inside the side must still be >= 3. Take K5 and K5
        // joined by 3 edges: crossing edges strength 3; clique edges 4.
        let mut g = Graph::new(10);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        for u in 5..10u32 {
            for v in (u + 1)..10 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(0, 5);
        g.add_edge(1, 6);
        g.add_edge(2, 7);
        let s = edge_strengths(&g);
        assert_eq!(s[&(0, 5)], 3);
        assert_eq!(s[&(1, 6)], 3);
        assert_eq!(s[&(0, 1)], 4);
        assert_eq!(s[&(5, 6)], 4);
    }

    /// Brute-force strength: max over all vertex subsets containing both
    /// endpoints of the induced subgraph's edge connectivity.
    fn brute_strength(g: &Graph, u: VertexId, v: VertexId) -> usize {
        let n = g.n();
        assert!(n <= 10);
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            if mask >> u & 1 == 0 || mask >> v & 1 == 0 {
                continue;
            }
            let verts: Vec<u32> = (0..n as u32).filter(|&x| mask >> x & 1 == 1).collect();
            if verts.len() < 2 {
                continue;
            }
            // Induced subgraph in local coordinates.
            let mut local = BTreeMap::new();
            for (i, &x) in verts.iter().enumerate() {
                local.insert(x, i as u32);
            }
            let mut sub = Graph::new(verts.len());
            for &a in &verts {
                for &b in g.neighbors(a) {
                    if b > a {
                        if let Some(&lb) = local.get(&b) {
                            sub.add_edge(local[&a], lb);
                        }
                    }
                }
            }
            if crate::algo::components::component_count(&sub) > 1 {
                continue;
            }
            // Edge connectivity of sub = min over t of λ(0, t).
            let mut lam = usize::MAX;
            for t in 1..verts.len() as u32 {
                lam = lam.min(local_edge_connectivity(&sub, 0, t, lam));
            }
            if verts.len() == 1 {
                continue;
            }
            best = best.max(lam);
        }
        best
    }

    #[test]
    fn strengths_match_brute_force_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..12 {
            let n = rng.gen_range(4..8);
            let mut g = Graph::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        g.add_edge(u, v);
                    }
                }
            }
            let s = edge_strengths(&g);
            for (u, v) in g.edges() {
                let brute = brute_strength(&g, u, v);
                assert_eq!(
                    s[&(u, v)],
                    brute,
                    "trial {trial}, edge ({u},{v}), graph {:?}",
                    g.edges().collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn hyper_strengths_match_graph_strengths_on_rank_2() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..8 {
            let n = rng.gen_range(5..9);
            let mut g = Graph::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        g.add_edge(u, v);
                    }
                }
            }
            let h = Hypergraph::from_graph(&g);
            let hs = hyper_edge_strengths(&h);
            let gs = edge_strengths(&g);
            for (i, e) in h.edges().iter().enumerate() {
                assert_eq!(hs[i], gs[&e.as_pair()], "trial {trial}, edge {e:?}");
            }
        }
    }

    #[test]
    fn hyper_strengths_basic_shapes() {
        // A hyperedge chain: every edge strength 1.
        let chain = Hypergraph::from_edges(
            5,
            vec![
                HyperEdge::new(vec![0, 1, 2]).unwrap(),
                HyperEdge::new(vec![2, 3, 4]).unwrap(),
            ],
        );
        assert_eq!(hyper_edge_strengths(&chain), vec![1, 1]);
        // A "sunflower" of three hyperedges pairwise sharing two vertices:
        // any cut splitting {0,1} from the petals cuts all three, and the
        // whole thing is 2-edge-connected (min cut isolates a petal tip,
        // cutting one edge... check exact value against min cut).
        let sun = Hypergraph::from_edges(
            5,
            vec![
                HyperEdge::new(vec![0, 1, 2]).unwrap(),
                HyperEdge::new(vec![0, 1, 3]).unwrap(),
                HyperEdge::new(vec![0, 1, 4]).unwrap(),
            ],
        );
        let strengths = hyper_edge_strengths(&sun);
        let (lambda, _) = crate::algo::hyper_cut::hyper_min_cut(&sun).unwrap();
        assert!(strengths.iter().all(|&s| s >= lambda));
    }

    #[test]
    fn lemma_16_empirically_extends_to_hypergraphs() {
        // The paper proves Lemma 16 (light_k = low-strength edges) for
        // graphs only. Empirically the identity also holds on random small
        // hypergraphs — an observation the experiment suite records.
        let mut rng = StdRng::seed_from_u64(22);
        for trial in 0..8 {
            let n = rng.gen_range(5..8);
            let m = rng.gen_range(3..12);
            let h = crate::generators::random_mixed_hypergraph(n, 3, m, &mut rng);
            let strengths = hyper_edge_strengths(&h);
            for k in 1..3usize {
                let (light, _) = light_k_exact(&h, k);
                let light_set: std::collections::BTreeSet<usize> = light.into_iter().collect();
                for (i, &s) in strengths.iter().enumerate() {
                    assert_eq!(
                        light_set.contains(&i),
                        s <= k,
                        "trial {trial}, k {k}, edge {:?} (strength {s})",
                        h.edges()[i],
                    );
                }
            }
        }
    }

    #[test]
    fn lemma_16_light_k_equals_low_strength_edges() {
        // The paper's Lemma 16 on random graphs: light_k = {e : k_e <= k}.
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..10 {
            let n = rng.gen_range(5..9);
            let mut g = Graph::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        g.add_edge(u, v);
                    }
                }
            }
            let h = Hypergraph::from_graph(&g);
            let strengths = edge_strengths(&g);
            for k in 1..4usize {
                let (light, _) = light_k_exact(&h, k);
                let light_set: std::collections::BTreeSet<_> =
                    light.iter().map(|&i| h.edges()[i].as_pair()).collect();
                for (u, v) in g.edges() {
                    let in_light = light_set.contains(&(u, v));
                    let low_strength = strengths[&(u, v)] <= k;
                    assert_eq!(
                        in_light,
                        low_strength,
                        "trial {trial}, k {k}, edge ({u},{v}), strength {}",
                        strengths[&(u, v)]
                    );
                }
            }
        }
    }
}
