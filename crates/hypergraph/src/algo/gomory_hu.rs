//! Gomory–Hu trees: all-pairs minimum cuts from `n - 1` max-flows
//! (Gusfield's simplification — no contractions).
//!
//! Used as ground truth when experiments need *many* cut values at once
//! (e.g. validating a sparsifier against every s–t min cut), and as the
//! fast exact answer for `λ(u, v)` batch queries.

use super::dinic::Dinic;
use crate::graph::Graph;
use crate::VertexId;

/// A Gomory–Hu (cut-equivalent) tree: `parent[v]` and the min-cut value
/// `weight[v]` of the tree edge `{v, parent[v]}` (vertex 0 is the root).
#[derive(Clone, Debug)]
pub struct GomoryHuTree {
    parent: Vec<VertexId>,
    weight: Vec<u64>,
}

impl GomoryHuTree {
    /// Builds the tree for a weighted undirected multigraph given as an
    /// edge list (weights accumulate). `n >= 1`.
    pub fn build(n: usize, edges: &[(VertexId, VertexId, u64)]) -> GomoryHuTree {
        assert!(n >= 1);
        let mut parent = vec![0 as VertexId; n];
        let mut weight = vec![0u64; n];
        for i in 1..n {
            // Max-flow between i and parent[i] on the original graph.
            let mut d = Dinic::new(n);
            for &(a, b, w) in edges {
                assert_ne!(a, b, "self-loop in gomory_hu");
                d.add_undirected(a as usize, b as usize, w);
            }
            let f = d.max_flow(i, parent[i] as usize, u64::MAX);
            let side = d.min_cut_side(i); // i's side of the min cut
            weight[i] = f;
            let pi = parent[i];
            for (j, p) in parent.iter_mut().enumerate().skip(i + 1) {
                if side[j] && *p == pi {
                    *p = i as VertexId;
                }
            }
            // Gusfield relink: keep the tree cut-equivalent when i separates
            // its parent from its grandparent.
            let k = parent[i] as usize;
            let gp = parent[k];
            if (k != 0 || gp != 0) && side[gp as usize] && k != i {
                parent[i] = gp;
                parent[k] = i as VertexId;
                weight[i] = weight[k];
                weight[k] = f;
            }
        }
        GomoryHuTree { parent, weight }
    }

    /// Builds for an unweighted simple graph (unit capacities).
    pub fn build_unit(g: &Graph) -> GomoryHuTree {
        let edges: Vec<(VertexId, VertexId, u64)> = g.edges().map(|(u, v)| (u, v, 1)).collect();
        GomoryHuTree::build(g.n(), &edges)
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The minimum `u`–`v` cut value: the smallest tree-edge weight on the
    /// `u`–`v` tree path. Returns 0 when `u` and `v` are tree-disconnected
    /// only in the degenerate `n == 0` sense (the tree always spans).
    pub fn min_cut(&self, u: VertexId, v: VertexId) -> u64 {
        assert_ne!(u, v);
        // Walk both vertices to the root, recording path weights.
        let depth = |mut x: VertexId| {
            let mut d = 0;
            while x != 0 {
                x = self.parent[x as usize];
                d += 1;
            }
            d
        };
        let (mut a, mut b) = (u, v);
        let (mut da, mut db) = (depth(a), depth(b));
        let mut best = u64::MAX;
        while da > db {
            best = best.min(self.weight[a as usize]);
            a = self.parent[a as usize];
            da -= 1;
        }
        while db > da {
            best = best.min(self.weight[b as usize]);
            b = self.parent[b as usize];
            db -= 1;
        }
        while a != b {
            best = best.min(self.weight[a as usize]);
            best = best.min(self.weight[b as usize]);
            a = self.parent[a as usize];
            b = self.parent[b as usize];
        }
        best
    }

    /// The global minimum cut value: the lightest tree edge (`u64::MAX`
    /// for `n <= 1`).
    pub fn global_min_cut(&self) -> u64 {
        self.weight[1..].iter().copied().min().unwrap_or(u64::MAX)
    }

    /// The tree edges `(v, parent[v], weight)` for `v in 1..n`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, u64)> + '_ {
        (1..self.parent.len()).map(move |v| (v as VertexId, self.parent[v], self.weight[v]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::strength::local_edge_connectivity;
    use crate::generators::{gnp, harary, planted_edge_cut};
    use dgs_field::prng::*;

    #[test]
    fn path_graph_tree() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = GomoryHuTree::build_unit(&g);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                assert_eq!(t.min_cut(u, v), 1, "pair ({u},{v})");
            }
        }
        assert_eq!(t.global_min_cut(), 1);
    }

    #[test]
    fn all_pairs_match_flows_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..15 {
            let n = rng.gen_range(4..10);
            let g = gnp(n, rng.gen_range(0.3..0.8), &mut rng);
            let t = GomoryHuTree::build_unit(&g);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    let direct = local_edge_connectivity(&g, u, v, usize::MAX) as u64;
                    assert_eq!(
                        t.min_cut(u, v),
                        direct,
                        "trial {trial}, pair ({u},{v}), edges {:?}",
                        g.edges().collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_cuts() {
        // Heavy triangle with a light tail.
        let edges = vec![(0u32, 1u32, 5u64), (1, 2, 5), (0, 2, 5), (2, 3, 2)];
        let t = GomoryHuTree::build(4, &edges);
        assert_eq!(t.min_cut(0, 1), 10);
        assert_eq!(t.min_cut(0, 3), 2);
        assert_eq!(t.global_min_cut(), 2);
    }

    #[test]
    fn harary_global_cut_is_k() {
        for k in 2..5usize {
            let t = GomoryHuTree::build_unit(&harary(k, 12));
            assert_eq!(t.global_min_cut(), k as u64, "H_{{{k},12}}");
        }
    }

    #[test]
    fn planted_cut_recovered() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = planted_edge_cut(7, 7, 3, 1.0, &mut rng);
        let t = GomoryHuTree::build_unit(&g);
        assert_eq!(t.global_min_cut(), 3);
        // Cross-side pairs have cut exactly 3.
        assert_eq!(t.min_cut(0, 13), 3);
        // Same-side pairs in a clique have cut >= 6.
        assert!(t.min_cut(0, 1) >= 6);
    }

    #[test]
    fn disconnected_graph_reports_zero_cuts() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let t = GomoryHuTree::build_unit(&g);
        assert_eq!(t.min_cut(0, 2), 0);
        assert_eq!(t.min_cut(0, 1), 1);
        assert_eq!(t.global_min_cut(), 0);
    }

    #[test]
    fn single_vertex_tree() {
        let t = GomoryHuTree::build(1, &[]);
        assert_eq!(t.n(), 1);
        assert_eq!(t.global_min_cut(), u64::MAX);
    }

    #[test]
    fn tree_edge_count() {
        let g = Graph::complete(6);
        let t = GomoryHuTree::build_unit(&g);
        assert_eq!(t.edges().count(), 5);
        for (_, _, w) in t.edges() {
            assert_eq!(w, 5, "K6 all pairwise cuts are 5");
        }
    }
}
