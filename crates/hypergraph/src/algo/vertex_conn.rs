//! Exact vertex connectivity via unit-capacity max-flow (Even–Tarjan style).
//!
//! These routines are the paper's "any vertex connectivity algorithm"
//! post-processing step (Theorem 8) and the ground truth for experiments
//! E1–E3. They also answer the Theorem 4 query "does removing the vertex
//! set S disconnect the graph?" exactly.

use super::components::component_count;
use super::dinic::Dinic;
use crate::graph::Graph;
use crate::hypergraph::Hypergraph;
use crate::VertexId;

/// Maximum number of vertex-disjoint `u`–`v` paths for a **non-adjacent**
/// pair, i.e. the minimum `u`–`v` vertex separator size (Menger), capped at
/// `limit`.
///
/// Built on the standard split-vertex network: every internal vertex
/// becomes an arc `v_in -> v_out` of capacity 1; each undirected edge
/// becomes two infinite-capacity arcs between the corresponding out/in
/// nodes.
///
/// # Panics
/// Panics if `u == v` or `{u, v}` is an edge (no finite separator exists).
pub fn vertex_connectivity_pair(g: &Graph, u: VertexId, v: VertexId, limit: usize) -> usize {
    assert_ne!(u, v);
    assert!(
        !g.has_edge(u, v),
        "vertex connectivity of adjacent pair is unbounded"
    );
    let n = g.n();
    let inf = n as u64 + 1;
    let mut d = Dinic::new(2 * n);
    let v_in = |x: VertexId| 2 * x as usize;
    let v_out = |x: VertexId| 2 * x as usize + 1;
    for x in 0..n as VertexId {
        let cap = if x == u || x == v { inf } else { 1 };
        d.add_edge(v_in(x), v_out(x), cap);
    }
    for (a, b) in g.edges() {
        d.add_edge(v_out(a), v_in(b), inf);
        d.add_edge(v_out(b), v_in(a), inf);
    }
    d.max_flow(v_out(u), v_in(v), limit as u64) as usize
}

/// `min(κ(G), cap)`: the vertex connectivity of `G`, computed with early
/// exit once every flow certifies connectivity above `cap`.
///
/// Conventions: `κ = n - 1` for complete graphs (including `K_1` with
/// `κ = 0`), `κ = 0` for disconnected or empty graphs.
pub fn vertex_connectivity_bounded(g: &Graph, cap: usize) -> usize {
    let n = g.n();
    if n == 0 {
        return 0;
    }
    // Complete graph: no non-adjacent pair exists.
    if g.edge_count() == n * (n - 1) / 2 {
        return (n - 1).min(cap);
    }
    let mut ans = (n - 1).min(cap);
    // Process seed vertices v_0, v_1, ... while seed index <= current answer.
    // A minimum separator S has |S| = κ <= ans at all times, so among the
    // first κ + 1 seeds one avoids S and is separated from some non-adjacent
    // vertex by exactly κ vertices.
    let mut seed = 0;
    while seed <= ans && seed < n {
        let s = seed as VertexId;
        for t in 0..n as VertexId {
            if t == s || g.has_edge(s, t) {
                continue;
            }
            let k = vertex_connectivity_pair(g, s, t, ans + 1);
            if k < ans {
                ans = k;
            }
            if ans == 0 {
                return 0;
            }
        }
        seed += 1;
    }
    ans
}

/// The exact vertex connectivity `κ(G)`.
pub fn vertex_connectivity(g: &Graph) -> usize {
    vertex_connectivity_bounded(g, g.n())
}

/// True iff removing the vertex set `S` disconnects the graph — the
/// Theorem 4 query. A graph with at most one remaining vertex cannot be
/// disconnected.
pub fn disconnects(g: &Graph, s: &[VertexId]) -> bool {
    let n = g.n();
    let mut keep = vec![true; n];
    for &v in s {
        keep[v as usize] = true; // validate range via indexing
        keep[v as usize] = false;
    }
    let remaining = keep.iter().filter(|&&b| b).count();
    if remaining <= 1 {
        return false;
    }
    let filtered = g.filter_vertices(&keep);
    // Removed vertices are isolated in `filtered`; discount them.
    let comps = component_count(&filtered) - (n - remaining);
    comps >= 2
}

/// Hypergraph vertex connectivity: removing S disconnects a hypergraph iff
/// it disconnects its clique expansion, so κ carries over exactly.
pub fn hyper_vertex_connectivity(h: &Hypergraph) -> usize {
    vertex_connectivity(&h.clique_expansion())
}

/// The Theorem 4 query on hypergraphs.
pub fn hyper_disconnects(h: &Hypergraph, s: &[VertexId]) -> bool {
    disconnects(&h.clique_expansion(), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::harary;

    #[test]
    fn pair_connectivity_on_cycle() {
        let n = 6;
        let edges: Vec<_> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges);
        assert_eq!(vertex_connectivity_pair(&g, 0, 3, usize::MAX), 2);
    }

    #[test]
    fn pair_connectivity_respects_limit() {
        let g = Graph::complete(8).filter_vertices(&[true; 8]);
        let mut g = g;
        g.remove_edge(0, 1);
        assert_eq!(vertex_connectivity_pair(&g, 0, 1, 3), 3);
        assert_eq!(vertex_connectivity_pair(&g, 0, 1, usize::MAX), 6);
    }

    #[test]
    fn connectivity_of_basic_families() {
        // Path: κ = 1.
        let path = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(vertex_connectivity(&path), 1);
        // Cycle: κ = 2.
        let cycle = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(vertex_connectivity(&cycle), 2);
        // Complete: κ = n - 1.
        assert_eq!(vertex_connectivity(&Graph::complete(7)), 6);
        // Disconnected: κ = 0.
        let disc = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(vertex_connectivity(&disc), 0);
        // Star: κ = 1.
        let star = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(vertex_connectivity(&star), 1);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(vertex_connectivity(&Graph::new(0)), 0);
        assert_eq!(vertex_connectivity(&Graph::new(1)), 0);
        assert_eq!(vertex_connectivity(&Graph::new(2)), 0);
        assert_eq!(vertex_connectivity(&Graph::complete(2)), 1);
    }

    #[test]
    fn harary_graphs_have_exact_connectivity() {
        for (k, n) in [(2usize, 9usize), (3, 10), (4, 11), (5, 12), (6, 14)] {
            let g = harary(k, n);
            assert_eq!(vertex_connectivity(&g), k, "H_{{{k},{n}}}");
        }
    }

    #[test]
    fn bounded_caps_the_answer() {
        let g = Graph::complete(9);
        assert_eq!(vertex_connectivity_bounded(&g, 3), 3);
        let cycle = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(vertex_connectivity_bounded(&cycle, 10), 2);
    }

    #[test]
    fn disconnects_query() {
        // Two triangles sharing the articulation vertex 2.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert!(disconnects(&g, &[2]));
        assert!(!disconnects(&g, &[0]));
        assert!(!disconnects(&g, &[0, 1]), "remaining triangle is connected");
        // Removing {2,3} leaves {0,1} connected and {4} isolated => disconnected.
        assert!(disconnects(&g, &[2, 3]));
        // Removing everything but one vertex cannot disconnect.
        assert!(!disconnects(&g, &[0, 1, 2, 3]));
    }

    #[test]
    fn disconnects_matches_kappa_on_harary() {
        let g = harary(3, 9);
        // No set of size < 3 disconnects.
        for a in 0..9u32 {
            assert!(!disconnects(&g, &[a]));
            for b in (a + 1)..9u32 {
                assert!(!disconnects(&g, &[a, b]));
            }
        }
        // Some set of size 3 disconnects (neighbors of a vertex on the cycle).
        let mut found = false;
        'outer: for a in 0..9u32 {
            for b in (a + 1)..9u32 {
                for c in (b + 1)..9u32 {
                    if disconnects(&g, &[a, b, c]) {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn hypergraph_connectivity_via_clique_expansion() {
        use crate::edge::HyperEdge;
        // Two hyperedges sharing exactly one vertex: κ = 1.
        let h = Hypergraph::from_edges(
            5,
            vec![
                HyperEdge::new(vec![0, 1, 2]).unwrap(),
                HyperEdge::new(vec![2, 3, 4]).unwrap(),
            ],
        );
        assert_eq!(hyper_vertex_connectivity(&h), 1);
        assert!(hyper_disconnects(&h, &[2]));
        assert!(!hyper_disconnects(&h, &[0]));
    }
}
