//! Exact spanning forests and spanning subgraphs.
//!
//! A *spanning graph* of a hypergraph (Section 2 of the paper) is a
//! subgraph `H` with `|δ_H(S)| >= min(1, |δ_G(S)|)` for every `S` — i.e. a
//! sub-hypergraph with the same connected components. These exact versions
//! are the ground truth against which sketch-decoded forests are checked.

use super::union_find::UnionFind;
use crate::graph::Graph;
use crate::hypergraph::Hypergraph;
use crate::VertexId;

/// An arbitrary spanning forest of a graph: one edge list per tree edge.
pub fn spanning_forest(g: &Graph) -> Vec<(VertexId, VertexId)> {
    let mut uf = UnionFind::new(g.n());
    let mut forest = Vec::new();
    for (u, v) in g.edges() {
        if uf.union(u, v) {
            forest.push((u, v));
        }
    }
    forest
}

/// Indices of a minimal spanning sub-hypergraph: greedily keep every
/// hyperedge that merges at least two current components. The result is a
/// spanning graph in the paper's sense with at most `n - 1` hyperedges.
pub fn hyper_spanning_subgraph(h: &Hypergraph) -> Vec<usize> {
    let mut uf = UnionFind::new(h.n());
    let mut kept = Vec::new();
    for (i, e) in h.edges().iter().enumerate() {
        let vs = e.vertices();
        let merges = vs[1..].iter().any(|&v| !uf.same(vs[0], v));
        if merges {
            for w in vs.windows(2) {
                uf.union(w[0], w[1]);
            }
            kept.push(i);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::{component_count, hyper_component_count};
    use crate::edge::HyperEdge;

    #[test]
    fn forest_of_connected_graph_has_n_minus_1_edges() {
        let g = Graph::complete(7);
        let f = spanning_forest(&g);
        assert_eq!(f.len(), 6);
        let fg = Graph::from_edges(7, &f);
        assert_eq!(component_count(&fg), 1);
    }

    #[test]
    fn forest_preserves_components() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let f = spanning_forest(&g);
        let fg = Graph::from_edges(6, &f);
        assert_eq!(component_count(&fg), component_count(&g));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn hyper_spanning_preserves_components_with_few_edges() {
        let h = Hypergraph::from_edges(
            7,
            vec![
                HyperEdge::new(vec![0, 1, 2]).unwrap(),
                HyperEdge::new(vec![1, 2]).unwrap(), // redundant
                HyperEdge::new(vec![2, 3, 4]).unwrap(),
                HyperEdge::new(vec![0, 4]).unwrap(), // redundant
                HyperEdge::new(vec![5, 6]).unwrap(),
            ],
        );
        let kept = hyper_spanning_subgraph(&h);
        let sub = Hypergraph::from_edges(7, kept.iter().map(|&i| h.edges()[i].clone()));
        assert_eq!(hyper_component_count(&sub), hyper_component_count(&h));
        assert!(kept.len() <= 6);
        assert_eq!(kept, vec![0, 2, 4]);
    }

    #[test]
    fn empty_graph_empty_forest() {
        assert!(spanning_forest(&Graph::new(5)).is_empty());
        assert!(hyper_spanning_subgraph(&Hypergraph::new(5)).is_empty());
    }
}
