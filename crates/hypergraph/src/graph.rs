//! A simple undirected graph with exact queries.
//!
//! Used as ground truth in experiments and as the post-processing
//! representation for decoded sketches (e.g. the union `H = T_1 ∪ … ∪ T_R`
//! of Section 3). Vertices are dense ids in `[0, n)`; the graph is simple
//! (no self-loops, no parallel edges).

use std::collections::BTreeSet;

use crate::VertexId;

/// Simple undirected graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<VertexId>>,
    edges: BTreeSet<(VertexId, VertexId)>,
}

impl Graph {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Graph {
        Graph {
            n,
            adj: vec![Vec::new(); n],
            edges: BTreeSet::new(),
        }
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Builds a graph from an edge list (duplicates are ignored).
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Graph {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Inserts `{u, v}`; returns false if it was already present.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range vertices.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        assert_ne!(u, v, "self-loop {{{u},{u}}}");
        assert!((u as usize) < self.n && (v as usize) < self.n);
        let key = if u < v { (u, v) } else { (v, u) };
        if !self.edges.insert(key) {
            return false;
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        true
    }

    /// Removes `{u, v}`; returns false if it was absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        if !self.edges.remove(&key) {
            return false;
        }
        self.adj[u as usize].retain(|&x| x != v);
        self.adj[v as usize].retain(|&x| x != u);
        true
    }

    /// Membership test.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Neighbors of `v` (unsorted).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Minimum degree over all vertices (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.n).map(|v| self.adj[v].len()).min().unwrap_or(0)
    }

    /// All edges as `(u, v)` pairs with `u < v`, in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges.iter().copied()
    }

    /// The union of this graph with another on the same vertex set.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.n, other.n);
        let mut g = self.clone();
        for (u, v) in other.edges() {
            g.add_edge(u, v);
        }
        g
    }

    /// The subgraph induced by the vertices with `keep[v] == true`,
    /// preserving vertex ids (dropped vertices become isolated).
    pub fn filter_vertices(&self, keep: &[bool]) -> Graph {
        assert_eq!(keep.len(), self.n);
        let mut g = Graph::new(self.n);
        for (u, v) in self.edges() {
            if keep[u as usize] && keep[v as usize] {
                g.add_edge(u, v);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trip() {
        let mut g = Graph::new(5);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "parallel edge accepted");
        assert!(g.has_edge(1, 0));
        assert_eq!(g.degree(0), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn complete_graph_counts() {
        let g = Graph::complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.min_degree(), 5);
    }

    #[test]
    fn union_merges_without_duplicates() {
        let a = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let b = Graph::from_edges(4, &[(1, 2), (2, 3)]);
        let u = a.union(&b);
        assert_eq!(u.edge_count(), 3);
        assert!(u.has_edge(0, 1) && u.has_edge(1, 2) && u.has_edge(2, 3));
    }

    #[test]
    fn filter_vertices_drops_incident_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let f = g.filter_vertices(&[true, false, true, true]);
        assert_eq!(f.edge_count(), 1);
        assert!(f.has_edge(2, 3));
        assert_eq!(f.degree(1), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(3);
        g.add_edge(2, 2);
    }
}
