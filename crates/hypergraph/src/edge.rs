//! Canonical hyperedges.

use crate::{GraphError, VertexId};

/// An undirected hyperedge: a set of at least two distinct vertices, stored
/// sorted ascending. The special case of cardinality two is an ordinary graph
/// edge ([`HyperEdge::pair`]).
///
/// Canonical form makes equality, hashing, ordering, and the `min e` vertex
/// of the paper's Section 4.1 encoding trivial.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HyperEdge {
    vertices: Vec<VertexId>,
}

impl std::fmt::Debug for HyperEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{:?}", self.vertices)
    }
}

impl HyperEdge {
    /// Builds a hyperedge from any vertex list; sorts and rejects duplicates
    /// and cardinality < 2.
    pub fn new(mut vertices: Vec<VertexId>) -> Result<HyperEdge, GraphError> {
        vertices.sort_unstable();
        if vertices.len() < 2 {
            return Err(GraphError::InvalidEdge(format!(
                "cardinality {} < 2",
                vertices.len()
            )));
        }
        if vertices.windows(2).any(|w| w[0] == w[1]) {
            return Err(GraphError::InvalidEdge(format!(
                "duplicate vertex in {vertices:?}"
            )));
        }
        Ok(HyperEdge { vertices })
    }

    /// An ordinary graph edge `{u, v}`.
    ///
    /// # Panics
    /// Panics if `u == v` (self-loops are never valid in this model).
    pub fn pair(u: VertexId, v: VertexId) -> HyperEdge {
        assert_ne!(u, v, "self-loop {{{u},{u}}}");
        HyperEdge {
            vertices: if u < v { vec![u, v] } else { vec![v, u] },
        }
    }

    /// Internal constructor for vertex lists already known to be sorted and
    /// distinct (used by `EdgeSpace::unrank` on its own output).
    pub(crate) fn from_sorted_unchecked(vertices: Vec<VertexId>) -> HyperEdge {
        debug_assert!(vertices.len() >= 2);
        debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]));
        HyperEdge { vertices }
    }

    /// The sorted vertex list.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Cardinality `|e|` (at least 2).
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.vertices.len()
    }

    /// The smallest vertex id — the `min e` of the Section 4.1 encoding.
    #[inline]
    pub fn min_vertex(&self) -> VertexId {
        self.vertices[0]
    }

    /// Membership test (binary search on the sorted list).
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// True iff the edge crosses the cut `(S, V \ S)` given as a membership
    /// predicate: it has at least one endpoint on each side.
    pub fn crosses<F: Fn(VertexId) -> bool>(&self, in_s: F) -> bool {
        let first = in_s(self.vertices[0]);
        self.vertices[1..].iter().any(|&v| in_s(v) != first)
    }

    /// For a graph edge, the `(u, v)` pair with `u < v`.
    ///
    /// # Panics
    /// Panics if the cardinality is not 2.
    pub fn as_pair(&self) -> (VertexId, VertexId) {
        assert_eq!(
            self.cardinality(),
            2,
            "as_pair on a rank-{} edge",
            self.cardinality()
        );
        (self.vertices[0], self.vertices[1])
    }

    /// All unordered vertex pairs inside the edge — the pairs whose local
    /// connectivity determines `λ_e` (see `algo::strength`).
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        let vs = &self.vertices;
        (0..vs.len()).flat_map(move |i| (i + 1..vs.len()).map(move |j| (vs[i], vs[j])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_order() {
        let e = HyperEdge::new(vec![5, 1, 3]).unwrap();
        assert_eq!(e.vertices(), &[1, 3, 5]);
        assert_eq!(e.min_vertex(), 1);
        assert_eq!(e.cardinality(), 3);
        assert_eq!(e, HyperEdge::new(vec![3, 5, 1]).unwrap());
    }

    #[test]
    fn rejects_duplicates_and_small() {
        assert!(HyperEdge::new(vec![1, 1, 2]).is_err());
        assert!(HyperEdge::new(vec![7]).is_err());
        assert!(HyperEdge::new(vec![]).is_err());
    }

    #[test]
    fn pair_orders_endpoints() {
        assert_eq!(HyperEdge::pair(9, 2).as_pair(), (2, 9));
        assert_eq!(HyperEdge::pair(2, 9), HyperEdge::pair(9, 2));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn pair_rejects_self_loop() {
        let _ = HyperEdge::pair(3, 3);
    }

    #[test]
    fn crossing_detection() {
        let e = HyperEdge::new(vec![0, 4, 8]).unwrap();
        // S = {0}: 0 inside, 4 and 8 outside -> crosses.
        assert!(e.crosses(|v| v == 0));
        // S contains all of e -> does not cross.
        assert!(!e.crosses(|v| v <= 8));
        // S disjoint from e -> does not cross.
        assert!(!e.crosses(|v| v > 100));
    }

    #[test]
    fn pairs_enumeration() {
        let e = HyperEdge::new(vec![1, 2, 3]).unwrap();
        let pairs: Vec<_> = e.pairs().collect();
        assert_eq!(pairs, vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn contains_uses_sorted_order() {
        let e = HyperEdge::new(vec![10, 30, 20]).unwrap();
        assert!(e.contains(20));
        assert!(!e.contains(25));
    }
}
