//! Text serialization for dynamic hypergraph streams.
//!
//! Line format (whitespace separated):
//!
//! ```text
//! # comment
//! n <vertices> <max_rank>     — header, must come first
//! + <v1> <v2> [... vr]        — hyperedge insertion
//! - <v1> <v2> [... vr]        — hyperedge deletion
//! ```
//!
//! Used by the `dgs` CLI to stream updates from files or stdin, and handy
//! for persisting experiment workloads.

use std::io::{BufRead, Write};

use crate::edge::HyperEdge;
use crate::stream::{Op, Update, UpdateStream};
use crate::GraphError;

/// Parses a stream from a reader. Fails fast with a line-numbered error.
pub fn read_stream<R: BufRead>(reader: R) -> Result<UpdateStream, GraphError> {
    let mut stream: Option<UpdateStream> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Io {
            context: format!("line {}", lineno + 1),
            detail: e.to_string(),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("nonempty line");
        let numbers: Result<Vec<u64>, _> = parts.map(|p| p.parse::<u64>()).collect();
        let numbers = numbers.map_err(|e| {
            GraphError::InvalidEdge(format!("line {}: bad number: {e}", lineno + 1))
        })?;
        match tag {
            "n" => {
                if stream.is_some() {
                    return Err(GraphError::InvalidEdge(format!(
                        "line {}: duplicate header",
                        lineno + 1
                    )));
                }
                if numbers.len() != 2 {
                    return Err(GraphError::InvalidEdge(format!(
                        "line {}: header needs `n <vertices> <max_rank>`",
                        lineno + 1
                    )));
                }
                stream = Some(UpdateStream::new(numbers[0] as usize, numbers[1] as usize));
            }
            "+" | "-" => {
                let s = stream.as_mut().ok_or_else(|| {
                    GraphError::InvalidEdge(format!("line {}: update before header", lineno + 1))
                })?;
                let vs: Vec<u32> = numbers.iter().map(|&x| x as u32).collect();
                let e = HyperEdge::new(vs).map_err(|err| {
                    GraphError::InvalidEdge(format!("line {}: {err}", lineno + 1))
                })?;
                let op = if tag == "+" { Op::Insert } else { Op::Delete };
                s.updates.push(Update { edge: e, op });
            }
            other => {
                return Err(GraphError::InvalidEdge(format!(
                    "line {}: unknown tag `{other}`",
                    lineno + 1
                )));
            }
        }
    }
    stream.ok_or_else(|| GraphError::InvalidEdge("empty input: missing header".into()))
}

/// Writes a stream in the text format.
pub fn write_stream<W: Write>(stream: &UpdateStream, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "n {} {}", stream.n, stream.max_rank)?;
    for u in &stream.updates {
        let tag = match u.op {
            Op::Insert => "+",
            Op::Delete => "-",
        };
        let vs: Vec<String> = u.edge.vertices().iter().map(|v| v.to_string()).collect();
        writeln!(writer, "{tag} {}", vs.join(" "))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> Result<UpdateStream, GraphError> {
        read_stream(BufReader::new(s.as_bytes()))
    }

    #[test]
    fn round_trip() {
        let mut s = UpdateStream::new(6, 3);
        s.push_insert(HyperEdge::pair(0, 1));
        s.push_insert(HyperEdge::new(vec![2, 3, 4]).unwrap());
        s.push_delete(HyperEdge::pair(0, 1));
        let mut buf = Vec::new();
        write_stream(&s, &mut buf).unwrap();
        let back = read_stream(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.n, 6);
        assert_eq!(back.max_rank, 3);
        assert_eq!(back.updates, s.updates);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let s = parse("# workload\n\nn 4 2\n+ 0 1\n# mid comment\n- 0 1\n+ 2 3\n").unwrap();
        assert_eq!(s.len(), 3);
        let g = s.final_graph().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err(), "missing header");
        assert!(parse("+ 0 1\n").is_err(), "update before header");
        assert!(parse("n 4 2\nn 4 2\n").is_err(), "duplicate header");
        assert!(parse("n 4\n").is_err(), "short header");
        assert!(parse("n 4 2\n+ 0 zero\n").is_err(), "bad number");
        assert!(parse("n 4 2\n* 0 1\n").is_err(), "unknown tag");
        assert!(parse("n 4 2\n+ 1\n").is_err(), "cardinality 1");
        assert!(parse("n 4 2\n+ 1 1\n").is_err(), "duplicate vertex");
    }

    #[test]
    fn read_failures_surface_as_io_with_line_number() {
        /// A reader that yields one good line and then an I/O error.
        struct Flaky {
            served: bool,
        }
        impl std::io::Read for Flaky {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                unreachable!("BufRead is implemented directly")
            }
        }
        impl BufRead for Flaky {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                if self.served {
                    Err(std::io::Error::other("disk on fire"))
                } else {
                    Ok(b"n 4 2\n")
                }
            }
            fn consume(&mut self, amt: usize) {
                if amt > 0 {
                    self.served = true;
                }
            }
        }
        let err = read_stream(Flaky { served: false }).unwrap_err();
        match &err {
            GraphError::Io { context, detail } => {
                assert!(context.contains("line 2"), "{context}");
                assert!(detail.contains("disk on fire"), "{detail}");
            }
            other => panic!("expected GraphError::Io, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_keep_their_line_numbers() {
        let err = parse("n 4 2\n+ 0 1\n+ 0 zero\n").unwrap_err();
        match &err {
            GraphError::InvalidEdge(msg) => assert!(msg.contains("line 3"), "{msg}"),
            other => panic!("expected InvalidEdge, got {other:?}"),
        }
    }

    #[test]
    fn header_dimensions_are_enforced_on_apply() {
        // Parsing is lenient about ranges; `final_hypergraph` validates.
        let s = parse("n 3 2\n+ 0 7\n").unwrap();
        assert!(s.final_hypergraph().is_err());
        let s = parse("n 5 2\n+ 0 1 2\n").unwrap();
        assert!(s.final_hypergraph().is_err(), "rank above header bound");
    }
}
