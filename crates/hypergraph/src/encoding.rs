//! Exact ranking of the hyperedge space `P_r(V)`.
//!
//! Section 4.1 of the paper works with vectors indexed by "all subsets of V
//! of size between 2 and r", a space of size `d = Σ_{s=2}^r C(n,s)`. The
//! sketches never materialize these vectors — they only need a bijection
//! between hyperedges and indices in `[0, d)`. We use the combinatorial
//! number system: within the cardinality-`s` stratum, the set
//! `{v_1 < v_2 < … < v_s}` has colex rank `Σ_i C(v_i, i)`; strata are
//! concatenated in order of increasing cardinality.
//!
//! Ranking is exact (no hash collisions), which keeps the one-sparse
//! detector's index arithmetic sound. A construction-time capacity check
//! caps `d < 2^60` so indices embed into the Mersenne-61 field with room for
//! the fingerprint polynomial degree argument.

use crate::edge::HyperEdge;
use crate::{GraphError, VertexId};

/// Saturation bound used during binomial computation; anything at or above
/// this is "too big" for the supported index range.
const SATURATE: u64 = 1 << 62;

/// `C(v, i)` saturating at `SATURATE`. Exact below the saturation bound.
pub fn binomial(v: u64, i: u64) -> u64 {
    if i == 0 {
        return 1;
    }
    if v < i {
        return 0;
    }
    let mut acc: u128 = 1;
    for j in 1..=i {
        // Multiply then divide: the running product of j consecutive ratios
        // is always integral.
        acc = acc * (v - i + j) as u128 / j as u128;
        if acc >= SATURATE as u128 {
            return SATURATE;
        }
    }
    acc as u64
}

/// The indexed hyperedge space for a fixed vertex count `n` and rank bound
/// `max_rank` (the paper's constant `r`).
#[derive(Clone, Debug)]
pub struct EdgeSpace {
    n: usize,
    max_rank: usize,
    /// `base[s]` = first index of the cardinality-`s` stratum, for
    /// `s in 2..=max_rank`; `base[max_rank + 1]` = total dimension `d`.
    bases: Vec<u64>,
}

impl EdgeSpace {
    /// Builds the space, verifying the `d < 2^60` index budget.
    pub fn new(n: usize, max_rank: usize) -> Result<EdgeSpace, GraphError> {
        if max_rank < 2 || n < 2 {
            return Err(GraphError::InvalidEdge(format!(
                "edge space needs n >= 2 and max_rank >= 2 (got n = {n}, r = {max_rank})"
            )));
        }
        let mut bases = vec![0u64; max_rank + 2];
        let mut total: u64 = 0;
        #[allow(clippy::needless_range_loop)] // `s` is also the binomial argument
        for s in 2..=max_rank {
            bases[s] = total;
            let stratum = binomial(n as u64, s as u64);
            total = total.saturating_add(stratum);
            if total >= 1 << 60 {
                return Err(GraphError::EdgeSpaceTooLarge { n, max_rank });
            }
        }
        bases[max_rank + 1] = total;
        Ok(EdgeSpace { n, max_rank, bases })
    }

    /// A rank-2 (ordinary graph) edge space.
    pub fn graph(n: usize) -> Result<EdgeSpace, GraphError> {
        EdgeSpace::new(n, 2)
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The rank bound `r`.
    pub fn max_rank(&self) -> usize {
        self.max_rank
    }

    /// Total dimension `d = Σ_{s=2}^r C(n,s)`.
    pub fn dimension(&self) -> u64 {
        self.bases[self.max_rank + 1]
    }

    /// The index of a hyperedge.
    ///
    /// # Panics
    /// Panics if the edge's vertices exceed `n` or its cardinality exceeds
    /// the rank bound — both programmer errors at this layer (validated
    /// streams never produce them).
    pub fn rank(&self, e: &HyperEdge) -> u64 {
        let s = e.cardinality();
        assert!(
            s <= self.max_rank,
            "edge cardinality {s} exceeds rank bound {}",
            self.max_rank
        );
        let vs = e.vertices();
        assert!(
            (*vs.last().unwrap() as usize) < self.n,
            "vertex {} out of range for n = {}",
            vs.last().unwrap(),
            self.n
        );
        let mut idx = self.bases[s];
        for (i, &v) in vs.iter().enumerate() {
            idx += binomial(v as u64, i as u64 + 1);
        }
        idx
    }

    /// Convenience: the index of the graph edge `{u, v}`.
    pub fn rank_pair(&self, u: VertexId, v: VertexId) -> u64 {
        self.rank(&HyperEdge::pair(u, v))
    }

    /// The hyperedge with a given index (inverse of [`rank`](Self::rank)).
    ///
    /// # Panics
    /// Panics if `index >= dimension()`.
    pub fn unrank(&self, index: u64) -> HyperEdge {
        assert!(
            index < self.dimension(),
            "index {index} out of range (d = {})",
            self.dimension()
        );
        // Locate the cardinality stratum.
        let mut s = 2;
        while s < self.max_rank && index >= self.bases[s + 1] {
            s += 1;
        }
        let mut rem = index - self.bases[s];
        let mut vertices = vec![0 as VertexId; s];
        let mut hi = self.n as u64; // exclusive upper bound for the next vertex
        for i in (1..=s as u64).rev() {
            // Largest v in [i-1, hi) with C(v, i) <= rem.
            let mut lo = i - 1;
            let mut hi_search = hi;
            while lo + 1 < hi_search {
                let mid = (lo + hi_search) / 2;
                if binomial(mid, i) <= rem {
                    lo = mid;
                } else {
                    hi_search = mid;
                }
            }
            vertices[i as usize - 1] = lo as VertexId;
            rem -= binomial(lo, i);
            hi = lo;
        }
        debug_assert_eq!(rem, 0);
        HyperEdge::from_sorted_unchecked(vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_field::prng::*;

    #[test]
    fn binomial_small_table() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 1), 5);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn binomial_saturates() {
        assert_eq!(binomial(1 << 40, 3), SATURATE);
    }

    #[test]
    fn dimension_matches_formula() {
        let es = EdgeSpace::new(10, 3).unwrap();
        assert_eq!(es.dimension(), 45 + 120);
        let es2 = EdgeSpace::graph(100).unwrap();
        assert_eq!(es2.dimension(), 100 * 99 / 2);
    }

    #[test]
    fn graph_edges_enumerate_densely() {
        // Rank-2 stratum should be a bijection onto [0, C(n,2)).
        let n = 12;
        let es = EdgeSpace::graph(n).unwrap();
        let mut seen = vec![false; es.dimension() as usize];
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                let r = es.rank_pair(u, v) as usize;
                assert!(!seen[r], "collision at rank {r}");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn exhaustive_round_trip_small() {
        let es = EdgeSpace::new(8, 4).unwrap();
        for idx in 0..es.dimension() {
            let e = es.unrank(idx);
            assert_eq!(es.rank(&e), idx, "edge {e:?}");
            assert!(e.cardinality() >= 2 && e.cardinality() <= 4);
        }
    }

    #[test]
    fn strata_are_contiguous_by_cardinality() {
        let es = EdgeSpace::new(9, 3).unwrap();
        let pairs = binomial(9, 2);
        for idx in 0..es.dimension() {
            let e = es.unrank(idx);
            if idx < pairs {
                assert_eq!(e.cardinality(), 2);
            } else {
                assert_eq!(e.cardinality(), 3);
            }
        }
    }

    #[test]
    fn rejects_oversized_spaces() {
        assert!(matches!(
            EdgeSpace::new(1 << 21, 4),
            Err(GraphError::EdgeSpaceTooLarge { .. })
        ));
        assert!(EdgeSpace::new(1000, 4).is_ok());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(EdgeSpace::new(1, 2).is_err());
        assert!(EdgeSpace::new(5, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_out_of_range_panics() {
        let es = EdgeSpace::graph(5).unwrap();
        let _ = es.unrank(es.dimension());
    }

    #[test]
    #[should_panic(expected = "exceeds rank bound")]
    fn rank_oversized_edge_panics() {
        let es = EdgeSpace::graph(10).unwrap();
        let _ = es.rank(&HyperEdge::new(vec![1, 2, 3]).unwrap());
    }

    #[test]
    fn round_trip_random_edges() {
        let mut rng = StdRng::seed_from_u64(0xE1);
        let mut checked = 0;
        while checked < 256 {
            let n = rng.gen_range(5usize..60);
            let r = rng.gen_range(2usize..5);
            let es = EdgeSpace::new(n, r).unwrap();
            let mut vs: Vec<u32> = (0..rng.gen_range(2usize..5))
                .map(|_| rng.gen_range(0u32..n as u32))
                .collect();
            vs.sort_unstable();
            vs.dedup();
            vs.truncate(r);
            if vs.len() < 2 {
                continue;
            }
            let e = HyperEdge::new(vs).unwrap();
            let idx = es.rank(&e);
            assert!(idx < es.dimension());
            assert_eq!(es.unrank(idx), e);
            checked += 1;
        }
    }

    #[test]
    fn rank_is_injective() {
        let mut rng = StdRng::seed_from_u64(0xE2);
        for _ in 0..256 {
            let n = rng.gen_range(5usize..40);
            let es = EdgeSpace::new(n, 3).unwrap();
            let a = rng.gen_range(0u64..1000) % es.dimension();
            let b = rng.gen_range(0u64..1000) % es.dimension();
            let (ea, eb) = (es.unrank(a), es.unrank(b));
            assert_eq!(a == b, ea == eb);
        }
    }
}
