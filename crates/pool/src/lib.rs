//! Persistent sticky-shard worker pool.
//!
//! The batched ingest paths in this workspace parallelize over
//! *independent* state — boosted repetitions in `dgs-core`, vertex-row
//! stripes inside a single forest sketch in `dgs-connectivity`. The first
//! generation of that code spawned a fresh `std::thread::scope` per batch,
//! which has two costs that eat the parallel win on real streams:
//!
//! 1. **Spawn latency** — a batch is a few hundred microseconds of apply
//!    work; creating and joining OS threads costs a meaningful fraction of
//!    that, every single flush.
//! 2. **Cache migration** — a freshly spawned thread lands on whatever core
//!    the scheduler picks, so the sketch rows a stripe touched last batch
//!    are cold again this batch.
//!
//! [`StickyPool`] fixes both: workers are spawned **once** and live for the
//! pool's lifetime, jobs are routed to an explicit worker index (shard `i`
//! always goes to worker `i % threads`, so a worker re-touches the same
//! sketch rows batch after batch and keeps them hot in its core's cache),
//! and each worker is fed through an in-tree single-producer/single-consumer
//! ring mailbox — no external channel crate, no shared run queue to contend
//! on.
//!
//! Borrowed jobs are supported through [`StickyPool::scope`], which acts as
//! a drain/join **barrier**: it does not return until every job submitted
//! inside it has completed, so jobs may capture `&mut` references into the
//! caller's stack exactly like `std::thread::scope` — that is what lets the
//! ingest paths keep their batch == sequential byte-identity contract while
//! reusing long-lived workers.
//!
//! Determinism: the pool adds none of its own. A job runs exactly the
//! closure it was handed, on a dedicated worker; which OS core runs a worker
//! affects timing only. All result bytes are produced by the jobs
//! themselves, and the ingest callers partition their state so that every
//! cell is owned by exactly one job per barrier.

// The pool sits under every supervised ingest path: it must degrade through
// typed errors or clean panics it explicitly chooses, never an incidental
// `unwrap` (matching the supervised-core clippy gate).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use dgs_obs::{Counter, Gauge, Histogram, MetricsSink};

/// A type-erased job. Jobs cross the mailbox as `'static` boxes; the only
/// way to submit a non-`'static` job is [`PoolScope::spawn`], whose barrier
/// guarantees the borrow outlives the job (see the safety comment there).
type Job = Box<dyn FnOnce() + Send + 'static>;

enum Msg {
    Run(Job),
    Shutdown,
}

/// Locks a mutex, riding through poisoning: a poisoned pool mutex means a
/// *worker* panicked mid-job; the panic is already recorded in the scope
/// state and re-raised at the barrier, so the lock data (pure signalling,
/// no invariants) is still safe to use.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Bounded single-producer/single-consumer ring of job messages.
///
/// The producer side is serialized by the pool (one scope at a time holds
/// the producer lock), the consumer is the one worker thread that owns the
/// mailbox — so `head` is written only by the consumer and `tail` only by
/// the producer, and a slot is touched by the producer strictly before the
/// `tail` release-store that publishes it and by the consumer strictly
/// after the acquire-load that observes it.
struct Ring {
    slots: Box<[UnsafeCell<Option<Msg>>]>,
    /// Next slot the consumer will take (monotone, wraps mod capacity).
    head: AtomicUsize,
    /// Next slot the producer will fill.
    tail: AtomicUsize,
}

// SAFETY: the SPSC discipline above means no slot is ever accessed
// concurrently from both sides; the atomics order the handoff.
unsafe impl Sync for Ring {}

/// Per-worker observability handles. Default (null) handles make every
/// operation a no-op, so an unattached pool pays only the mutex clone.
#[derive(Clone, Debug, Default)]
struct WorkerMetrics {
    /// Jobs queued in this worker's mailbox, not yet dequeued.
    depth: Gauge,
    /// Wall time per executed job, nanoseconds.
    busy_ns: Histogram,
    /// Running→waiting transitions (the worker went to sleep empty).
    parks: Counter,
    /// Wakeups that found work after having parked.
    unparks: Counter,
}

struct Mailbox {
    ring: Ring,
    /// Parking lot for the consumer; the producer locks/unlocks it around
    /// its notify so a sleeping consumer can never miss a push.
    sleep: Mutex<()>,
    wake: Condvar,
    /// Swapped wholesale by [`StickyPool::set_sink`]; the hot paths take
    /// one uncontended lock per push / per job to clone the cheap handles.
    metrics: Mutex<WorkerMetrics>,
}

/// Mailbox capacity. A scope submits at most one job per worker per phase
/// in every current caller, so even deep pipelines stay far below this;
/// a full ring makes the producer yield until the worker drains.
const MAILBOX_CAPACITY: usize = 64;

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox {
            ring: Ring {
                slots: (0..MAILBOX_CAPACITY)
                    .map(|_| UnsafeCell::new(None))
                    .collect(),
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
            },
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            metrics: Mutex::new(WorkerMetrics::default()),
        }
    }

    fn metrics(&self) -> WorkerMetrics {
        lock_unpoisoned(&self.metrics).clone()
    }

    /// Producer side (requires external single-producer discipline — the
    /// pool's producer lock).
    fn push(&self, msg: Msg) {
        let cap = self.ring.slots.len();
        let mut msg = Some(msg);
        loop {
            let head = self.ring.head.load(Ordering::Acquire);
            let tail = self.ring.tail.load(Ordering::Relaxed);
            if tail.wrapping_sub(head) < cap {
                // SAFETY: this slot index is >= every published tail the
                // consumer may read until our release store below, and the
                // single-producer discipline means nobody else writes it.
                unsafe {
                    *self.ring.slots[tail % cap].get() = msg.take();
                }
                self.ring
                    .tail
                    .store(tail.wrapping_add(1), Ordering::Release);
                // Lock/unlock before notifying: a consumer that saw the old
                // tail either re-checks under this lock (and sees the new
                // one) or is already waiting (and receives the notify).
                drop(lock_unpoisoned(&self.sleep));
                self.wake.notify_one();
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Consumer side (worker thread only). Blocks until a message arrives.
    /// `metrics` counts the running→waiting transition (one park per empty
    /// sleep, however many timeout wakeups it spans) and the wakeup that
    /// found work.
    fn pop(&self, metrics: &WorkerMetrics) -> Msg {
        let cap = self.ring.slots.len();
        let mut parked = false;
        loop {
            let head = self.ring.head.load(Ordering::Relaxed);
            let tail = self.ring.tail.load(Ordering::Acquire);
            if head != tail {
                // SAFETY: the acquire load of `tail` ordered the producer's
                // slot write before this read; only this thread moves `head`.
                let msg = unsafe { (*self.ring.slots[head % cap].get()).take() };
                self.ring
                    .head
                    .store(head.wrapping_add(1), Ordering::Release);
                if let Some(m) = msg {
                    if parked {
                        metrics.unparks.inc();
                    }
                    return m;
                }
                // A `None` here would mean the SPSC discipline was broken;
                // fall through and re-check rather than crash the worker.
                continue;
            }
            let guard = lock_unpoisoned(&self.sleep);
            if !parked {
                parked = true;
                metrics.parks.inc();
            }
            // Re-check under the lock (see `push` for why this is
            // missed-wakeup-free); the timeout is defence in depth only.
            if self.ring.head.load(Ordering::Relaxed) != self.ring.tail.load(Ordering::Acquire) {
                continue;
            }
            let waited = self.wake.wait_timeout(guard, Duration::from_millis(50));
            drop(match waited {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            });
        }
    }
}

/// Completion state shared between one [`PoolScope`] and its jobs.
struct ScopeState {
    pending: AtomicUsize,
    panicked: AtomicBool,
    done_lock: Mutex<()>,
    done: Condvar,
}

impl ScopeState {
    fn new() -> Arc<ScopeState> {
        Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        })
    }

    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            drop(lock_unpoisoned(&self.done_lock));
            self.done.notify_all();
        }
    }

    fn wait_drained(&self) {
        let mut guard = lock_unpoisoned(&self.done_lock);
        while self.pending.load(Ordering::Acquire) != 0 {
            guard = match self.done.wait_timeout(guard, Duration::from_millis(50)) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

struct Worker {
    mailbox: Arc<Mailbox>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// A persistent pool of worker threads with per-worker SPSC mailboxes and
/// explicit, sticky job routing.
///
/// Create it once (per ingestor, per supervisor, or thread-local via
/// [`with_local_pool`]) and reuse it across batches: the whole point is
/// that worker `t` services shard `t` on every flush, so the shard's cache
/// footprint stays resident on whatever core runs worker `t`.
pub struct StickyPool {
    workers: Vec<Worker>,
    /// Serializes scopes: at most one producer feeds the mailboxes at a
    /// time, which is what makes them legitimately single-producer.
    producer: Mutex<()>,
    /// The sink the pool is currently attached to, for idempotent
    /// [`StickyPool::set_sink`] re-attachment.
    last_sink: Mutex<MetricsSink>,
}

impl std::fmt::Debug for StickyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StickyPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl StickyPool {
    /// Spawns `threads` persistent workers.
    ///
    /// # Panics
    /// Panics if `threads == 0` or the OS refuses to spawn a thread.
    pub fn new(threads: usize) -> StickyPool {
        assert!(threads >= 1, "pool needs at least one worker");
        let workers = (0..threads)
            .map(|i| {
                let mailbox = Arc::new(Mailbox::new());
                let consumer = Arc::clone(&mailbox);
                let builder = std::thread::Builder::new().name(format!("dgs-pool-{i}"));
                let handle = match builder.spawn(move || {
                    while let Msg::Run(job) = {
                        // Snapshot handles per message so a `set_sink`
                        // while idle counts the very next park correctly.
                        let metrics = consumer.metrics();
                        consumer.pop(&metrics)
                    } {
                        job();
                    }
                }) {
                    Ok(h) => h,
                    Err(e) => panic!("failed to spawn pool worker {i}: {e}"),
                };
                Worker {
                    mailbox,
                    handle: Some(handle),
                }
            })
            .collect();
        StickyPool {
            workers,
            producer: Mutex::new(()),
            last_sink: Mutex::new(MetricsSink::null()),
        }
    }

    /// Number of persistent workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Attach (or re-attach) observability: per-worker mailbox depth gauges
    /// (`dgs_pool_mailbox_depth{worker="i"}`), per-worker busy-time
    /// histograms (`dgs_pool_worker_busy_ns{worker="i"}`), and pool-wide
    /// park/unpark counters — the signals that make striped-ingest stalls
    /// (one deep mailbox, one saturated worker) visible in `obs-report`.
    ///
    /// Idempotent: re-attaching a sink backed by the same registry is a
    /// no-op, so callers that thread a sink through every flush (the
    /// ingestors' `with_local_pool` call sites) pay one registry-identity
    /// check per batch after the first.
    pub fn set_sink(&self, sink: &MetricsSink) {
        let mut last = lock_unpoisoned(&self.last_sink);
        if last.same_registry(sink) {
            return;
        }
        *last = sink.clone();
        for (i, w) in self.workers.iter().enumerate() {
            let worker = i.to_string();
            let labels = [("worker", worker.as_str())];
            let resolved = WorkerMetrics {
                depth: sink.gauge_labelled("dgs_pool_mailbox_depth", &labels),
                busy_ns: sink.histogram_labelled("dgs_pool_worker_busy_ns", &labels),
                parks: sink.counter("dgs_pool_worker_parks"),
                unparks: sink.counter("dgs_pool_worker_unparks"),
            };
            *lock_unpoisoned(&w.mailbox.metrics) = resolved;
        }
    }

    /// Runs `f` with a [`PoolScope`] that can submit borrowed jobs, then
    /// blocks until every submitted job has completed (the drain/join
    /// barrier). Returns `f`'s result.
    ///
    /// The barrier holds even if `f` itself panics — submitted jobs are
    /// always drained before the panic propagates, so borrows handed to
    /// [`PoolScope::spawn`] can never dangle.
    ///
    /// # Panics
    /// Panics after the drain if any job panicked (mirroring the join
    /// behaviour of `std::thread::scope`).
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        let _producer = lock_unpoisoned(&self.producer);
        let scope = PoolScope {
            pool: self,
            state: ScopeState::new(),
            _env: PhantomData,
        };
        struct DrainGuard<'a>(&'a ScopeState);
        impl Drop for DrainGuard<'_> {
            fn drop(&mut self) {
                self.0.wait_drained();
            }
        }
        let result = {
            let guard = DrainGuard(&scope.state);
            let r = f(&scope);
            drop(guard); // barrier: every job has run to completion here
            r
        };
        assert!(
            !scope.state.panicked.load(Ordering::Acquire),
            "pool worker job panicked"
        );
        result
    }
}

impl Drop for StickyPool {
    fn drop(&mut self) {
        let _producer = lock_unpoisoned(&self.producer);
        for w in &self.workers {
            w.mailbox.push(Msg::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                // A worker that panicked outside a job already surfaced at
                // the scope barrier; nothing useful to do with the result.
                let _ = h.join();
            }
        }
    }
}

/// Submission handle passed to the closure of [`StickyPool::scope`].
///
/// `'env` is the lifetime of borrows a job may capture; the scope barrier
/// keeps them alive until every job finished.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool StickyPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    /// Submits `f` to worker `worker % threads`.
    ///
    /// Routing is the caller's contract with its own cache: submit shard
    /// `i`'s work with `worker = i` on every batch and the pool guarantees
    /// the same persistent thread services it every time.
    ///
    /// A panic inside `f` is caught, recorded, and re-raised by
    /// [`StickyPool::scope`] after the barrier.
    pub fn spawn<F>(&self, worker: usize, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let state = Arc::clone(&self.state);
        let w = worker % self.pool.workers.len();
        // Metrics ride inside the job wrapper so that busy time and the
        // depth decrement are published strictly before `finish_one` — a
        // caller reading its registry right after the scope barrier sees
        // every job accounted for.
        let metrics = self.pool.workers[w].mailbox.metrics();
        metrics.depth.add(1);
        // Count before publishing; the job's `finish_one` is the matching
        // decrement, so the barrier can never observe a transient zero.
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            metrics.depth.dec_saturating();
            let timer = metrics.busy_ns.start_timer();
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                state.panicked.store(true, Ordering::Release);
            }
            timer.observe();
            state.finish_one();
        });
        // SAFETY: only the lifetime is erased. The drain barrier in
        // `StickyPool::scope` (enforced by `DrainGuard` even on panic)
        // blocks until this job has run, so everything `f` borrows from
        // `'env` strictly outlives the job's execution. The transmute is
        // between two trait-object boxes of identical layout.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.workers[w].mailbox.push(Msg::Run(job));
    }
}

thread_local! {
    /// One cached pool per calling thread (see [`with_local_pool`]).
    static LOCAL_POOL: std::cell::RefCell<Option<StickyPool>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with a thread-local [`StickyPool`] of at least `threads`
/// workers, creating or growing it on first use and caching it for the
/// thread's lifetime.
///
/// This is the entry point for code that stripes *within* one call (the
/// forest sketch's row-striped batch update and parallel decode): the
/// caller has no natural place to own a pool, but per-call spawning is
/// exactly what the pool exists to avoid. Keying the cache by thread keeps
/// the single-producer mailbox discipline free (a thread only ever feeds
/// its own pool) and makes nested parallelism safe: a pool *worker* that
/// stripes again simply gets its own, separate thread-local pool.
///
/// The pool is taken out of the cache while `f` runs, so re-entrant calls
/// on the same thread build an independent temporary pool instead of
/// deadlocking on a shared one.
pub fn with_local_pool<R>(threads: usize, f: impl FnOnce(&StickyPool) -> R) -> R {
    let need = threads.max(1);
    let cached = LOCAL_POOL.with(|cell| {
        let mut slot = cell.borrow_mut();
        match slot.take() {
            Some(pool) if pool.threads() >= need => Some(pool),
            // Too small (or absent): drop the old pool's threads and build
            // fresh below, outside the borrow.
            _ => None,
        }
    });
    let pool = match cached {
        Some(pool) => pool,
        None => StickyPool::new(need),
    };
    let result = f(&pool);
    LOCAL_POOL.with(|cell| {
        let mut slot = cell.borrow_mut();
        // Keep the larger pool if a re-entrant call replaced ours.
        match slot.as_ref() {
            Some(existing) if existing.threads() >= pool.threads() => {}
            _ => *slot = Some(pool),
        }
    });
    result
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn scope_runs_jobs_and_barriers() {
        let pool = StickyPool::new(3);
        let mut out = vec![0u64; 8];
        pool.scope(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.spawn(i, move || {
                    *slot = (i as u64 + 1) * 10;
                });
            }
        });
        assert_eq!(out, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn pool_is_reusable_across_many_scopes() {
        let pool = StickyPool::new(2);
        let mut acc = 0u64;
        for round in 0..200u64 {
            let mut parts = [0u64; 2];
            pool.scope(|scope| {
                let (a, b) = parts.split_at_mut(1);
                scope.spawn(0, move || a[0] = round);
                scope.spawn(1, move || b[0] = round * 2);
            });
            acc += parts[0] + parts[1];
        }
        assert_eq!(acc, (0..200u64).map(|r| 3 * r).sum::<u64>());
    }

    #[test]
    fn sticky_routing_serializes_per_worker() {
        // Jobs routed to the same worker run in submission order (SPSC
        // FIFO), so a chain of read-modify-writes through the same cell is
        // deterministic without any locking of its own.
        let pool = StickyPool::new(2);
        let cell = std::sync::atomic::AtomicU64::new(1);
        pool.scope(|scope| {
            let c = &cell;
            scope.spawn(0, move || {
                let v = c.load(Ordering::Relaxed);
                c.store(v * 10 + 2, Ordering::Relaxed);
            });
            scope.spawn(0, move || {
                let v = c.load(Ordering::Relaxed);
                c.store(v * 10 + 3, Ordering::Relaxed);
            });
        });
        assert_eq!(cell.load(Ordering::Relaxed), 123);
    }

    #[test]
    fn worker_indices_wrap() {
        let pool = StickyPool::new(2);
        let mut out = vec![0usize; 6];
        pool.scope(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.spawn(i, move || *slot = i + 1);
            }
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn job_panic_surfaces_at_the_barrier() {
        let pool = StickyPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(0, || panic!("job boom"));
            });
        }));
        assert!(caught.is_err());
        // The pool survives a panicked job: workers keep serving.
        let mut ok = false;
        pool.scope(|scope| {
            scope.spawn(0, || ok = true);
        });
        assert!(ok);
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = StickyPool::new(1);
        let r = pool.scope(|_| 42);
        assert_eq!(r, 42);
    }

    #[test]
    fn zero_job_drain_barrier_on_a_multi_worker_pool() {
        // The drain barrier must complete with *zero* submitted jobs — no
        // worker ever posts a finish_one, so the waiter can only return if
        // the zero-pending case short-circuits — and it must do so
        // repeatedly, interleaved with real work, without waking workers
        // into phantom jobs.
        let reg = dgs_obs::Registry::new();
        let pool = StickyPool::new(4);
        pool.set_sink(&reg.sink());
        for round in 0..3 {
            let r = pool.scope(|_| round);
            assert_eq!(r, round);
            let mut ran = 0u32;
            pool.scope(|scope| {
                let cell = &mut ran;
                scope.spawn(round, move || *cell += 1);
            });
            assert_eq!(ran, 1, "round {round}: pool must stay usable");
        }
        // Exactly the 3 real jobs executed; the 3 empty scopes contributed
        // nothing to any worker's busy histogram.
        let busy_total: u64 = (0..4)
            .map(|w| {
                reg.histogram_stats(&format!("dgs_pool_worker_busy_ns{{worker=\"{w}\"}}"))
                    .map_or(0, |s| s.count)
            })
            .sum();
        assert_eq!(busy_total, 3);
    }

    #[test]
    fn panic_mid_drain_still_runs_every_queued_job() {
        use std::sync::atomic::{AtomicU32, Ordering};
        // A job that panics *mid-drain* — with more jobs queued behind it
        // on its own mailbox and on a sibling worker — must not abort the
        // drain: panics are caught per job, every other job still runs,
        // and the panic is re-raised only once the barrier has fully
        // drained.
        let pool = StickyPool::new(2);
        let ran = AtomicU32::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                let ran = &ran;
                scope.spawn(0, move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
                scope.spawn(0, || panic!("mid-drain boom"));
                // Queued behind the panicking job on the same mailbox.
                scope.spawn(0, move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
                // And concurrent work on the sibling worker.
                scope.spawn(1, move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
                scope.spawn(1, move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(caught.is_err(), "the panic must surface at the barrier");
        assert_eq!(
            ran.load(Ordering::SeqCst),
            4,
            "every non-panicking job must have run to completion"
        );
        // The pool survives and keeps serving both workers.
        let mut ok = 0u32;
        pool.scope(|scope| {
            let cell = &mut ok;
            scope.spawn(0, move || *cell += 1);
        });
        let mut ok2 = 0u32;
        pool.scope(|scope| {
            let cell = &mut ok2;
            scope.spawn(1, move || *cell += 1);
        });
        assert_eq!((ok, ok2), (1, 1));
    }

    #[test]
    fn local_pool_is_cached_and_grows() {
        let t1 = with_local_pool(2, |p| {
            assert!(p.threads() >= 2);
            p.threads()
        });
        // Requesting fewer threads reuses the cached pool.
        let t2 = with_local_pool(1, |p| p.threads());
        assert_eq!(t1, t2);
        // Requesting more grows it.
        let t3 = with_local_pool(4, |p| p.threads());
        assert!(t3 >= 4);
    }

    #[test]
    fn reentrant_local_pool_does_not_deadlock() {
        let v = with_local_pool(2, |outer| {
            outer.scope(|_| with_local_pool(2, |inner| inner.scope(|_| 5)))
        });
        assert_eq!(v, 5);
    }

    #[test]
    fn set_sink_exposes_depth_busy_and_park_metrics() {
        let reg = dgs_obs::Registry::new();
        let pool = StickyPool::new(2);
        pool.set_sink(&reg.sink());
        // Idempotent re-attach: same registry, keeps working handles.
        pool.set_sink(&reg.sink());
        pool.scope(|scope| {
            for i in 0..8 {
                scope.spawn(i, move || {
                    std::thread::sleep(Duration::from_micros(200));
                });
            }
        });
        // The barrier guarantees every job was dequeued: depth back to 0.
        for w in 0..2 {
            assert_eq!(
                reg.gauge_value(&format!("dgs_pool_mailbox_depth{{worker=\"{w}\"}}")),
                Some(0),
                "drained mailbox must read depth 0"
            );
        }
        // Every job's execution time is in exactly one worker's histogram.
        let busy_total: u64 = (0..2)
            .map(|w| {
                reg.histogram_stats(&format!("dgs_pool_worker_busy_ns{{worker=\"{w}\"}}"))
                    .map_or(0, |s| s.count)
            })
            .sum();
        assert_eq!(busy_total, 8);
        // Park/unpark counters are registered (values depend on timing).
        assert!(reg.counter_value("dgs_pool_worker_parks").is_some());
        assert!(reg.counter_value("dgs_pool_worker_unparks").is_some());
    }

    #[test]
    fn unattached_pool_stays_metric_free() {
        let pool = StickyPool::new(1);
        let mut ran = false;
        pool.scope(|scope| scope.spawn(0, || ran = true));
        assert!(ran);
        // Attaching after the fact only observes subsequent work.
        let reg = dgs_obs::Registry::new();
        pool.set_sink(&reg.sink());
        pool.scope(|scope| scope.spawn(0, || {}));
        let stats = reg
            .histogram_stats("dgs_pool_worker_busy_ns{worker=\"0\"}")
            .unwrap();
        assert_eq!(stats.count, 1);
    }

    #[test]
    fn many_jobs_per_worker_drain_in_order() {
        let pool = StickyPool::new(1);
        let log: std::sync::Mutex<Vec<usize>> = std::sync::Mutex::new(Vec::new());
        pool.scope(|scope| {
            let cell = &log;
            for i in 0..32 {
                scope.spawn(0, move || cell.lock().unwrap().push(i));
            }
        });
        assert_eq!(log.into_inner().unwrap(), (0..32).collect::<Vec<_>>());
    }
}
