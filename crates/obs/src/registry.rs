//! `Registry` (owning side) and `MetricsSink` (handle-dispensing side).
//!
//! Registration takes a mutex on a `BTreeMap` keyed by the fully-qualified
//! metric key (`name` or `name{label="v",...}`); this is a *cold* path run at
//! construction / `set_sink` time. The handles returned are lock-free
//! thereafter. Re-registering the same key returns a handle to the same cell,
//! so components wired to one sink aggregate naturally.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::metrics::{Counter, Gauge, HistStats, Histogram, HistogramCells};
use crate::trace::{TraceEvent, TraceLog};

#[derive(Debug, Clone)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCells>),
}

#[derive(Debug)]
pub(crate) struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Cell>>,
    trace: Option<TraceLog>,
    epoch: Instant,
}

/// Cheap-to-clone handle used to resolve metric handles. The default /
/// [`MetricsSink::null`] sink dispenses null handles whose operations are
/// no-ops (and allocate nothing).
#[derive(Clone, Debug, Default)]
pub struct MetricsSink {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsSink {
    /// The no-op sink. Every handle it returns is inert.
    pub fn null() -> Self {
        MetricsSink { inner: None }
    }

    /// True when backed by a live [`Registry`].
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// True when both sinks dispense handles into the same registry (or both
    /// are null). Lets idempotent wiring like `StickyPool::set_sink` skip
    /// re-resolving handles when re-attached to the sink it already has.
    pub fn same_registry(&self, other: &MetricsSink) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Resolve (registering on first use) an unlabelled counter.
    pub fn counter(&self, name: &str) -> Counter {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        match &self.inner {
            None => Counter::null(),
            Some(inner) => inner.counter(name.to_string()),
        }
    }

    /// Resolve a labelled counter. Labels are sorted by key into the metric
    /// key, e.g. `counter_labelled("x", &[("shard", "0")])` -> `x{shard="0"}`.
    pub fn counter_labelled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            None => Counter::null(),
            Some(inner) => inner.counter(keyed(name, labels)),
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        match &self.inner {
            None => Gauge::null(),
            Some(inner) => inner.gauge(name.to_string()),
        }
    }

    pub fn gauge_labelled(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            None => Gauge::null(),
            Some(inner) => inner.gauge(keyed(name, labels)),
        }
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        match &self.inner {
            None => Histogram::null(),
            Some(inner) => inner.histogram(name.to_string()),
        }
    }

    /// Resolve a labelled histogram, e.g. per-tenant latency:
    /// `histogram_labelled("dgs_core_service_query_ns", &[("tenant", "t0")])`.
    pub fn histogram_labelled(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match &self.inner {
            None => Histogram::null(),
            Some(inner) => inner.histogram(keyed(name, labels)),
        }
    }

    /// Start an RAII span. Records elapsed nanoseconds into the histogram
    /// `<name>_ns` and, when tracing is enabled, appends a [`TraceEvent`] on
    /// drop. On the null sink this never reads the clock nor allocates.
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span {
                inner: None,
                hist: Histogram::null(),
                name,
                start: None,
            },
            Some(inner) => {
                let mut full = String::with_capacity(name.len() + 3);
                full.push_str(name);
                full.push_str("_ns");
                let hist = inner.histogram(full);
                Span {
                    inner: inner.trace.is_some().then(|| Arc::clone(inner)),
                    hist,
                    name,
                    start: Some(Instant::now()),
                }
            }
        }
    }
}

/// True when `name` is a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Keys built by [`MetricsSink`] debug-assert
/// this, so invalid names surface in tests instead of in scrape parsers.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Escape a label value for the Prometheus exposition format: backslash,
/// double quote, and newline must be escaped inside `label="..."`.
fn push_escaped_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn keyed(name: &str, labels: &[(&str, &str)]) -> String {
    debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::with_capacity(name.len() + 16 * sorted.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        // Values are stored escaped, so the exporter can splice the label
        // body verbatim into the exposition output.
        push_escaped_label_value(&mut out, v);
        out.push('"');
    }
    out.push('}');
    out
}

impl RegistryInner {
    fn counter(self: &Arc<Self>, key: String) -> Counter {
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let cell = map
            .entry(key)
            .or_insert_with(|| Cell::Counter(Arc::new(AtomicU64::new(0))));
        match cell {
            Cell::Counter(c) => Counter::from_cell(Arc::clone(c)),
            // Type mismatch with an existing key is a programming error; keep
            // running with a detached live cell rather than panicking.
            _ => {
                debug_assert!(false, "metric re-registered with a different type");
                Counter::standalone()
            }
        }
    }

    fn gauge(self: &Arc<Self>, key: String) -> Gauge {
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let cell = map
            .entry(key)
            .or_insert_with(|| Cell::Gauge(Arc::new(AtomicI64::new(0))));
        match cell {
            Cell::Gauge(g) => Gauge::from_cell(Arc::clone(g)),
            _ => {
                debug_assert!(false, "metric re-registered with a different type");
                Gauge::standalone()
            }
        }
    }

    fn histogram(self: &Arc<Self>, key: String) -> Histogram {
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let cell = map
            .entry(key)
            .or_insert_with(|| Cell::Histogram(Arc::new(HistogramCells::new())));
        match cell {
            Cell::Histogram(h) => Histogram::from_cells(Arc::clone(h)),
            _ => {
                debug_assert!(false, "metric re-registered with a different type");
                Histogram::standalone()
            }
        }
    }
}

/// RAII span guard; see [`MetricsSink::span`].
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<RegistryInner>>,
    hist: Histogram,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Finish the span now; equivalent to dropping it.
    pub fn exit(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let duration_ns = start.elapsed().as_nanos() as u64;
            self.hist.record(duration_ns);
            if let Some(inner) = &self.inner {
                if let Some(trace) = &inner.trace {
                    let start_ns = start.duration_since(inner.epoch).as_nanos() as u64;
                    trace.push(TraceEvent {
                        name: self.name,
                        start_ns,
                        duration_ns,
                    });
                }
            }
        }
    }
}

/// Point-in-time value of a single metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistStats),
}

/// Deterministic (key-sorted) snapshot of a registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(fully_qualified_key, value)` pairs, ascending by key.
    pub metrics: Vec<(String, MetricValue)>,
    /// Retained trace events, oldest first.
    pub trace: Vec<TraceEvent>,
    /// Number of trace events evicted from the ring.
    pub trace_evicted: u64,
}

/// Owning side of the metrics system. Create one, pass `sink()` handles to
/// instrumented components, then `snapshot()` / `to_json()` /
/// `to_prometheus()` to read everything back.
#[derive(Clone, Debug)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A registry without a trace ring (spans still feed histograms).
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                metrics: Mutex::new(BTreeMap::new()),
                trace: None,
                epoch: Instant::now(),
            }),
        }
    }

    /// A registry whose spans also append to a ring buffer holding the last
    /// `capacity` events.
    pub fn with_trace(capacity: usize) -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                metrics: Mutex::new(BTreeMap::new()),
                trace: Some(TraceLog::new(capacity)),
                epoch: Instant::now(),
            }),
        }
    }

    /// A live sink dispensing handles backed by this registry.
    pub fn sink(&self) -> MetricsSink {
        MetricsSink {
            inner: Some(Arc::clone(&self.inner)),
        }
    }

    /// Snapshot all metrics (sorted by key) and the trace ring.
    pub fn snapshot(&self) -> Snapshot {
        let map = self
            .inner
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let metrics = map
            .iter()
            .map(|(k, cell)| {
                let v = match cell {
                    Cell::Counter(c) => {
                        MetricValue::Counter(c.load(std::sync::atomic::Ordering::Relaxed))
                    }
                    Cell::Gauge(g) => {
                        MetricValue::Gauge(g.load(std::sync::atomic::Ordering::Relaxed))
                    }
                    Cell::Histogram(h) => {
                        MetricValue::Histogram(Histogram::from_cells(Arc::clone(h)).stats())
                    }
                };
                (k.clone(), v)
            })
            .collect();
        drop(map);
        let (trace, trace_evicted) = match &self.inner.trace {
            None => (Vec::new(), 0),
            Some(log) => log.snapshot(),
        };
        Snapshot {
            metrics,
            trace,
            trace_evicted,
        }
    }

    /// Value of a counter by fully-qualified key; `None` if absent or not a
    /// counter.
    pub fn counter_value(&self, key: &str) -> Option<u64> {
        match self.lookup(key)? {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    pub fn gauge_value(&self, key: &str) -> Option<i64> {
        match self.lookup(key)? {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    pub fn histogram_stats(&self, key: &str) -> Option<HistStats> {
        match self.lookup(key)? {
            MetricValue::Histogram(s) => Some(s),
            _ => None,
        }
    }

    fn lookup(&self, key: &str) -> Option<MetricValue> {
        let map = self
            .inner
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.get(key).map(|cell| match cell {
            Cell::Counter(c) => MetricValue::Counter(c.load(std::sync::atomic::Ordering::Relaxed)),
            Cell::Gauge(g) => MetricValue::Gauge(g.load(std::sync::atomic::Ordering::Relaxed)),
            Cell::Histogram(h) => {
                MetricValue::Histogram(Histogram::from_cells(Arc::clone(h)).stats())
            }
        })
    }

    /// Render the registry in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(&self.snapshot())
    }

    /// Render the registry as a single deterministic JSON object.
    pub fn to_json(&self) -> String {
        crate::export::to_json(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn same_key_shares_cell() {
        let reg = Registry::new();
        let sink = reg.sink();
        let a = sink.counter("dgs_test_hits");
        let b = sink.counter("dgs_test_hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter_value("dgs_test_hits"), Some(3));
    }

    #[test]
    fn labels_sorted_into_key() {
        let reg = Registry::new();
        let sink = reg.sink();
        let c = sink.counter_labelled("dgs_test_x", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(reg.counter_value("dgs_test_x{a=\"1\",b=\"2\"}"), Some(1));
    }

    #[test]
    fn spans_feed_histogram_and_trace() {
        let reg = Registry::with_trace(8);
        let sink = reg.sink();
        {
            let _s = sink.span("dgs_test_work");
        }
        sink.span("dgs_test_work").exit();
        let stats = reg
            .histogram_stats("dgs_test_work_ns")
            .expect("span histogram");
        assert_eq!(stats.count, 2);
        let snap = reg.snapshot();
        assert_eq!(snap.trace.len(), 2);
        assert!(snap.trace.iter().all(|e| e.name == "dgs_test_work"));
    }

    #[test]
    fn label_values_escaped_into_key() {
        let reg = Registry::new();
        let sink = reg.sink();
        let c = sink.counter_labelled("dgs_test_esc", &[("path", "a\\b\"c\nd")]);
        c.inc();
        assert_eq!(
            reg.counter_value("dgs_test_esc{path=\"a\\\\b\\\"c\\nd\"}"),
            Some(1),
            "backslash, quote, and newline must be stored escaped"
        );
    }

    #[test]
    fn metric_name_validity() {
        for ok in ["dgs_core_slo_state", "_x", "a:b:c", "Upper9"] {
            assert!(valid_metric_name(ok), "{ok:?} should be valid");
        }
        for bad in ["", "9lead", "has space", "dash-ed", "brace{", "uni\u{e9}"] {
            assert!(!valid_metric_name(bad), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn same_registry_compares_backing_store() {
        let a = Registry::new();
        let b = Registry::new();
        assert!(a.sink().same_registry(&a.sink()));
        assert!(!a.sink().same_registry(&b.sink()));
        assert!(MetricsSink::null().same_registry(&MetricsSink::null()));
        assert!(!a.sink().same_registry(&MetricsSink::null()));
    }

    #[test]
    fn null_sink_dispenses_inert_handles() {
        let sink = MetricsSink::null();
        assert!(!sink.is_live());
        let c = sink.counter("x");
        c.inc();
        assert!(!c.is_live());
        let _s = sink.span("y");
    }
}
