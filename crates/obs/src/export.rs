//! Deterministic exporters: Prometheus text exposition format and JSON.

use crate::metrics::HistStats;
use crate::registry::{MetricValue, Snapshot};

/// Split a fully-qualified key into `(name, label_body)` where `label_body`
/// is the text inside `{...}` (empty when unlabelled).
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        None => (key, ""),
        Some(i) => (&key[..i], key[i + 1..].trim_end_matches('}')),
    }
}

fn push_labelled(out: &mut String, name: &str, labels: &str, extra: Option<(&str, &str)>) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        out.push_str(labels);
        if let Some((k, v)) = extra {
            if !labels.is_empty() {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
    }
}

/// Render a snapshot in Prometheus text exposition format. Histograms emit
/// cumulative `_bucket{le="..."}` lines for non-empty buckets plus `_sum` and
/// `_count`; the trailing `+Inf` bucket is always present.
pub(crate) fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    // One `# TYPE` line per metric family: labelled keys of the same name
    // sort adjacently (BTreeMap order), so tracking the previous family is
    // enough.
    let mut last_family = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        if name != last_family {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_family = name.to_string();
        }
    };
    for (key, value) in &snapshot.metrics {
        let (name, labels) = split_key(key);
        match value {
            MetricValue::Counter(v) => {
                type_line(&mut out, name, "counter");
                push_labelled(&mut out, name, labels, None);
                out.push(' ');
                out.push_str(&v.to_string());
                out.push('\n');
            }
            MetricValue::Gauge(v) => {
                type_line(&mut out, name, "gauge");
                push_labelled(&mut out, name, labels, None);
                out.push(' ');
                out.push_str(&v.to_string());
                out.push('\n');
            }
            MetricValue::Histogram(stats) => {
                type_line(&mut out, name, "histogram");
                let mut cumulative = 0u64;
                for &(edge, n) in &stats.buckets {
                    cumulative += n;
                    push_labelled(
                        &mut out,
                        &format!("{name}_bucket"),
                        labels,
                        Some(("le", &edge.to_string())),
                    );
                    out.push(' ');
                    out.push_str(&cumulative.to_string());
                    out.push('\n');
                }
                push_labelled(
                    &mut out,
                    &format!("{name}_bucket"),
                    labels,
                    Some(("le", "+Inf")),
                );
                out.push(' ');
                out.push_str(&stats.count.to_string());
                out.push('\n');
                push_labelled(&mut out, &format!("{name}_sum"), labels, None);
                out.push(' ');
                out.push_str(&stats.sum.to_string());
                out.push('\n');
                push_labelled(&mut out, &format!("{name}_count"), labels, None);
                out.push(' ');
                out.push_str(&stats.count.to_string());
                out.push('\n');
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{}", v)
    }
}

fn hist_json(stats: &HistStats) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        stats.count,
        stats.sum,
        fmt_f64(stats.mean()),
        stats.quantile(0.50),
        stats.quantile(0.95),
        stats.quantile(0.99),
    )
}

/// Render a snapshot as one JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{...},"trace":[...],"trace_evicted":N}`.
pub(crate) fn to_json(snapshot: &Snapshot) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (key, value) in &snapshot.metrics {
        let k = json_escape(key);
        match value {
            MetricValue::Counter(v) => counters.push(format!("\"{k}\":{v}")),
            MetricValue::Gauge(v) => gauges.push(format!("\"{k}\":{v}")),
            MetricValue::Histogram(stats) => {
                histograms.push(format!("\"{k}\":{}", hist_json(stats)))
            }
        }
    }
    let trace: Vec<String> = snapshot
        .trace
        .iter()
        .map(|e| {
            format!(
                "{{\"name\":\"{}\",\"start_ns\":{},\"duration_ns\":{}}}",
                json_escape(e.name),
                e.start_ns,
                e.duration_ns
            )
        })
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}},\"trace\":[{}],\"trace_evicted\":{}}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(","),
        trace.join(","),
        snapshot.trace_evicted
    )
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn prometheus_counter_and_gauge_lines() {
        let reg = Registry::new();
        let sink = reg.sink();
        sink.counter("dgs_a_total").add(7);
        sink.gauge("dgs_b_depth").set(-3);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE dgs_a_total counter\ndgs_a_total 7\n"));
        assert!(text.contains("# TYPE dgs_b_depth gauge\ndgs_b_depth -3\n"));
    }

    #[test]
    fn prometheus_histogram_cumulative() {
        let reg = Registry::new();
        let sink = reg.sink();
        let h = sink.histogram("dgs_h");
        h.record(1);
        h.record(1);
        h.record(2);
        let text = reg.to_prometheus();
        assert!(text.contains("dgs_h_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("dgs_h_bucket{le=\"2\"} 3\n"));
        assert!(text.contains("dgs_h_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dgs_h_sum 4\n"));
        assert!(text.contains("dgs_h_count 3\n"));
    }

    #[test]
    fn one_type_line_per_labelled_family() {
        let reg = Registry::new();
        let sink = reg.sink();
        sink.counter_labelled("dgs_c", &[("shard", "0")]).inc();
        sink.counter_labelled("dgs_c", &[("shard", "1")]).inc();
        let text = reg.to_prometheus();
        assert_eq!(text.matches("# TYPE dgs_c counter\n").count(), 1);
        assert!(text.contains("dgs_c{shard=\"0\"} 1\n"));
        assert!(text.contains("dgs_c{shard=\"1\"} 1\n"));
    }

    #[test]
    fn json_shape() {
        let reg = Registry::new();
        let sink = reg.sink();
        sink.counter_labelled("dgs_c", &[("shard", "0")]).inc();
        let json = reg.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"dgs_c{shard=\\\"0\\\"}\":1"));
        assert!(json.ends_with("\"trace_evicted\":0}"));
    }
}
