//! Fixed-capacity ring buffer of span trace events.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// A completed span occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (same string as the backing `_ns` histogram, minus suffix).
    pub name: &'static str,
    /// Start offset in nanoseconds since the registry's epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
}

#[derive(Debug)]
pub(crate) struct TraceLog {
    capacity: usize,
    state: Mutex<TraceState>,
}

#[derive(Debug, Default)]
struct TraceState {
    events: VecDeque<TraceEvent>,
    evicted: u64,
}

impl TraceLog {
    pub(crate) fn new(capacity: usize) -> Self {
        TraceLog {
            capacity: capacity.max(1),
            state: Mutex::new(TraceState {
                events: VecDeque::with_capacity(capacity.max(1)),
                evicted: 0,
            }),
        }
    }

    pub(crate) fn push(&self, event: TraceEvent) {
        // A panic while holding the lock cannot tear the ring (all mutations
        // are VecDeque ops); recover the poisoned state rather than cascade.
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.events.len() == self.capacity {
            st.events.pop_front();
            st.evicted += 1;
        }
        st.events.push_back(event);
    }

    /// Events currently retained, oldest first, plus the eviction count.
    pub(crate) fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        (st.events.iter().cloned().collect(), st.evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let log = TraceLog::new(2);
        for i in 0..4u64 {
            log.push(TraceEvent {
                name: "t",
                start_ns: i,
                duration_ns: 1,
            });
        }
        let (events, evicted) = log.snapshot();
        assert_eq!(evicted, 2);
        assert_eq!(
            events.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }
}
