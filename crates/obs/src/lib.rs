//! # dgs-obs: in-tree metrics and tracing for the dynamic-graph-streams stack
//!
//! A zero-dependency, *global-free* observability layer. There is no static
//! registry and no macro magic: every instrumented component holds plain
//! handles ([`Counter`], [`Gauge`], [`Histogram`]) resolved once from a
//! [`MetricsSink`] at construction / `set_sink` time. The hot path is a single
//! branch on an `Option` plus (when live) one relaxed atomic RMW — no locks,
//! no allocation, no formatting.
//!
//! ## Pay for what you use
//!
//! The default sink is the *null sink* ([`MetricsSink::null`]): every handle it
//! hands out is a no-op whose operations compile down to a `None` check.
//! Components therefore take no constructor changes to stay observable-free —
//! they default to null handles and only light up when the caller threads a
//! live sink (obtained from a [`Registry`]) through `set_sink`.
//!
//! ## Naming scheme
//!
//! Metric names follow `dgs_<crate>_<subsystem>_<name>`, e.g.
//! `dgs_sketch_l0_sample_failures` or `dgs_core_ingest_flush_ns`. Histograms
//! that measure durations use an `_ns` suffix and record nanoseconds. Labelled
//! metrics append `{key="value",...}` with keys sorted, e.g.
//! `dgs_core_ingest_shard_updates{shard="3"}`.
//!
//! ## Export
//!
//! A [`Registry`] snapshots into Prometheus text exposition format
//! ([`Registry::to_prometheus`]) or a single JSON object
//! ([`Registry::to_json`]). Both are deterministic (keys sorted) so they can be
//! golden-tested.
//!
//! ## Tracing
//!
//! [`MetricsSink::span`] returns an RAII [`Span`] guard that records its
//! elapsed time into a `_ns` histogram and, when the registry was built with
//! [`Registry::with_trace`], appends a [`TraceEvent`] to a fixed-capacity ring
//! buffer (oldest events evicted, eviction counted).

// Observability must never take the process down: `unwrap`/`expect` are
// denied crate-wide in non-test code (tests opt back in locally). Poisoned
// locks are recovered with `PoisonError::into_inner` — metric cells are
// plain atomics, so a panic mid-registration cannot leave them torn.
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod export;
mod metrics;
mod registry;
mod trace;

pub use metrics::{
    bucket_index, bucket_upper_edge, Counter, Gauge, HistStats, Histogram, HistogramTimer,
    HISTOGRAM_BUCKETS,
};
pub use registry::{valid_metric_name, MetricValue, MetricsSink, Registry, Snapshot, Span};
pub use trace::TraceEvent;
