//! Atomic metric handles: `Counter`, `Gauge`, `Histogram`.
//!
//! Handles are cheap to clone (an `Option<Arc<..>>`) and share their cell, so
//! a cloned sketch keeps feeding the same metric. A `Default` handle is the
//! null handle: every operation is a branch on `None` and nothing else — no
//! allocation, no atomics.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// Monotonically increasing event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// The no-op handle. All operations are free.
    pub fn null() -> Self {
        Counter(None)
    }

    /// A live handle not attached to any registry. Useful for tests and for
    /// ad-hoc accumulation (e.g. the bench harness).
    pub fn standalone() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    pub(crate) fn from_cell(cell: Arc<AtomicU64>) -> Self {
        Counter(Some(cell))
    }

    /// True when attached to a live cell.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add to the counter, saturating at `u64::MAX`. The hot path stays a
    /// single `fetch_add`; only the (practically unreachable) overflow case
    /// pays a corrective store, so a counter pins at MAX instead of wrapping
    /// back to small values and corrupting rate calculations.
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.0 {
            let prev = c.fetch_add(delta, Relaxed);
            if prev.checked_add(delta).is_none() {
                c.store(u64::MAX, Relaxed);
            }
        }
    }

    /// Current value; 0 for the null handle.
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// Instantaneous signed value (queue depths, budgets).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    pub fn null() -> Self {
        Gauge(None)
    }

    pub fn standalone() -> Self {
        Gauge(Some(Arc::new(AtomicI64::new(0))))
    }

    pub(crate) fn from_cell(cell: Arc<AtomicI64>) -> Self {
        Gauge(Some(cell))
    }

    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(c) = &self.0 {
            c.store(value, Relaxed);
        }
    }

    /// Add to the gauge, saturating at the `i64` range instead of wrapping.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(c) = &self.0 {
            let prev = c.fetch_add(delta, Relaxed);
            if prev.checked_add(delta).is_none() {
                c.store(if delta > 0 { i64::MAX } else { i64::MIN }, Relaxed);
            }
        }
    }

    /// Decrement by one, flooring at zero. For depth-style gauges where a
    /// racing or spurious decrement must never drive the reading negative.
    #[inline]
    pub fn dec_saturating(&self) {
        if let Some(c) = &self.0 {
            let mut cur = c.load(Relaxed);
            while cur > 0 {
                match c.compare_exchange_weak(cur, cur - 1, Relaxed, Relaxed) {
                    Ok(_) => return,
                    Err(v) => cur = v,
                }
            }
        }
    }

    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// Number of log-spaced buckets. Values 0..=3 get exact buckets; above that,
/// each power of two is split into 4 sub-buckets (quartile mantissa), giving
/// ~25% relative resolution across the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 4 + 62 * 4;

/// Bucket index for a recorded value. Monotone in `v`; exact for `v < 4`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    // v >= 4: exp = floor(log2 v) >= 2. Sub-bucket from the two bits below
    // the leading bit.
    let exp = 63 - v.leading_zeros() as u64; // 2..=63
    let sub = (v >> (exp - 2)) & 0b11; // top-2 mantissa bits
    let idx = 4 + (exp - 2) * 4 + sub;
    idx as usize
}

/// Inclusive upper edge of a bucket: the largest value mapping to `index`.
pub fn bucket_upper_edge(index: usize) -> u64 {
    if index < 4 {
        return index as u64;
    }
    let i = (index - 4) as u64;
    let exp = i / 4 + 2;
    let sub = i % 4;
    // Largest v with floor(log2 v) == exp and top-2 mantissa == sub:
    // (base + (sub+1) * 2^(exp-2)) - 1
    let base = 1u64 << exp;
    let step = 1u64 << (exp - 2);
    base.wrapping_add(step.wrapping_mul(sub + 1))
        .wrapping_sub(1)
}

#[derive(Debug)]
pub(crate) struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    pub(crate) fn new() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Summary statistics extracted from a histogram snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct HistStats {
    pub count: u64,
    pub sum: u64,
    /// Non-empty buckets as `(inclusive_upper_edge, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistStats {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another snapshot into this one — counts, sums, and per-bucket
    /// tallies add, so quantiles of the merged stats describe the combined
    /// sample. Exact because both sides use the same fixed bucket edges.
    pub fn merge(&mut self, other: &HistStats) {
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(ea, na)), Some(&(eb, nb))) => match ea.cmp(&eb) {
                    std::cmp::Ordering::Less => {
                        merged.push((ea, na));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((eb, nb));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((ea, na + nb));
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&b), None) => {
                    merged.push(b);
                    i += 1;
                }
                (None, Some(&b)) => {
                    merged.push(b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = merged;
    }

    /// Quantile estimate: upper edge of the bucket containing the q-quantile.
    /// `q` in [0, 1]. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(edge, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return edge;
            }
        }
        self.buckets.last().map_or(0, |&(edge, _)| edge)
    }
}

/// Log-bucketed histogram of `u64` observations (typically nanoseconds).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl Histogram {
    pub fn null() -> Self {
        Histogram(None)
    }

    /// A live handle not attached to any registry.
    pub fn standalone() -> Self {
        Histogram(Some(Arc::new(HistogramCells::new())))
    }

    pub(crate) fn from_cells(cells: Arc<HistogramCells>) -> Self {
        Histogram(Some(cells))
    }

    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_index(value)].fetch_add(1, Relaxed);
            h.count.fetch_add(1, Relaxed);
            // The running sum saturates like `Counter`: an overflowed sum
            // pins at MAX rather than wrapping under the count.
            let prev = h.sum.fetch_add(value, Relaxed);
            if prev.checked_add(value).is_none() {
                h.sum.store(u64::MAX, Relaxed);
            }
        }
    }

    /// RAII timer recording elapsed nanoseconds on drop. The null handle
    /// never reads the clock.
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            hist: self.clone(),
            start: if self.is_live() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    pub fn stats(&self) -> HistStats {
        match &self.0 {
            None => HistStats {
                count: 0,
                sum: 0,
                buckets: Vec::new(),
            },
            Some(h) => {
                let mut buckets = Vec::new();
                for (i, b) in h.buckets.iter().enumerate() {
                    let n = b.load(Relaxed);
                    if n != 0 {
                        buckets.push((bucket_upper_edge(i), n));
                    }
                }
                HistStats {
                    count: h.count.load(Relaxed),
                    sum: h.sum.load(Relaxed),
                    buckets,
                }
            }
        }
    }
}

/// Guard returned by [`Histogram::start_timer`].
#[derive(Debug)]
pub struct HistogramTimer {
    hist: Histogram,
    start: Option<Instant>,
}

impl HistogramTimer {
    /// Stop early and record; equivalent to dropping the guard.
    pub fn observe(self) {}
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_exact_small() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
        let mut prev = 0;
        for exp in 0..=20u32 {
            for off in [0u64, 1, 2, 3] {
                let v = (1u64 << exp).saturating_add(off * (1 << exp) / 8);
                let idx = bucket_index(v);
                assert!(idx >= prev, "not monotone at v={v}");
                prev = idx;
            }
        }
        assert!(bucket_index(u64::MAX) < HISTOGRAM_BUCKETS);
    }

    #[test]
    fn bucket_edges_round_trip() {
        for idx in 0..HISTOGRAM_BUCKETS {
            let edge = bucket_upper_edge(idx);
            assert_eq!(bucket_index(edge), idx, "edge {edge} of bucket {idx}");
            if edge != u64::MAX {
                assert_eq!(bucket_index(edge + 1), idx + 1);
            }
        }
        assert_eq!(bucket_upper_edge(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::standalone();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.stats();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        // 25% relative resolution: the bucket edge is within a factor ~1.25.
        assert!(s.quantile(0.5) >= 50 && s.quantile(0.5) <= 63);
        assert!(s.quantile(0.99) >= 99);
        assert_eq!(s.quantile(0.0), s.buckets[0].0);
    }

    #[test]
    fn hist_stats_merge_equals_single_histogram() {
        let (a, b, both) = (
            Histogram::standalone(),
            Histogram::standalone(),
            Histogram::standalone(),
        );
        for v in 1..=60u64 {
            a.record(v * 7);
            both.record(v * 7);
        }
        for v in 1..=40u64 {
            b.record(v * 1000);
            both.record(v * 1000);
        }
        let mut merged = a.stats();
        merged.merge(&b.stats());
        assert_eq!(merged, both.stats());
        // Merging an empty side is the identity.
        let mut id = both.stats();
        id.merge(&Histogram::standalone().stats());
        assert_eq!(id, both.stats());
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::standalone();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX, "overflowing add must pin at MAX");
        c.inc();
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX, "saturated counter must stay at MAX");
    }

    #[test]
    fn gauge_add_saturates_at_i64_range() {
        let g = Gauge::standalone();
        g.set(i64::MAX - 1);
        g.add(10);
        assert_eq!(g.get(), i64::MAX);
        g.set(i64::MIN + 1);
        g.add(-10);
        assert_eq!(g.get(), i64::MIN);
    }

    #[test]
    fn gauge_dec_saturating_floors_at_zero() {
        let g = Gauge::standalone();
        g.add(2);
        g.dec_saturating();
        g.dec_saturating();
        assert_eq!(g.get(), 0);
        // The spurious extra decrement (e.g. a double-drained queue slot)
        // must not drive a depth gauge negative.
        g.dec_saturating();
        assert_eq!(g.get(), 0);
        // Null handle stays inert.
        Gauge::null().dec_saturating();
    }

    #[test]
    fn histogram_sum_saturates() {
        let h = Histogram::standalone();
        h.record(u64::MAX - 3);
        h.record(100);
        let s = h.stats();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, u64::MAX, "overflowing sum must pin at MAX");
    }

    #[test]
    fn null_handles_are_inert() {
        let c = Counter::null();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(!c.is_live());
        let g = Gauge::null();
        g.set(5);
        assert_eq!(g.get(), 0);
        let h = Histogram::null();
        h.record(123);
        assert_eq!(h.stats().count, 0);
        h.start_timer().observe();
        assert_eq!(h.stats().count, 0);
    }
}
