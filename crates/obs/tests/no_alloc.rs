//! The null-sink hot path must not allocate. This binary installs a counting
//! global allocator and holds exactly one test so no concurrent test can
//! pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn null_sink_hot_path_allocates_nothing() {
    use dgs_obs::MetricsSink;

    let sink = MetricsSink::null();
    // Handle resolution and operations on the null sink: zero allocations.
    let before = ALLOCATIONS.load(Relaxed);
    let counter = sink.counter("dgs_test_zero_alloc_counter");
    let gauge = sink.gauge("dgs_test_zero_alloc_gauge");
    let hist = sink.histogram("dgs_test_zero_alloc_hist");
    for i in 0..10_000u64 {
        counter.inc();
        counter.add(i);
        gauge.set(i as i64);
        gauge.add(1);
        hist.record(i);
        hist.start_timer().observe();
        sink.span("dgs_test_zero_alloc_span").exit();
        let c2 = counter.clone();
        c2.inc();
    }
    let after = ALLOCATIONS.load(Relaxed);
    assert_eq!(
        after - before,
        0,
        "null-sink hot path allocated {} times",
        after - before
    );
}
