//! Property tests: concurrent increments sum exactly (no lost updates).

use dgs_obs::Registry;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn concurrent_counter_sums_exactly() {
    let reg = Registry::new();
    let counter = reg.sink().counter("dgs_test_concurrent_hits");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let c = counter.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(
        reg.counter_value("dgs_test_concurrent_hits"),
        Some(THREADS as u64 * PER_THREAD)
    );
}

#[test]
fn concurrent_histogram_counts_and_sums_exactly() {
    let reg = Registry::new();
    let hist = reg.sink().histogram("dgs_test_concurrent_lat");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread values across many buckets.
                    h.record((t as u64 + 1) * (i % 1024));
                }
            });
        }
    });
    let stats = reg
        .histogram_stats("dgs_test_concurrent_lat")
        .expect("histogram registered");
    let expected_count = THREADS as u64 * PER_THREAD;
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..PER_THREAD).map(|i| (t + 1) * (i % 1024)).sum::<u64>())
        .sum();
    assert_eq!(stats.count, expected_count);
    assert_eq!(stats.sum, expected_sum);
    // Per-bucket counts must also add up exactly to the total.
    let bucket_total: u64 = stats.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, expected_count);
}

#[test]
fn concurrent_gauge_adds_sum_exactly() {
    let reg = Registry::new();
    let gauge = reg.sink().gauge("dgs_test_concurrent_depth");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let g = gauge.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    g.add(3);
                    g.add(-2);
                }
            });
        }
    });
    assert_eq!(
        reg.gauge_value("dgs_test_concurrent_depth"),
        Some(THREADS as i64 * PER_THREAD as i64)
    );
}

#[test]
fn concurrent_registration_yields_one_cell() {
    let reg = Registry::new();
    let sink = reg.sink();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let s = sink.clone();
            scope.spawn(move || {
                for _ in 0..100 {
                    s.counter("dgs_test_concurrent_reg").inc();
                }
            });
        }
    });
    assert_eq!(
        reg.counter_value("dgs_test_concurrent_reg"),
        Some(THREADS as u64 * 100)
    );
    // Exactly one metric key exists.
    let snap = reg.snapshot();
    assert_eq!(snap.metrics.len(), 1);
}
