//! Golden tests: exporter output is byte-for-byte deterministic.

use dgs_obs::Registry;

fn populated_registry() -> Registry {
    let reg = Registry::with_trace(4);
    let sink = reg.sink();
    sink.counter("dgs_sketch_l0_sample_failures").add(2);
    sink.counter_labelled("dgs_core_ingest_shard_updates", &[("shard", "1")])
        .add(640);
    sink.gauge("dgs_core_ingest_queue_depth").set(17);
    let h = sink.histogram("dgs_core_boost_repetitions_until_success");
    h.record(1);
    h.record(1);
    h.record(1);
    h.record(2);
    h.record(5);
    reg
}

#[test]
fn prometheus_golden() {
    let reg = populated_registry();
    let expected = "\
# TYPE dgs_core_boost_repetitions_until_success histogram
dgs_core_boost_repetitions_until_success_bucket{le=\"1\"} 3
dgs_core_boost_repetitions_until_success_bucket{le=\"2\"} 4
dgs_core_boost_repetitions_until_success_bucket{le=\"5\"} 5
dgs_core_boost_repetitions_until_success_bucket{le=\"+Inf\"} 5
dgs_core_boost_repetitions_until_success_sum 10
dgs_core_boost_repetitions_until_success_count 5
# TYPE dgs_core_ingest_queue_depth gauge
dgs_core_ingest_queue_depth 17
# TYPE dgs_core_ingest_shard_updates counter
dgs_core_ingest_shard_updates{shard=\"1\"} 640
# TYPE dgs_sketch_l0_sample_failures counter
dgs_sketch_l0_sample_failures 2
";
    assert_eq!(reg.to_prometheus(), expected);
}

#[test]
fn json_golden() {
    let reg = populated_registry();
    let expected = concat!(
        "{\"counters\":{",
        "\"dgs_core_ingest_shard_updates{shard=\\\"1\\\"}\":640,",
        "\"dgs_sketch_l0_sample_failures\":2",
        "},\"gauges\":{",
        "\"dgs_core_ingest_queue_depth\":17",
        "},\"histograms\":{",
        "\"dgs_core_boost_repetitions_until_success\":",
        "{\"count\":5,\"sum\":10,\"mean\":2.0,\"p50\":1,\"p95\":5,\"p99\":5}",
        "},\"trace\":[],\"trace_evicted\":0}",
    );
    assert_eq!(reg.to_json(), expected);
}

#[test]
fn prometheus_label_values_escaped() {
    let reg = Registry::new();
    let sink = reg.sink();
    sink.counter_labelled("dgs_test_paths", &[("path", "C:\\tmp\\\"x\"\nnext")])
        .inc();
    let text = reg.to_prometheus();
    assert!(
        text.contains("dgs_test_paths{path=\"C:\\\\tmp\\\\\\\"x\\\"\\nnext\"} 1\n"),
        "escaped backslash/quote/newline missing from:\n{text}"
    );
    // The raw (unescaped) byte sequences must not leak into the output.
    assert!(!text.contains('\u{a}'.to_string().repeat(2).as_str()));
    assert!(!text.contains("\"x\""));
}

/// Golden file for the SLO and trace metric families introduced with the
/// request-tracing layer. `dgs-obs` cannot depend on `dgs-core`/`dgs-trace`,
/// so the families are registered by hand with the exact names those crates
/// emit — the golden output pins the exposition format they rely on.
#[test]
fn slo_and_trace_families_golden() {
    let reg = Registry::new();
    let sink = reg.sink();
    for (tenant, state) in [("acme", 0), ("bulk", 2)] {
        sink.gauge_labelled(
            "dgs_core_slo_state",
            &[("tenant", tenant), ("slo", "latency")],
        )
        .set(state);
        sink.gauge_labelled(
            "dgs_core_slo_burn_short_x1000",
            &[("tenant", tenant), ("slo", "latency")],
        )
        .set(state * 7_000);
    }
    sink.counter_labelled(
        "dgs_core_slo_transitions",
        &[("tenant", "bulk"), ("slo", "latency"), ("to", "page")],
    )
    .inc();
    sink.counter("dgs_core_slo_evaluations").add(12);
    sink.counter("dgs_trace_events").add(4096);
    sink.counter("dgs_trace_postmortems").add(3);
    let expected = "\
# TYPE dgs_core_slo_burn_short_x1000 gauge
dgs_core_slo_burn_short_x1000{slo=\"latency\",tenant=\"acme\"} 0
dgs_core_slo_burn_short_x1000{slo=\"latency\",tenant=\"bulk\"} 14000
# TYPE dgs_core_slo_evaluations counter
dgs_core_slo_evaluations 12
# TYPE dgs_core_slo_state gauge
dgs_core_slo_state{slo=\"latency\",tenant=\"acme\"} 0
dgs_core_slo_state{slo=\"latency\",tenant=\"bulk\"} 2
# TYPE dgs_core_slo_transitions counter
dgs_core_slo_transitions{slo=\"latency\",tenant=\"bulk\",to=\"page\"} 1
# TYPE dgs_trace_events counter
dgs_trace_events 4096
# TYPE dgs_trace_postmortems counter
dgs_trace_postmortems 3
";
    assert_eq!(reg.to_prometheus(), expected);
}

#[test]
fn exporters_stable_across_snapshots() {
    let reg = populated_registry();
    assert_eq!(reg.to_prometheus(), reg.to_prometheus());
    assert_eq!(reg.to_json(), reg.to_json());
}
