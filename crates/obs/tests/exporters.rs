//! Golden tests: exporter output is byte-for-byte deterministic.

use dgs_obs::Registry;

fn populated_registry() -> Registry {
    let reg = Registry::with_trace(4);
    let sink = reg.sink();
    sink.counter("dgs_sketch_l0_sample_failures").add(2);
    sink.counter_labelled("dgs_core_ingest_shard_updates", &[("shard", "1")])
        .add(640);
    sink.gauge("dgs_core_ingest_queue_depth").set(17);
    let h = sink.histogram("dgs_core_boost_repetitions_until_success");
    h.record(1);
    h.record(1);
    h.record(1);
    h.record(2);
    h.record(5);
    reg
}

#[test]
fn prometheus_golden() {
    let reg = populated_registry();
    let expected = "\
# TYPE dgs_core_boost_repetitions_until_success histogram
dgs_core_boost_repetitions_until_success_bucket{le=\"1\"} 3
dgs_core_boost_repetitions_until_success_bucket{le=\"2\"} 4
dgs_core_boost_repetitions_until_success_bucket{le=\"5\"} 5
dgs_core_boost_repetitions_until_success_bucket{le=\"+Inf\"} 5
dgs_core_boost_repetitions_until_success_sum 10
dgs_core_boost_repetitions_until_success_count 5
# TYPE dgs_core_ingest_queue_depth gauge
dgs_core_ingest_queue_depth 17
# TYPE dgs_core_ingest_shard_updates counter
dgs_core_ingest_shard_updates{shard=\"1\"} 640
# TYPE dgs_sketch_l0_sample_failures counter
dgs_sketch_l0_sample_failures 2
";
    assert_eq!(reg.to_prometheus(), expected);
}

#[test]
fn json_golden() {
    let reg = populated_registry();
    let expected = concat!(
        "{\"counters\":{",
        "\"dgs_core_ingest_shard_updates{shard=\\\"1\\\"}\":640,",
        "\"dgs_sketch_l0_sample_failures\":2",
        "},\"gauges\":{",
        "\"dgs_core_ingest_queue_depth\":17",
        "},\"histograms\":{",
        "\"dgs_core_boost_repetitions_until_success\":",
        "{\"count\":5,\"sum\":10,\"mean\":2.0,\"p50\":1,\"p95\":5,\"p99\":5}",
        "},\"trace\":[],\"trace_evicted\":0}",
    );
    assert_eq!(reg.to_json(), expected);
}

#[test]
fn exporters_stable_across_snapshots() {
    let reg = populated_registry();
    assert_eq!(reg.to_prometheus(), reg.to_prometheus());
    assert_eq!(reg.to_json(), reg.to_json());
}
