//! The spanning-forest / spanning-graph sketch (Theorems 2 and 13) and its
//! Borůvka decoder.
//!
//! Structure: for each present vertex `i` and each Borůvka round `t`, an
//! independent ℓ0-sampler of the incidence vector `a^i` (see
//! [`crate::vector`]). All vertices share one seed *per round* — summing
//! same-round samplers over a component `S` yields a sampler of
//! `Σ_{i∈S} a^i`, whose support is exactly `δ(S)`. Each round therefore
//! extracts one outgoing edge per component; fresh rounds keep the
//! randomness independent of previously revealed edges (the Section 4.2
//! pitfall), and `⌈log |V|⌉ + slack` rounds connect everything whp.
//!
//! The sketch is *vertex-based* in the paper's sense: every linear
//! measurement is local to one vertex, which is what [`crate::player`]
//! exploits.

use std::collections::{BTreeMap, BTreeSet};

use dgs_field::{Fp, SeedTree};
use dgs_hypergraph::algo::UnionFind;
use dgs_hypergraph::{EdgeSpace, HyperEdge, VertexId};
use dgs_obs::{Counter, Gauge, Histogram, MetricsSink};
use dgs_sketch::{L0Params, L0Sampler, Profile, SketchError, SketchResult};

use crate::vector::incidence_coefficient;

/// Sizing parameters for a [`SpanningForestSketch`].
#[derive(Clone, Copy, Debug)]
pub struct ForestParams {
    /// ℓ0-sampler parameters.
    pub l0: L0Params,
    /// Borůvka rounds beyond `ceil(log2 |V|)` to absorb decode failures.
    pub extra_rounds: usize,
}

impl ForestParams {
    /// Profile-derived defaults for a sketch over `dimension` edge indices.
    pub fn new(profile: Profile, dimension: u64) -> ForestParams {
        ForestParams {
            l0: L0Params::for_dimension(dimension, profile),
            extra_rounds: 2,
        }
    }
}

/// Metric handles for one sketch; null (free) by default, shared across
/// clones, excluded from the codec.
#[derive(Clone, Debug, Default)]
struct ForestMetrics {
    decode_attempts: Counter,
    decode_successes: Counter,
    decode_failures: Counter,
    rounds_used: Histogram,
    rounds_budget: Gauge,
    batch_zero_skips: Counter,
    /// Wall time of the component-aggregation phase per decode (ns,
    /// critical path across stripes).
    decode_aggregate_ns: Histogram,
    /// Wall time of the sampler-decode phase per decode (ns, critical
    /// path across stripes).
    decode_sample_ns: Histogram,
    /// Wall time of the sequential merge/certification phase per decode
    /// (ns).
    decode_merge_ns: Histogram,
}

impl ForestMetrics {
    fn resolve(sink: &MetricsSink) -> ForestMetrics {
        ForestMetrics {
            decode_attempts: sink.counter("dgs_connectivity_forest_decode_attempts"),
            decode_successes: sink.counter("dgs_connectivity_forest_decode_successes"),
            decode_failures: sink.counter("dgs_connectivity_forest_decode_failures"),
            rounds_used: sink.histogram("dgs_connectivity_forest_rounds_used"),
            rounds_budget: sink.gauge("dgs_connectivity_forest_rounds_budget"),
            batch_zero_skips: sink.counter("dgs_connectivity_forest_batch_zero_skips"),
            decode_aggregate_ns: sink.histogram("dgs_connectivity_forest_decode_aggregate_ns"),
            decode_sample_ns: sink.histogram("dgs_connectivity_forest_decode_sample_ns"),
            decode_merge_ns: sink.histogram("dgs_connectivity_forest_decode_merge_ns"),
        }
    }
}

/// Reusable state for the arena decode engine
/// ([`SpanningForestSketch::try_decode_with_scratch`]).
///
/// Holds the component-sum arena (one `[W | S | F]` stripe of
/// [`L0Sampler::state_len`] cells per live component), the per-stripe lazy
/// `u128` accumulators, the union-find grouping tables, and the per-stripe
/// peeling scratch. Buffers are resized but never shrunk, so a scratch
/// reused across decode calls performs **zero steady-state allocations**
/// beyond the returned edge list: the arena high-water mark is reached on
/// the first round of the first decode (every vertex is its own
/// component) and every later round fits inside it.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Component-sum arena: `live_components * stride` field elements.
    agg: Vec<Fp>,
    /// Lazy accumulators, one `stride`-length stripe per worker.
    acc: Vec<u128>,
    /// Union-find root of each local vertex this round.
    root_of: Vec<u32>,
    /// Root -> component slot (ascending-root order).
    slot_of: Vec<u32>,
    /// Live roots, ascending.
    roots: Vec<u32>,
    /// Slot -> offset into `members` (length `roots.len() + 1`).
    starts: Vec<u32>,
    /// Scatter cursors while grouping.
    cursors: Vec<u32>,
    /// Local vertices grouped by component slot, ascending within a slot.
    members: Vec<u32>,
    /// Per-slot sample outcome of the current round.
    results: Vec<SketchResult<Option<(u64, i64)>>>,
    /// Per-worker peeling scratch.
    peel: Vec<dgs_sketch::PeelScratch>,
    /// Edges sampled this round, in ascending-root order.
    merges: Vec<HyperEdge>,
    /// Local endpoints of the edge being merged.
    locals: Vec<u32>,
    /// Kept spanning edges (sorted and deduplicated on return).
    out: Vec<HyperEdge>,
}

impl DecodeScratch {
    /// An empty scratch; buffers grow to their steady-state sizes on first
    /// use.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }
}

/// Per-component verdict of one round's sample, shared by the reference
/// decoder and the arena engine.
enum SampleOutcome {
    /// The component advanced: an edge was queued or its boundary is
    /// certified zero.
    Advanced,
    /// A retryable sampler failure — the round cannot certify completeness.
    Failed,
}

/// A linear sketch of a (hyper)graph from which a spanning graph of the
/// subgraph induced on a fixed vertex set can be decoded.
#[derive(Clone, Debug)]
pub struct SpanningForestSketch {
    space: EdgeSpace,
    /// Present vertices, sorted ascending.
    vertices: Vec<VertexId>,
    /// Global vertex id -> local index (`u32::MAX` = absent).
    vpos: Vec<u32>,
    rounds: usize,
    /// `rounds * |vertices|` samplers, row-major by round.
    samplers: Vec<L0Sampler>,
    metrics: ForestMetrics,
}

/// The deterministic construction plan shared by the full sketch and the
/// per-player states: round count and the per-sampler level cap for a
/// sketch over `nv` present vertices.
pub(crate) fn sampler_plan(space: &EdgeSpace, nv: usize, params: ForestParams) -> (usize, usize) {
    let rounds = ceil_log2(nv.max(2)) + params.extra_rounds;
    let level_cap = if nv >= 2 {
        let induced_dim = EdgeSpace::new(nv.max(2), space.max_rank())
            .map(|es| es.dimension())
            .unwrap_or(space.dimension());
        L0Params::levels_for_dimension(induced_dim.min(space.dimension()))
    } else {
        2
    };
    (rounds, level_cap)
}

/// Builds the per-round samplers of one vertex of a sketch over `nv`
/// present vertices — bit-identical to the slice the full constructor
/// would produce, so player-built states merge exactly.
pub(crate) fn vertex_samplers_for(
    space: &EdgeSpace,
    nv: usize,
    seeds: &SeedTree,
    params: ForestParams,
) -> Vec<L0Sampler> {
    let (rounds, level_cap) = sampler_plan(space, nv, params);
    (0..rounds)
        .map(|round| {
            L0Sampler::with_levels(
                &seeds.child(round as u64),
                space.dimension(),
                params.l0,
                Some(level_cap),
            )
        })
        .collect()
}

impl SpanningForestSketch {
    /// Sketch over all `n` vertices of the edge space.
    pub fn new_full(space: EdgeSpace, seeds: &SeedTree, params: ForestParams) -> Self {
        let vertices: Vec<VertexId> = (0..space.n() as VertexId).collect();
        Self::new_induced(space, vertices, seeds, params)
    }

    /// **Ablation constructor**: every Borůvka round shares one seed — the
    /// "reuse a single sketch" fallacy of Section 4.2 applied to rounds.
    /// A component whose sampler fails once then re-fails identically every
    /// round (the aggregate state never changes until it merges), so decode
    /// errors stop being independent retries. Experiment E11 measures this;
    /// never use it for real work.
    pub fn new_full_shared_rounds(
        space: EdgeSpace,
        seeds: &SeedTree,
        params: ForestParams,
    ) -> Self {
        let mut sk = Self::new_full(space, seeds, params);
        let nv = sk.vertices.len();
        // Overwrite every round's samplers with clones of round 0's
        // (identical seeds and, so far, identical zero states).
        for round in 1..sk.rounds {
            for local in 0..nv {
                sk.samplers[round * nv + local] = sk.samplers[local].clone();
            }
        }
        sk
    }

    /// Sketch of the subgraph induced on `vertices` (used by the
    /// vertex-connectivity structures, where each subsampled graph keeps
    /// only ~n/k vertices). Updates must only cover edges with *all*
    /// endpoints present.
    pub fn new_induced(
        space: EdgeSpace,
        mut vertices: Vec<VertexId>,
        seeds: &SeedTree,
        params: ForestParams,
    ) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        assert!(
            vertices.iter().all(|&v| (v as usize) < space.n()),
            "vertex out of range for edge space"
        );
        let nv = vertices.len();
        let mut vpos = vec![u32::MAX; space.n()];
        for (i, &v) in vertices.iter().enumerate() {
            vpos[v as usize] = i as u32;
        }
        // Induced support never exceeds the edge space on |vertices|
        // vertices — `sampler_plan` caps sampler levels accordingly.
        let (rounds, level_cap) = sampler_plan(&space, nv, params);
        let mut samplers = Vec::with_capacity(rounds * nv);
        for round in 0..rounds {
            let round_seed = seeds.child(round as u64);
            for _ in 0..nv {
                samplers.push(L0Sampler::with_levels(
                    &round_seed,
                    space.dimension(),
                    params.l0,
                    Some(level_cap),
                ));
            }
        }
        SpanningForestSketch {
            space,
            vertices,
            vpos,
            rounds,
            samplers,
            metrics: ForestMetrics::default(),
        }
    }

    /// Attach metric handles resolved from `sink`
    /// (`dgs_connectivity_forest_*`: decode outcome counters, Borůvka
    /// rounds-used histogram vs. the rounds-budget gauge, zero-cancellation
    /// batch skips) and propagate to every per-vertex per-round ℓ0-sampler
    /// (`dgs_sketch_*`). Decode-time aggregate samplers are clones and share
    /// these handles, so their sample outcomes are counted too. Default is
    /// the null sink: recording is free.
    pub fn set_sink(&mut self, sink: &MetricsSink) {
        self.metrics = ForestMetrics::resolve(sink);
        self.metrics.rounds_budget.set(self.rounds as i64);
        for s in &mut self.samplers {
            s.set_sink(sink);
        }
    }

    /// The underlying edge space.
    pub fn space(&self) -> &EdgeSpace {
        &self.space
    }

    /// The present vertex set (sorted).
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// True iff `v` is in the present vertex set.
    pub fn has_vertex(&self, v: VertexId) -> bool {
        (v as usize) < self.vpos.len() && self.vpos[v as usize] != u32::MAX
    }

    /// Number of Borůvka rounds (independent sketch copies).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Fallible signed update for hyperedge `e` (+1 insert, -1 delete).
    ///
    /// Validates the edge against the space (rank bound, vertex range) and
    /// the present vertex set *before* touching any sampler cell, so a
    /// malformed stream element surfaces as [`SketchError::InvalidInput`]
    /// — in release builds too — instead of corrupting state or panicking.
    pub fn try_update(&mut self, e: &HyperEdge, delta: i64) -> SketchResult<()> {
        if e.cardinality() > self.space.max_rank() {
            return Err(SketchError::invalid(format!(
                "edge of rank {} exceeds the space's rank bound {}",
                e.cardinality(),
                self.space.max_rank()
            )));
        }
        for &v in e.vertices() {
            if (v as usize) >= self.space.n() {
                return Err(SketchError::invalid(format!(
                    "vertex {v} out of range for a {}-vertex edge space",
                    self.space.n()
                )));
            }
            if self.vpos[v as usize] == u32::MAX {
                return Err(SketchError::invalid(format!(
                    "update touches absent vertex {v}"
                )));
            }
        }
        let idx = self.space.rank(e);
        let nv = self.vertices.len();
        for &v in e.vertices() {
            let local = self.vpos[v as usize] as usize;
            let coeff = incidence_coefficient(e, v) * delta;
            for round in 0..self.rounds {
                self.samplers[round * nv + local].update(idx, coeff)?;
            }
        }
        Ok(())
    }

    /// Validates one edge exactly as [`try_update`](Self::try_update) does,
    /// without touching any state.
    ///
    /// Public so wrappers that buffer updates before forwarding them (the
    /// hybrid sparse/sketch backend in `dgs-core`) can accept and reject
    /// *exactly* the streams this sketch would — a buffered prefix that was
    /// never validated here could poison a later spill replay.
    pub fn validate_edge(&self, e: &HyperEdge) -> SketchResult<()> {
        if e.cardinality() > self.space.max_rank() {
            return Err(SketchError::invalid(format!(
                "edge of rank {} exceeds the space's rank bound {}",
                e.cardinality(),
                self.space.max_rank()
            )));
        }
        for &v in e.vertices() {
            if (v as usize) >= self.space.n() {
                return Err(SketchError::invalid(format!(
                    "vertex {v} out of range for a {}-vertex edge space",
                    self.space.n()
                )));
            }
            if self.vpos[v as usize] == u32::MAX {
                return Err(SketchError::invalid(format!(
                    "update touches absent vertex {v}"
                )));
            }
        }
        Ok(())
    }

    /// Batched signed updates through the planned SoA kernels.
    ///
    /// Exploits the per-round seed sharing: all samplers of one round are
    /// drawn from the same seed, so the geometric levels, fingerprint
    /// powers, and bucket columns of each edge index are computed **once
    /// per round** ([`L0Sampler::plan_updates`]) and scattered into every
    /// endpoint row — both endpoints of an edge, and every vertex the batch
    /// touches, reuse the same plan. The scalar path recomputes all of it
    /// per (endpoint, round).
    ///
    /// Bit-identical to calling [`try_update`](Self::try_update) per entry
    /// in order (field addition is exact and commutative), except that an
    /// invalid entry rejects the *entire* batch before anything is applied,
    /// whereas the scalar loop would have applied the valid prefix.
    pub fn try_update_batch(&mut self, updates: &[(HyperEdge, i64)]) -> SketchResult<()> {
        let nv = self.vertices.len();
        if updates.is_empty() || nv == 0 {
            for (e, _) in updates {
                self.validate_edge(e)?;
            }
            return Ok(());
        }
        for (e, _) in updates {
            self.validate_edge(e)?;
        }
        let (keys, by_row) = self.aggregate_batch(updates);
        if keys.is_empty() {
            return Ok(());
        }
        for round in 0..self.rounds {
            // Any sampler of the round carries the round's seeds; plan once.
            let plan = self.samplers[round * nv].plan_updates(&keys)?;
            for (local, items) in by_row.iter().enumerate() {
                if items.is_empty() {
                    continue;
                }
                self.samplers[round * nv + local].apply_planned_many(&plan, items)?;
            }
        }
        Ok(())
    }

    /// Collapses the batch per edge rank, summing deltas in the field.
    ///
    /// Churn streams revisit edges (insert, delete, re-insert): equal ranks
    /// hash identically, so duplicates share one plan slot, and because
    /// field addition is exact, applying the summed delta once is
    /// bit-identical to applying each update in turn. Edges whose deltas
    /// cancel to zero are dropped outright (adding zero is the identity),
    /// removing both their planning and their apply work — on a
    /// deletion-heavy stream that is most of the batch.
    ///
    /// Returns the live (nonzero) rank list plus, per vertex row, the
    /// `(plan key id, field coefficient)` contributions.
    #[allow(clippy::type_complexity)]
    fn aggregate_batch(&self, updates: &[(HyperEdge, i64)]) -> (Vec<u64>, Vec<Vec<(u32, Fp)>>) {
        let mut uniq: Vec<u64> = Vec::with_capacity(updates.len());
        let mut first: Vec<usize> = Vec::with_capacity(updates.len());
        let mut sums: Vec<Fp> = Vec::with_capacity(updates.len());
        let mut seen: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::with_capacity(updates.len());
        for (i, (e, delta)) in updates.iter().enumerate() {
            let rank = self.space.rank(e);
            let id = *seen.entry(rank).or_insert_with(|| {
                uniq.push(rank);
                first.push(i);
                sums.push(Fp::ZERO);
                uniq.len() - 1
            });
            sums[id] = sums[id].add(Fp::from_i64(*delta));
        }
        let mut keys: Vec<u64> = Vec::with_capacity(uniq.len());
        let mut by_row: Vec<Vec<(u32, Fp)>> = vec![Vec::new(); self.vertices.len()];
        let mut zero_skips = 0u64;
        for (id, &rank) in uniq.iter().enumerate() {
            if sums[id] == Fp::ZERO {
                zero_skips += 1;
                continue;
            }
            let lid = keys.len() as u32;
            keys.push(rank);
            let (e, _) = &updates[first[id]];
            for &v in e.vertices() {
                let local = self.vpos[v as usize] as usize;
                let d = match incidence_coefficient(e, v) {
                    1 => sums[id],
                    -1 => sums[id].neg(),
                    ic => Fp::from_i64(ic).mul(sums[id]),
                };
                by_row[local].push((lid, d));
            }
        }
        self.metrics.batch_zero_skips.add(zero_skips);
        (keys, by_row)
    }

    /// Minimum vertex rows per ingest stripe. Below this the per-batch
    /// thread spawn and cache handoff cost more than the rows' apply work,
    /// so the effective thread count is reduced instead — stripe
    /// granularity stays proportional to rows per thread.
    const MIN_STRIPE_ROWS: usize = 8;

    /// Target working-set bytes of one sub-chunk pass of a stripe (all
    /// rounds of the sub-chunk's rows). Sized to comfortably fit a
    /// commodity L2 so a worker's scatter destinations stay cache-resident
    /// while it cycles through the rounds.
    const SUB_CHUNK_TARGET_BYTES: usize = 512 << 10;

    /// [`try_update_batch`](Self::try_update_batch) with the per-vertex
    /// sampler rows striped across the persistent sticky worker pool
    /// ([`dgs_pool::StickyPool`]).
    ///
    /// Striping is deterministic and seed-stable: the vertex rows are cut
    /// into at most `threads` **contiguous chunks** of at least
    /// [`MIN_STRIPE_ROWS`](Self::MIN_STRIPE_ROWS) rows, stripe `t` is
    /// always submitted to pool worker `t` (sticky ownership — the same
    /// OS thread touches the same sampler rows batch after batch, so the
    /// rows stay hot in that core's cache), and each worker applies its
    /// rows' updates in stream order — so every sampler cell sees exactly
    /// the sequence of field additions the sequential path performs, and
    /// the result is bit-identical for every thread count. Two further
    /// levers over the earlier scoped-thread version:
    ///
    /// * **Parallel round planning.** Per-round [`L0Plan`]s depend only on
    ///   the round's seeds and the aggregated key list, so they are
    ///   computed concurrently (round `r` on worker `r % threads`) instead
    ///   of sequentially before the fan-out — planning was the serial
    ///   fraction that capped striped speedup well below the thread count.
    /// * **Cache-sized sub-chunking.** Within a stripe, rows are processed
    ///   in sub-chunks sized so one pass (all rounds of the sub-chunk)
    ///   writes at most [`SUB_CHUNK_TARGET_BYTES`](Self::SUB_CHUNK_TARGET_BYTES)
    ///   of sampler state, keeping the scatter destinations L2-resident.
    ///
    /// Plans are deterministic functions of `(seed, keys)`, and each
    /// sampler still receives exactly one `apply_planned_many` call with
    /// the same items in the same order, so neither lever affects the
    /// byte-identity contract.
    pub fn try_update_batch_striped(
        &mut self,
        updates: &[(HyperEdge, i64)],
        threads: usize,
    ) -> SketchResult<()> {
        let nv = self.vertices.len();
        // Chunk size proportional to rows per thread, floored so tiny
        // sketches collapse to fewer (or one) worker.
        let chunk = nv
            .div_ceil(threads.max(1))
            .max(Self::MIN_STRIPE_ROWS.min(nv.max(1)));
        let stripes = nv.div_ceil(chunk.max(1));
        if stripes <= 1 || updates.is_empty() {
            return self.try_update_batch(updates);
        }
        for (e, _) in updates {
            self.validate_edge(e)?;
        }
        // Aggregate in the field once; the key list is shared by all plans.
        let (keys, by_row) = self.aggregate_batch(updates);
        if keys.is_empty() {
            return Ok(());
        }
        let rounds = self.rounds;
        // Rows of one sub-chunk pass: all `rounds` samplers of each row.
        let row_pass_bytes = rounds * self.samplers[0].state_len() * std::mem::size_of::<Fp>();
        let sub_rows = (Self::SUB_CHUNK_TARGET_BYTES / row_pass_bytes.max(1)).max(1);
        dgs_pool::with_local_pool(stripes, |pool| {
            // Phase 1: plan every round concurrently. Each job owns one
            // slot of `plan_slots` (disjoint `&mut` from `iter_mut`), and
            // the scope barrier guarantees all slots are filled before the
            // fan-out below reads them.
            let mut plan_slots: Vec<Option<SketchResult<dgs_sketch::L0Plan>>> =
                (0..rounds).map(|_| None).collect();
            {
                let samplers = &self.samplers;
                let keys = &keys;
                pool.scope(|scope| {
                    for (round, slot) in plan_slots.iter_mut().enumerate() {
                        let sampler = &samplers[round * nv];
                        scope.spawn(round, move || {
                            *slot = Some(sampler.plan_updates(keys));
                        });
                    }
                });
            }
            let mut plans = Vec::with_capacity(rounds);
            for slot in plan_slots {
                plans.push(slot.expect("plan job did not run")?);
            }
            // Hand each stripe exclusive slices of its rows: per round, the
            // sampler table is row-major by vertex, so stripe `t` owns the
            // contiguous sub-slice `[t*chunk, min((t+1)*chunk, nv))` of
            // every round — no per-row option table, no interleaved
            // ownership.
            let mut stripe_slices: Vec<Vec<&mut [L0Sampler]>> =
                (0..stripes).map(|_| Vec::with_capacity(rounds)).collect();
            let mut rest: &mut [L0Sampler] = &mut self.samplers;
            for _ in 0..rounds {
                let (mut row, tail) = rest.split_at_mut(nv);
                rest = tail;
                for slices in stripe_slices.iter_mut() {
                    let take = chunk.min(row.len());
                    let (head, row_tail) = row.split_at_mut(take);
                    slices.push(head);
                    row = row_tail;
                }
            }
            // Phase 2: sticky fan-out — stripe `t` to worker `t`, every
            // batch, for the pool's lifetime.
            let mut results: Vec<SketchResult<()>> = (0..stripes).map(|_| Ok(())).collect();
            pool.scope(|scope| {
                for ((t, mut slices), result) in stripe_slices
                    .into_iter()
                    .enumerate()
                    .zip(results.iter_mut())
                {
                    let plans = &plans;
                    let by_row = &by_row;
                    scope.spawn(t, move || {
                        let lo = t * chunk;
                        let stripe_rows = slices.first().map_or(0, |s| s.len());
                        let mut start = 0usize;
                        'subchunks: while start < stripe_rows {
                            let end = (start + sub_rows).min(stripe_rows);
                            for (round, plan) in plans.iter().enumerate() {
                                for off in start..end {
                                    let items = &by_row[lo + off];
                                    if items.is_empty() {
                                        continue;
                                    }
                                    if let Err(e) =
                                        slices[round][off].apply_planned_many(plan, items)
                                    {
                                        *result = Err(e);
                                        break 'subchunks;
                                    }
                                }
                            }
                            start = end;
                        }
                    });
                }
            });
            for r in results {
                r?;
            }
            Ok(())
        })
    }

    /// Applies a signed update for hyperedge `e` (+1 insert, -1 delete).
    ///
    /// # Panics
    /// Panics if the edge is invalid for this sketch (absent endpoint,
    /// out-of-range vertex, rank violation) — callers filter edges for
    /// induced subgraphs. Use [`try_update`](Self::try_update) to handle
    /// untrusted streams without panicking.
    pub fn update(&mut self, e: &HyperEdge, delta: i64) {
        if let Err(err) = self.try_update(e, delta) {
            panic!("{err}");
        }
    }

    /// Applies a batch of known edges with a common sign — the peeling
    /// primitive `B(G) - Σ_j B(F_j)` of Sections 4.1–4.2.
    pub fn apply_edges<'a>(&mut self, edges: impl IntoIterator<Item = &'a HyperEdge>, delta: i64) {
        for e in edges {
            self.update(e, delta);
        }
    }

    fn check_compatible(&self, rhs: &SpanningForestSketch) -> SketchResult<()> {
        if self.vertices != rhs.vertices || self.rounds != rhs.rounds {
            return Err(SketchError::invalid(format!(
                "forest sketch shape mismatch: {} vs {} vertices, {} vs {} rounds",
                self.vertices.len(),
                rhs.vertices.len(),
                self.rounds,
                rhs.rounds
            )));
        }
        Ok(())
    }

    /// Fallible cell-wise sum; [`SketchError::InvalidInput`] on a shape or
    /// seed mismatch (e.g. sketches restored from divergent checkpoints).
    pub fn try_add_assign_sketch(&mut self, rhs: &SpanningForestSketch) -> SketchResult<()> {
        self.check_compatible(rhs)?;
        for (a, b) in self.samplers.iter_mut().zip(&rhs.samplers) {
            a.add_assign_sketch(b)?;
        }
        Ok(())
    }

    /// Fallible cell-wise difference; see
    /// [`try_add_assign_sketch`](Self::try_add_assign_sketch).
    pub fn try_sub_assign_sketch(&mut self, rhs: &SpanningForestSketch) -> SketchResult<()> {
        self.check_compatible(rhs)?;
        for (a, b) in self.samplers.iter_mut().zip(&rhs.samplers) {
            a.sub_assign_sketch(b)?;
        }
        Ok(())
    }

    /// Cell-wise sum with a same-seeded, same-shape sketch.
    ///
    /// # Panics
    /// Panics on shape/seed mismatch; in-process shard merges always agree.
    pub fn add_assign_sketch(&mut self, rhs: &SpanningForestSketch) {
        if let Err(err) = self.try_add_assign_sketch(rhs) {
            panic!("{err}");
        }
    }

    /// Cell-wise difference with a same-seeded, same-shape sketch.
    ///
    /// # Panics
    /// Panics on shape/seed mismatch; in-process shard merges always agree.
    pub fn sub_assign_sketch(&mut self, rhs: &SpanningForestSketch) {
        if let Err(err) = self.try_sub_assign_sketch(rhs) {
            panic!("{err}");
        }
    }

    /// Decodes a spanning graph of the sketched subgraph: Borůvka over the
    /// per-round component samplers. Returns the kept edges; with high
    /// probability they connect exactly the components of the sketched
    /// subgraph.
    ///
    /// # Panics
    /// Panics if the decode cannot be certified — use
    /// [`try_decode`](Self::try_decode) for a typed, retryable error.
    pub fn decode(&self) -> Vec<HyperEdge> {
        self.decode_with_labels().0
    }

    /// Fallible [`decode`](Self::decode).
    pub fn try_decode(&self) -> SketchResult<Vec<HyperEdge>> {
        Ok(self.try_decode_with_labels()?.0)
    }

    /// [`decode`](Self::decode) plus the final component label of every
    /// present vertex (labels are indices into `vertices()`).
    ///
    /// # Panics
    /// Panics if [`try_decode_with_labels`](Self::try_decode_with_labels)
    /// fails; with `Profile::Practical` parameters this is a ≪ 1% event.
    pub fn decode_with_labels(&self) -> (Vec<HyperEdge>, UnionFind) {
        match self.try_decode_with_labels() {
            Ok(out) => out,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible Borůvka decode with explicit completeness certification.
    ///
    /// Per round, every component's samplers are summed and sampled once.
    /// Mid-round sampler failures are tolerated — later rounds are fresh,
    /// independent retries, which is exactly why the structure carries
    /// `⌈log n⌉ + extra` rounds. The **final executed round** doubles as a
    /// certificate: if every component's aggregate decoded to a *certified
    /// zero* boundary (no failures, no merges), the partition is provably
    /// stable and `Ok` is returned. Otherwise the remaining partition might
    /// still be mergeable and the decode is a [`SketchError::SketchFailure`]
    /// — retryable against an independent repetition, never a silently
    /// under-merged answer.
    ///
    /// Corrupted inputs surface as [`SketchError::InvalidInput`]: a sampled
    /// edge touching a vertex outside the sketched vertex set (a stream
    /// element that bypassed [`try_update`](Self::try_update) validation).
    /// Streams promising net multiplicities in `{0, 1}` can additionally
    /// use [`try_decode_with_labels_strict`](Self::try_decode_with_labels_strict)
    /// to catch duplicated updates.
    pub fn try_decode_with_labels(&self) -> SketchResult<(Vec<HyperEdge>, UnionFind)> {
        self.decode_impl(false, 1, &mut DecodeScratch::new())
    }

    /// [`try_decode`](Self::try_decode) with the per-round component
    /// decodes striped across `threads` scoped worker threads; see
    /// [`try_decode_with_scratch`](Self::try_decode_with_scratch).
    pub fn try_decode_par(&self, threads: usize) -> SketchResult<Vec<HyperEdge>> {
        Ok(self.try_decode_with_labels_par(threads)?.0)
    }

    /// [`try_decode_with_labels`](Self::try_decode_with_labels) with
    /// parallel per-round component decodes.
    pub fn try_decode_with_labels_par(
        &self,
        threads: usize,
    ) -> SketchResult<(Vec<HyperEdge>, UnionFind)> {
        self.decode_impl(false, threads, &mut DecodeScratch::new())
    }

    /// [`try_decode_with_labels_strict`](Self::try_decode_with_labels_strict)
    /// with parallel per-round component decodes.
    pub fn try_decode_with_labels_strict_par(
        &self,
        threads: usize,
    ) -> SketchResult<(Vec<HyperEdge>, UnionFind)> {
        self.decode_impl(true, threads, &mut DecodeScratch::new())
    }

    /// The full-control decode entry point: the arena engine with an
    /// explicit thread count and a caller-owned reusable scratch.
    ///
    /// Repeated calls with the same scratch perform zero steady-state
    /// allocations beyond the returned edge list (see [`DecodeScratch`]),
    /// and the answer is bit-identical for every `threads` value — see
    /// `decode_impl` for why.
    pub fn try_decode_with_scratch(
        &self,
        strict: bool,
        threads: usize,
        scratch: &mut DecodeScratch,
    ) -> SketchResult<(Vec<HyperEdge>, UnionFind)> {
        self.decode_impl(strict, threads, scratch)
    }

    /// [`try_decode_with_labels`](Self::try_decode_with_labels) for simple
    /// (multiplicity-0/1) streams: additionally rejects any sampled
    /// boundary weight with magnitude `>= max_rank`, which is impossible
    /// when every edge's net multiplicity is 0 or 1 — the signature of a
    /// duplicated insert (e.g. a fault-injected replay) in a rank-2 stream.
    /// Weighted/multigraph streams must use the non-strict decode, where
    /// larger weights are legitimate.
    pub fn try_decode_with_labels_strict(&self) -> SketchResult<(Vec<HyperEdge>, UnionFind)> {
        self.decode_impl(true, 1, &mut DecodeScratch::new())
    }

    /// The historical clone-and-merge Borůvka decoder, retained verbatim
    /// as the sequential reference: per round it clones one sampler per
    /// component, folds the remaining members in with
    /// [`L0Sampler::add_assign_sketch`], and samples through the historical
    /// peel loop ([`L0Sampler::sample_legacy`]: fresh allocations, a Fermat
    /// inversion per nonzero cell per pass). The arena engine must match it
    /// bit for bit — the equivalence tests and experiment E19's baseline
    /// rows both lean on that.
    pub fn try_decode_reference(&self, strict: bool) -> SketchResult<(Vec<HyperEdge>, UnionFind)> {
        self.metrics.decode_attempts.inc();
        let nv = self.vertices.len();
        let mut uf = UnionFind::new(nv);
        let mut out: BTreeSet<HyperEdge> = BTreeSet::new();
        // True iff the most recent round proved the partition stable.
        let mut last_round_certified = true;
        let mut rounds_used = 0u64;
        for round in 0..self.rounds {
            if uf.component_count() <= 1 {
                break;
            }
            rounds_used += 1;
            // Aggregate this round's samplers per component.
            let mut agg: BTreeMap<u32, L0Sampler> = BTreeMap::new();
            for local in 0..nv as u32 {
                let root = uf.find(local);
                let sampler = &self.samplers[round * nv + local as usize];
                match agg.get_mut(&root) {
                    Some(acc) => acc.add_assign_sketch(sampler)?,
                    None => {
                        agg.insert(root, sampler.clone());
                    }
                }
            }
            // Sample one boundary edge per component, then merge all at once
            // (the per-round partition snapshot the analysis assumes).
            let mut merges: Vec<HyperEdge> = Vec::new();
            let mut round_failed = false;
            for (_root, acc) in agg {
                match self.classify_sample(acc.sample_legacy(), strict, &mut merges)? {
                    SampleOutcome::Advanced => {}
                    SampleOutcome::Failed => round_failed = true,
                }
            }
            last_round_certified = !round_failed && merges.is_empty();
            for e in merges {
                let locals: Vec<u32> = e
                    .vertices()
                    .iter()
                    .map(|&v| self.vpos[v as usize])
                    .collect();
                let mut merged = false;
                for w in locals.windows(2) {
                    merged |= uf.union(w[0], w[1]);
                }
                if merged {
                    out.insert(e);
                }
            }
        }
        if uf.component_count() > 1 && !last_round_certified {
            self.metrics.decode_failures.inc();
            return Err(SketchError::failure(
                "forest",
                format!(
                    "Borůvka ended with {} components but the final round could \
                     not certify completeness (sampler failure or still merging)",
                    uf.component_count()
                ),
            ));
        }
        self.metrics.decode_successes.inc();
        self.metrics.rounds_used.record(rounds_used);
        Ok((out.into_iter().collect(), uf))
    }

    /// Applies the strict-weight and vertex-set checks to one component's
    /// sample outcome, pushing a sampled edge onto `merges`. Shared by the
    /// reference decoder and the arena engine so both surface byte-for-byte
    /// identical errors in identical (ascending-root) order.
    fn classify_sample(
        &self,
        outcome: SketchResult<Option<(u64, i64)>>,
        strict: bool,
        merges: &mut Vec<HyperEdge>,
    ) -> SketchResult<SampleOutcome> {
        match outcome {
            Ok(Some((idx, w))) => {
                if strict && w.unsigned_abs() >= self.space.max_rank() as u64 {
                    return Err(SketchError::invalid(format!(
                        "sampled boundary weight {w} is impossible for \
                         rank-{} edges with net 0/1 multiplicities \
                         (duplicated or phantom stream element)",
                        self.space.max_rank()
                    )));
                }
                let e = self.space.unrank(idx);
                if let Some(&v) = e.vertices().iter().find(|&&v| !self.has_vertex(v)) {
                    return Err(SketchError::invalid(format!(
                        "sampled edge {e:?} touches vertex {v} outside \
                         the sketched vertex set"
                    )));
                }
                merges.push(e);
                Ok(SampleOutcome::Advanced)
            }
            // Certified-zero boundary for this component.
            Ok(None) => Ok(SampleOutcome::Advanced),
            Err(e) if e.is_retryable() => Ok(SampleOutcome::Failed),
            Err(e) => Err(e),
        }
    }

    /// The arena decode engine.
    ///
    /// Per Borůvka round: group the local vertices by union-find root
    /// (ascending-root component slots — the same order the reference
    /// decoder's `BTreeMap` iterates), fold every component's member
    /// samplers into a flat `[W | S | F]` arena stripe with lazy `u128`
    /// accumulation ([`L0Sampler::accumulate_state`], reduced once per
    /// stripe), and sample each stripe through the round's seed template
    /// ([`L0Sampler::sample_state`]). Component slots are carved into
    /// contiguous chunks across scoped worker threads — the same
    /// contiguous-chunk striping discipline as
    /// [`try_update_batch_striped`](Self::try_update_batch_striped); each
    /// worker owns disjoint arena and result ranges, and the per-slot
    /// outcomes are then scanned **sequentially in slot order**, so
    /// errors, merges, and certification decisions are independent of
    /// thread interleaving.
    ///
    /// Bit-identity with [`try_decode_reference`]
    /// (Self::try_decode_reference) holds because (a) field addition is
    /// exact and commutative, so a lazily-reduced member fold equals the
    /// reference's incremental merge-adds cell for cell, (b) sampling is
    /// a deterministic function of the aggregate state and the round
    /// seeds, and (c) the slot-order scan replays the reference's
    /// ascending-root processing exactly. Cross-*round* reuse of component
    /// sums is deliberately **not** attempted: each round carries fresh
    /// seeds (the Section 4.2 independence requirement), so a component's
    /// round-`t` aggregate says nothing about its round-`t+1` state — the
    /// only state that legitimately persists across rounds is the
    /// union-find partition, which this engine maintains incrementally.
    ///
    /// Compatibility of every member with its slot's seed template is
    /// routed through [`L0Sampler::check_compatible`] — the same check
    /// [`try_add_assign_sketch`](Self::try_add_assign_sketch) relies on —
    /// so the component-merge path and explicit sketch merges can never
    /// drift apart.
    fn decode_impl(
        &self,
        strict: bool,
        threads: usize,
        scratch: &mut DecodeScratch,
    ) -> SketchResult<(Vec<HyperEdge>, UnionFind)> {
        use std::time::Instant;
        self.metrics.decode_attempts.inc();
        let nv = self.vertices.len();
        let stride = self.samplers.first().map_or(0, |s| s.state_len());
        let mut uf = UnionFind::new(nv);
        // True iff the most recent round proved the partition stable.
        let mut last_round_certified = true;
        let mut rounds_used = 0u64;
        let (mut agg_ns, mut sample_ns, mut merge_ns) = (0u64, 0u64, 0u64);
        let DecodeScratch {
            agg,
            acc,
            root_of,
            slot_of,
            roots,
            starts,
            cursors,
            members,
            results,
            peel,
            merges,
            locals,
            out,
        } = scratch;
        out.clear();
        agg.resize(nv * stride, Fp::ZERO);
        root_of.resize(nv, 0);
        slot_of.resize(nv, 0);
        members.resize(nv, 0);
        for round in 0..self.rounds {
            if uf.component_count() <= 1 {
                break;
            }
            rounds_used += 1;
            // Group local vertices by component, slots in ascending-root
            // order (the reference decoder's BTreeMap iteration order).
            roots.clear();
            for local in 0..nv as u32 {
                let root = uf.find(local);
                root_of[local as usize] = root;
                if root == local {
                    roots.push(local);
                }
            }
            let live = roots.len();
            for (slot, &root) in roots.iter().enumerate() {
                slot_of[root as usize] = slot as u32;
            }
            starts.clear();
            starts.resize(live + 1, 0);
            for local in 0..nv {
                starts[slot_of[root_of[local] as usize] as usize + 1] += 1;
            }
            for slot in 0..live {
                starts[slot + 1] += starts[slot];
            }
            cursors.clear();
            cursors.resize(live, 0);
            for local in 0..nv as u32 {
                let slot = slot_of[root_of[local as usize] as usize] as usize;
                members[starts[slot] as usize + cursors[slot] as usize] = local;
                cursors[slot] += 1;
            }
            results.clear();
            results.resize_with(live, || Ok(None));
            // Carve the live slots into contiguous stripes, at least
            // MIN_SLOTS_PER_STRIPE slots each so tiny rounds stay inline.
            const MIN_SLOTS_PER_STRIPE: usize = 4;
            let chunk = live
                .div_ceil(threads.max(1))
                .max(MIN_SLOTS_PER_STRIPE.min(live.max(1)));
            let stripes = live.div_ceil(chunk);
            acc.resize(stripes * stride, 0);
            if peel.len() < stripes {
                peel.resize_with(stripes, dgs_sketch::PeelScratch::default);
            }
            // One stripe's work: fold each slot's members into its arena
            // stripe, then sample every aggregate. Returns the stripe's
            // (aggregate, sample) phase times.
            let run_stripe = |slot_lo: usize,
                              arena: &mut [Fp],
                              acc: &mut [u128],
                              peel: &mut dgs_sketch::PeelScratch,
                              res: &mut [SketchResult<Option<(u64, i64)>>]|
             -> (u64, u64) {
                let t0 = Instant::now();
                for (k, slot_state) in arena.chunks_exact_mut(stride).enumerate() {
                    let slot = slot_lo + k;
                    let lo = starts[slot] as usize;
                    let hi = starts[slot + 1] as usize;
                    if hi - lo == 1 {
                        // Singleton component: sampled below directly from
                        // its own cells; no arena state to build.
                        continue;
                    }
                    let template = &self.samplers[round * nv + members[lo] as usize];
                    // Fold only each member's populated level prefix; the
                    // suffix of every sampler is identically zero, so the
                    // component sum past the longest prefix is zero too and
                    // a fill reconstructs it without touching the members.
                    let mut plen = 0usize;
                    for &m in &members[lo..hi] {
                        let sampler = &self.samplers[round * nv + m as usize];
                        if let Err(e) = template.check_compatible(sampler) {
                            res[k] = Err(e);
                            break;
                        }
                        let want = sampler.touched_state_len();
                        if want > plen {
                            acc[plen..want].fill(0);
                            plen = want;
                        }
                        sampler.accumulate_state_touched(acc);
                    }
                    if res[k].is_err() {
                        continue;
                    }
                    Fp::reduce_batch(&mut slot_state[..plen], &acc[..plen]);
                    slot_state[plen..].fill(Fp::ZERO);
                }
                let t1 = Instant::now();
                for (k, slot_state) in arena.chunks_exact(stride).enumerate() {
                    if res[k].is_err() {
                        continue;
                    }
                    let slot = slot_lo + k;
                    let lo = starts[slot] as usize;
                    let template = &self.samplers[round * nv + members[lo] as usize];
                    // Singletons peel the sampler's own cells (same `(W, S,
                    // F)` values the copy would hold, so same outcome);
                    // merged components peel their arena aggregate.
                    res[k] = if starts[slot + 1] as usize - lo == 1 {
                        template.sample_with(peel)
                    } else {
                        template.sample_state(slot_state, peel)
                    };
                }
                (
                    t1.duration_since(t0).as_nanos() as u64,
                    t1.elapsed().as_nanos() as u64,
                )
            };
            if stripes <= 1 {
                let (a, s) = run_stripe(
                    0,
                    &mut agg[..live * stride],
                    &mut acc[..stride],
                    &mut peel[0],
                    &mut results[..],
                );
                agg_ns += a;
                sample_ns += s;
            } else {
                // Sticky fan-out on the persistent pool: stripe `t` goes to
                // worker `t` every round, so a worker re-reads the sampler
                // rows it folded the round before. Each job writes its
                // phase times into its own `phase_ns` slot (disjoint
                // `&mut` from `iter_mut`); the scope barrier fills them
                // all before the maxima below are taken.
                let mut phase_ns: Vec<(u64, u64)> = vec![(0, 0); stripes];
                dgs_pool::with_local_pool(stripes, |pool| {
                    pool.scope(|scope| {
                        let run_stripe = &run_stripe;
                        let mut arena_rest = &mut agg[..live * stride];
                        let mut res_rest = &mut results[..];
                        let mut acc_rest = &mut acc[..];
                        let mut peel_rest = &mut peel[..];
                        for (stripe, phase) in phase_ns.iter_mut().enumerate() {
                            let lo = stripe * chunk;
                            let take = chunk.min(live - lo);
                            let (arena_mine, arena_tail) = arena_rest.split_at_mut(take * stride);
                            arena_rest = arena_tail;
                            let (res_mine, res_tail) = res_rest.split_at_mut(take);
                            res_rest = res_tail;
                            let (acc_mine, acc_tail) = acc_rest.split_at_mut(stride);
                            acc_rest = acc_tail;
                            let (peel_mine, peel_tail) = peel_rest.split_at_mut(1);
                            peel_rest = peel_tail;
                            scope.spawn(stripe, move || {
                                *phase = run_stripe(
                                    lo,
                                    arena_mine,
                                    acc_mine,
                                    &mut peel_mine[0],
                                    res_mine,
                                );
                            });
                        }
                    });
                });
                // The phase cost is the critical path: the slowest stripe.
                agg_ns += phase_ns.iter().map(|&(a, _)| a).max().unwrap_or(0);
                sample_ns += phase_ns.iter().map(|&(_, s)| s).max().unwrap_or(0);
            }
            // Sequential post-pass in slot (ascending-root) order: strict
            // checks, fatal errors, merges, and certification all replay
            // the reference decoder's processing order exactly, so the
            // outcome can never depend on thread interleaving.
            let t2 = Instant::now();
            merges.clear();
            let mut round_failed = false;
            for outcome in results.drain(..) {
                match self.classify_sample(outcome, strict, merges)? {
                    SampleOutcome::Advanced => {}
                    SampleOutcome::Failed => round_failed = true,
                }
            }
            last_round_certified = !round_failed && merges.is_empty();
            for e in merges.drain(..) {
                locals.clear();
                locals.extend(e.vertices().iter().map(|&v| self.vpos[v as usize]));
                let mut merged = false;
                for w in locals.windows(2) {
                    merged |= uf.union(w[0], w[1]);
                }
                if merged {
                    out.push(e);
                }
            }
            merge_ns += t2.elapsed().as_nanos() as u64;
        }
        self.metrics.decode_aggregate_ns.record(agg_ns);
        self.metrics.decode_sample_ns.record(sample_ns);
        self.metrics.decode_merge_ns.record(merge_ns);
        // Under an ambient request trace these become phase spans of the
        // decode (inert otherwise), linking the per-phase histograms above
        // to the specific request that produced them.
        dgs_trace::phase("dgs_connectivity_forest_decode_aggregate", agg_ns);
        dgs_trace::phase("dgs_connectivity_forest_decode_sample", sample_ns);
        dgs_trace::phase("dgs_connectivity_forest_decode_merge", merge_ns);
        if uf.component_count() > 1 && !last_round_certified {
            self.metrics.decode_failures.inc();
            return Err(SketchError::failure(
                "forest",
                format!(
                    "Borůvka ended with {} components but the final round could \
                     not certify completeness (sampler failure or still merging)",
                    uf.component_count()
                ),
            ));
        }
        self.metrics.decode_successes.inc();
        self.metrics.rounds_used.record(rounds_used);
        // Kept edges accumulate in merge order; the reference returns them
        // in `HyperEdge` order (BTreeSet), so normalise. No edge is ever
        // kept twice — a second component sampling the same edge finds it
        // already merged — but dedup cheaply documents the invariant.
        out.sort_unstable();
        out.dedup();
        Ok((out.clone(), uf))
    }

    /// Fallible component count of the sketched subgraph.
    pub fn try_component_count(&self) -> SketchResult<usize> {
        Ok(self.try_decode_with_labels()?.1.component_count())
    }

    /// Number of connected components of the sketched subgraph (whp).
    ///
    /// # Panics
    /// Panics if the decode cannot be certified; see
    /// [`try_component_count`](Self::try_component_count).
    pub fn component_count(&self) -> usize {
        self.decode_with_labels().1.component_count()
    }

    /// Fallible connectivity verdict.
    pub fn try_is_connected(&self) -> SketchResult<bool> {
        Ok(self.try_component_count()? <= 1)
    }

    /// True iff the sketched subgraph is connected (whp).
    ///
    /// # Panics
    /// Panics if the decode cannot be certified; see
    /// [`try_is_connected`](Self::try_is_connected).
    pub fn is_connected(&self) -> bool {
        self.component_count() <= 1
    }

    /// Total memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.samplers.iter().map(|s| s.size_bytes()).sum()
    }

    /// The largest per-vertex message in the simultaneous communication
    /// model: all rounds' samplers for one vertex.
    pub fn max_player_message_bytes(&self) -> usize {
        let nv = self.vertices.len();
        if nv == 0 {
            return 0;
        }
        (0..nv)
            .map(|local| {
                (0..self.rounds)
                    .map(|r| self.samplers[r * nv + local].size_bytes())
                    .sum()
            })
            .max()
            .unwrap()
    }

    /// Clones the per-round samplers of one vertex (the player model's
    /// message content).
    pub fn vertex_samplers(&self, v: VertexId) -> Vec<L0Sampler> {
        let local = self.vpos[v as usize];
        assert!(local != u32::MAX, "vertex {v} absent");
        let nv = self.vertices.len();
        (0..self.rounds)
            .map(|r| self.samplers[r * nv + local as usize].clone())
            .collect()
    }

    /// Fallible referee assembly step: overwrites one vertex's samplers
    /// after validating the vertex is present, the round count matches, and
    /// every incoming sampler is seed/shape-compatible with the slot it
    /// replaces. Player messages arrive from *outside* the process, so a
    /// corrupted or misrouted message must surface as
    /// [`SketchError::InvalidInput`], not scribble into the sketch.
    pub fn try_set_vertex_samplers(
        &mut self,
        v: VertexId,
        samplers: Vec<L0Sampler>,
    ) -> SketchResult<()> {
        if (v as usize) >= self.vpos.len() || self.vpos[v as usize] == u32::MAX {
            return Err(SketchError::invalid(format!(
                "player message for vertex {v} absent from the sketch"
            )));
        }
        if samplers.len() != self.rounds {
            return Err(SketchError::invalid(format!(
                "player message carries {} rounds, sketch expects {}",
                samplers.len(),
                self.rounds
            )));
        }
        let local = self.vpos[v as usize] as usize;
        let nv = self.vertices.len();
        for (r, s) in samplers.iter().enumerate() {
            self.samplers[r * nv + local].check_compatible(s)?;
        }
        for (r, s) in samplers.into_iter().enumerate() {
            self.samplers[r * nv + local] = s;
        }
        Ok(())
    }

    /// Overwrites the samplers of one vertex (the referee's assembly step).
    ///
    /// # Panics
    /// Panics on an absent vertex or mismatched message shape; see
    /// [`try_set_vertex_samplers`](Self::try_set_vertex_samplers).
    pub fn set_vertex_samplers(&mut self, v: VertexId, samplers: Vec<L0Sampler>) {
        if let Err(err) = self.try_set_vertex_samplers(v, samplers) {
            panic!("{err}");
        }
    }
}

impl dgs_field::Codec for ForestParams {
    fn encode(&self, w: &mut dgs_field::Writer) {
        self.l0.encode(w);
        w.put_usize(self.extra_rounds);
    }
    fn decode(r: &mut dgs_field::Reader<'_>) -> Result<Self, dgs_field::CodecError> {
        Ok(ForestParams {
            l0: L0Params::decode(r)?,
            extra_rounds: r.get_len(64)?,
        })
    }
}

impl dgs_field::Codec for SpanningForestSketch {
    fn encode(&self, w: &mut dgs_field::Writer) {
        w.put_usize(self.space.n());
        w.put_usize(self.space.max_rank());
        self.vertices
            .iter()
            .map(|&v| v as u64)
            .collect::<Vec<u64>>()
            .encode(w);
        w.put_usize(self.rounds);
        self.samplers.encode(w);
    }
    fn decode(r: &mut dgs_field::Reader<'_>) -> Result<Self, dgs_field::CodecError> {
        let bad = |message: String| dgs_field::CodecError { offset: 0, message };
        let n = r.get_len(1 << 32)?;
        let max_rank = r.get_len(64)?;
        let space =
            EdgeSpace::new(n, max_rank).map_err(|e| bad(format!("invalid edge space: {e}")))?;
        let vertices_raw: Vec<u64> = Vec::decode(r)?;
        let vertices: Vec<VertexId> = vertices_raw.iter().map(|&v| v as VertexId).collect();
        if vertices.windows(2).any(|w| w[0] >= w[1]) || vertices.iter().any(|&v| (v as usize) >= n)
        {
            return Err(bad("vertex list not sorted/unique/in-range".into()));
        }
        let rounds = r.get_len(256)?;
        let samplers: Vec<L0Sampler> = Vec::decode(r)?;
        if samplers.len() != rounds * vertices.len() {
            return Err(bad(format!(
                "sampler count {} != rounds {} x vertices {}",
                samplers.len(),
                rounds,
                vertices.len()
            )));
        }
        let mut vpos = vec![u32::MAX; n];
        for (i, &v) in vertices.iter().enumerate() {
            vpos[v as usize] = i as u32;
        }
        Ok(SpanningForestSketch {
            space,
            vertices,
            vpos,
            rounds,
            samplers,
            metrics: ForestMetrics::default(),
        })
    }
}

fn ceil_log2(x: usize) -> usize {
    (usize::BITS - (x - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_field::prng::*;
    use dgs_hypergraph::algo::{component_count, hyper_component_count, is_connected};
    use dgs_hypergraph::generators::{gnp, random_uniform_hypergraph};
    use dgs_hypergraph::{Graph, Hypergraph};

    fn graph_sketch(n: usize, label: u64) -> SpanningForestSketch {
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        SpanningForestSketch::new_full(space, &SeedTree::new(77).child(label), params)
    }

    fn load_graph(sk: &mut SpanningForestSketch, g: &Graph) {
        for (u, v) in g.edges() {
            sk.update(&HyperEdge::pair(u, v), 1);
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
    }

    #[test]
    fn decodes_spanning_tree_of_path() {
        let mut sk = graph_sketch(8, 0);
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        load_graph(&mut sk, &g);
        let forest = sk.decode();
        // The path is its own unique spanning tree.
        assert_eq!(forest.len(), 7);
        assert!(sk.is_connected());
    }

    #[test]
    fn connectivity_verdict_matches_truth_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(10);
        for trial in 0..15 {
            let n = rng.gen_range(6..30);
            let p = rng.gen_range(0.05..0.4);
            let g = gnp(n, p, &mut rng);
            let space = EdgeSpace::graph(n).unwrap();
            let params = ForestParams::new(Profile::Practical, space.dimension());
            let mut sk =
                SpanningForestSketch::new_full(space, &SeedTree::new(500).child(trial), params);
            load_graph(&mut sk, &g);
            let (forest, labels) = sk.decode_with_labels();
            assert_eq!(
                labels.component_count(),
                component_count(&g),
                "trial {trial}: wrong component count"
            );
            // Every decoded edge is a real edge.
            for e in &forest {
                let (u, v) = e.as_pair();
                assert!(g.has_edge(u, v), "trial {trial}: phantom edge {e:?}");
            }
            assert_eq!(sk.is_connected(), is_connected(&g), "trial {trial}");
        }
    }

    #[test]
    fn deletions_are_invisible() {
        // Insert a dense graph, delete down to a sparse one: the decode must
        // reflect only the final graph.
        let n = 12;
        let mut sk = graph_sketch(n, 3);
        let dense = Graph::complete(n);
        load_graph(&mut sk, &dense);
        // Delete everything except a spanning star at 0.
        for (u, v) in dense.edges() {
            if u != 0 {
                sk.update(&HyperEdge::pair(u, v), -1);
            }
        }
        let forest = sk.decode();
        assert_eq!(forest.len(), n - 1);
        for e in &forest {
            assert_eq!(e.as_pair().0, 0, "decoded non-star edge {e:?}");
        }
    }

    #[test]
    fn hypergraph_spanning_sketch_theorem_13() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..8 {
            let n = rng.gen_range(8..20);
            let m = rng.gen_range(4..20);
            let h = random_uniform_hypergraph(n, 3, m, &mut rng);
            let space = EdgeSpace::new(n, 3).unwrap();
            let params = ForestParams::new(Profile::Practical, space.dimension());
            let mut sk =
                SpanningForestSketch::new_full(space, &SeedTree::new(600).child(trial), params);
            for e in h.edges() {
                sk.update(e, 1);
            }
            let (kept, labels) = sk.decode_with_labels();
            assert_eq!(
                labels.component_count(),
                hyper_component_count(&h),
                "trial {trial}"
            );
            for e in &kept {
                assert!(h.has_edge(e), "trial {trial}: phantom hyperedge {e:?}");
            }
            // Spanning property: the kept edges alone give the same components.
            let sub = Hypergraph::from_edges(n, kept);
            assert_eq!(
                hyper_component_count(&sub),
                hyper_component_count(&h),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn induced_sketch_ignores_missing_vertices() {
        let n = 10;
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let present = vec![0u32, 2, 4, 6, 8];
        let mut sk =
            SpanningForestSketch::new_induced(space, present.clone(), &SeedTree::new(700), params);
        // Edges among present vertices only.
        sk.update(&HyperEdge::pair(0, 2), 1);
        sk.update(&HyperEdge::pair(4, 6), 1);
        let (forest, labels) = sk.decode_with_labels();
        assert_eq!(forest.len(), 2);
        assert_eq!(labels.component_count(), 3); // {0,2}, {4,6}, {8}
        assert!(sk.has_vertex(4));
        assert!(!sk.has_vertex(3));
    }

    #[test]
    #[should_panic(expected = "absent vertex")]
    fn update_with_absent_endpoint_panics() {
        let space = EdgeSpace::graph(6).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let mut sk =
            SpanningForestSketch::new_induced(space, vec![0, 1, 2], &SeedTree::new(1), params);
        sk.update(&HyperEdge::pair(0, 5), 1);
    }

    #[test]
    fn sketch_subtraction_peels_a_known_forest() {
        // Build A(G); subtract A(F) for a recovered forest F; the remainder
        // decodes G - F (the k-skeleton construction step).
        let n = 9;
        let seeds = SeedTree::new(800);
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let g = Graph::complete(n);
        let mut total = SpanningForestSketch::new_full(space.clone(), &seeds, params);
        load_graph(&mut total, &g);
        let f1 = total.decode();
        assert_eq!(f1.len(), n - 1);
        let mut rest = total.clone();
        rest.apply_edges(f1.iter(), -1);
        let f2 = rest.decode();
        assert_eq!(f2.len(), n - 1, "K_n minus a tree is still connected");
        for e in &f2 {
            assert!(!f1.contains(e), "edge {e:?} reused after peeling");
        }
    }

    #[test]
    fn batched_update_encoding_matches_scalar() {
        use dgs_field::{Codec, Writer};
        let mut rng = StdRng::seed_from_u64(21);
        let n = 14;
        let g = gnp(n, 0.3, &mut rng);
        let mut updates: Vec<(HyperEdge, i64)> = g
            .edges()
            .map(|(u, v)| (HyperEdge::pair(u, v), 1i64))
            .collect();
        // Cancelling pair inside the batch.
        let (e0, _) = updates[0].clone();
        updates.push((e0, -1));
        let mut scalar = graph_sketch(n, 30);
        let mut batched = graph_sketch(n, 30);
        for (e, d) in &updates {
            scalar.try_update(e, *d).unwrap();
        }
        for chunk in updates.chunks(5) {
            batched.try_update_batch(chunk).unwrap();
        }
        let (mut wa, mut wb) = (Writer::new(), Writer::new());
        scalar.encode(&mut wa);
        batched.encode(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn striped_batched_update_is_bit_identical_for_all_thread_counts() {
        use dgs_field::{Codec, Writer};
        let mut rng = StdRng::seed_from_u64(22);
        let n = 12;
        let g = gnp(n, 0.4, &mut rng);
        let updates: Vec<(HyperEdge, i64)> = g
            .edges()
            .map(|(u, v)| (HyperEdge::pair(u, v), 1i64))
            .collect();
        let mut reference = graph_sketch(n, 40);
        for (e, d) in &updates {
            reference.try_update(e, *d).unwrap();
        }
        let expected = {
            let mut w = Writer::new();
            reference.encode(&mut w);
            w.into_bytes()
        };
        for threads in [1usize, 2, 3, 7, 16] {
            let mut sk = graph_sketch(n, 40);
            for chunk in updates.chunks(4) {
                sk.try_update_batch_striped(chunk, threads).unwrap();
            }
            let mut w = Writer::new();
            sk.encode(&mut w);
            assert_eq!(w.into_bytes(), expected, "{threads} threads");
        }
    }

    #[test]
    fn arena_decode_matches_reference_bit_for_bit() {
        // The engine must replay the clone-and-merge reference exactly —
        // same edges, same labels — for every thread count, on graphs and
        // hypergraphs, strict and non-strict.
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..12 {
            let n = rng.gen_range(5..28);
            let rank = if trial % 3 == 2 { 3 } else { 2 };
            let space = EdgeSpace::new(n, rank).unwrap();
            let params = ForestParams::new(Profile::Practical, space.dimension());
            let mut sk =
                SpanningForestSketch::new_full(space, &SeedTree::new(900).child(trial), params);
            if rank == 2 {
                load_graph(&mut sk, &gnp(n, rng.gen_range(0.05..0.5), &mut rng));
            } else {
                let m = rng.gen_range(2..20);
                for e in random_uniform_hypergraph(n, 3, m, &mut rng).edges() {
                    sk.update(e, 1);
                }
            }
            for strict in [false, true] {
                let reference = sk.try_decode_reference(strict);
                for threads in [1usize, 2, 4, 7] {
                    let mut scratch = DecodeScratch::new();
                    let engine = sk.try_decode_with_scratch(strict, threads, &mut scratch);
                    match (&reference, &engine) {
                        (Ok((re, ru)), Ok((ee, eu))) => {
                            assert_eq!(re, ee, "trial {trial} strict={strict} threads={threads}");
                            assert_eq!(
                                ru.clone().labels(),
                                eu.clone().labels(),
                                "trial {trial} strict={strict} threads={threads}"
                            );
                        }
                        (Err(a), Err(b)) => assert_eq!(
                            (a.is_retryable(), a.to_string()),
                            (b.is_retryable(), b.to_string()),
                            "trial {trial} strict={strict} threads={threads}"
                        ),
                        _ => panic!(
                            "trial {trial} strict={strict} threads={threads}: \
                             reference {reference:?} vs engine {engine:?}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn merged_player_sub_sketches_decode_identically_to_full() {
        // Section 4 player model via linearity: same-seeded sub-sketches,
        // each holding a shard of the stream, sum through the
        // `L0Sampler::check_compatible`-guarded merge to exactly the
        // full-stream sketch — byte-identical state, and byte-identical
        // decodes on both the reference and the arena engine paths.
        use dgs_field::{Codec, Writer};
        let bytes = |sk: &SpanningForestSketch| {
            let mut w = Writer::new();
            sk.encode(&mut w);
            w.into_bytes()
        };
        let mut rng = StdRng::seed_from_u64(25);
        for trial in 0..10 {
            let n = rng.gen_range(5..20);
            let g = gnp(n, rng.gen_range(0.1..0.55), &mut rng);
            let players = rng.gen_range(1..5usize);
            let mut full = graph_sketch(n, 2000 + trial);
            let mut shares: Vec<SpanningForestSketch> = (0..players)
                .map(|_| graph_sketch(n, 2000 + trial))
                .collect();
            for (idx, (u, v)) in g.edges().enumerate() {
                let e = HyperEdge::pair(u, v);
                full.update(&e, 1);
                shares[idx % players].update(&e, 1);
            }
            let mut merged = shares.remove(0);
            for s in &shares {
                merged.try_add_assign_sketch(s).unwrap();
            }
            assert_eq!(bytes(&merged), bytes(&full), "trial {trial}: state differs");
            let want = full.try_decode_reference(false).unwrap();
            for threads in [1usize, 4] {
                let got = merged
                    .try_decode_with_scratch(false, threads, &mut DecodeScratch::new())
                    .unwrap();
                assert_eq!(want.0, got.0, "trial {trial} threads={threads}");
                assert_eq!(
                    want.1.clone().labels(),
                    got.1.clone().labels(),
                    "trial {trial} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn decode_scratch_is_reusable_across_sketches() {
        // One scratch, many decodes of different shapes: results must match
        // fresh-scratch decodes every time (no state leaks between calls).
        let mut rng = StdRng::seed_from_u64(24);
        let mut scratch = DecodeScratch::new();
        for trial in 0..8 {
            let n = rng.gen_range(4..24);
            let mut sk = graph_sketch(n, 1000 + trial);
            load_graph(&mut sk, &gnp(n, rng.gen_range(0.1..0.6), &mut rng));
            let fresh = sk
                .try_decode_with_scratch(false, 2, &mut DecodeScratch::new())
                .unwrap();
            let reused = sk.try_decode_with_scratch(false, 2, &mut scratch).unwrap();
            assert_eq!(fresh.0, reused.0, "trial {trial}");
            assert_eq!(
                fresh.1.clone().labels(),
                reused.1.clone().labels(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn batched_update_rejects_invalid_batch_atomically() {
        use dgs_field::{Codec, Writer};
        let mut sk = graph_sketch(6, 31);
        let before = {
            let mut w = Writer::new();
            sk.encode(&mut w);
            w.into_bytes()
        };
        let batch = vec![
            (HyperEdge::pair(0, 1), 1i64),
            (HyperEdge::pair(0, 99), 1i64), // out of range
        ];
        assert!(sk.try_update_batch(&batch).is_err());
        let mut w = Writer::new();
        sk.encode(&mut w);
        assert_eq!(w.into_bytes(), before, "failed batch must apply nothing");
    }

    #[test]
    fn empty_sketch_decodes_no_edges() {
        let sk = graph_sketch(6, 9);
        assert!(sk.decode().is_empty());
        assert_eq!(sk.component_count(), 6);
    }

    #[test]
    fn size_accounting_scales_with_n() {
        let small = graph_sketch(8, 10);
        let large = graph_sketch(64, 11);
        assert!(large.size_bytes() > small.size_bytes());
        assert!(small.max_player_message_bytes() < small.size_bytes());
    }
}
