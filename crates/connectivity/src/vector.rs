//! The vertex-incidence vectors of Section 4.1.
//!
//! For each vertex `i`, the vector `a^i ∈ Z^d` over the hyperedge space has
//!
//! ```text
//!   a^i_e = |e| - 1   if i = min e and e ∈ E
//!   a^i_e = -1        if i ∈ e \ {min e} and e ∈ E
//!   a^i_e = 0         otherwise
//! ```
//!
//! The load-bearing property (property-tested below): for any vertex set
//! `S`, the support of `Σ_{i∈S} a^i` is **exactly** `δ(S)`, because the only
//! sub-multisets of `{|e|-1, -1, …, -1}` summing to zero are the empty set
//! and the whole multiset. Summing sketches of the `a^i` over a component
//! therefore yields a sketch of its boundary — the engine of the Borůvka
//! decoder.

use dgs_hypergraph::{HyperEdge, VertexId};

/// `a^i_e` for a *present* edge `e` — the update delta a linear sketch at
/// vertex `i` applies when `e` is inserted (negated on deletion).
/// Returns 0 if `i ∉ e`.
#[inline]
pub fn incidence_coefficient(e: &HyperEdge, i: VertexId) -> i64 {
    if !e.contains(i) {
        0
    } else if e.min_vertex() == i {
        e.cardinality() as i64 - 1
    } else {
        -1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_field::prng::*;

    #[test]
    fn pair_coefficients() {
        let e = HyperEdge::pair(3, 7);
        assert_eq!(incidence_coefficient(&e, 3), 1);
        assert_eq!(incidence_coefficient(&e, 7), -1);
        assert_eq!(incidence_coefficient(&e, 5), 0);
    }

    #[test]
    fn hyperedge_coefficients_sum_to_zero() {
        let e = HyperEdge::new(vec![2, 5, 9, 11]).unwrap();
        let total: i64 = e
            .vertices()
            .iter()
            .map(|&v| incidence_coefficient(&e, v))
            .sum();
        assert_eq!(total, 0);
        assert_eq!(incidence_coefficient(&e, 2), 3);
        assert_eq!(incidence_coefficient(&e, 5), -1);
    }

    /// The Section 4.1 claim: Σ_{i∈S} a^i_e is nonzero iff e crosses S.
    /// Randomized over edges of cardinality 2..6 on 20 vertices and all
    /// subset masks (256 deterministic trials).
    #[test]
    fn sum_support_is_exactly_the_cut() {
        let mut rng = StdRng::seed_from_u64(0x41);
        for _ in 0..256 {
            let card = rng.gen_range(2usize..6);
            let mut verts = std::collections::BTreeSet::new();
            while verts.len() < card {
                verts.insert(rng.gen_range(0u32..20));
            }
            let e = HyperEdge::new(verts.into_iter().collect()).unwrap();
            let s_mask = rng.gen_range(0u32..(1 << 20));
            let in_s = |v: u32| s_mask >> v & 1 == 1;
            let sum: i64 = e
                .vertices()
                .iter()
                .filter(|&&v| in_s(v))
                .map(|&v| incidence_coefficient(&e, v))
                .sum();
            assert_eq!(sum != 0, e.crosses(in_s), "edge {e:?}, mask {s_mask:#x}");
        }
    }
}
