//! k-skeleton sketches (Theorem 14).
//!
//! A k-skeleton of `H` keeps `|δ(S)| >= min(|δ_H(S)|, k)` for every cut.
//! Following Section 4.1: `F_1 ∪ … ∪ F_k` is a k-skeleton when `F_i` is a
//! spanning graph of `G \ (F_1 ∪ … ∪ F_{i-1})`, and `F_i` is decoded from
//! the *i-th independent* spanning sketch adjusted by linearity:
//! `A^i(G - F_1 - … - F_{i-1}) = A^i(G) - Σ_j A^i(F_j)`.
//!
//! The independence of the `k` sketches is load-bearing (Section 4.2's
//! union-bound discussion); the experiment suite's ablation E11 demonstrates
//! what goes wrong when a single sketch is reused.

use dgs_field::SeedTree;
use dgs_hypergraph::{EdgeSpace, HyperEdge, VertexId};
use dgs_sketch::{SketchError, SketchResult};

use crate::forest::{DecodeScratch, ForestParams, SpanningForestSketch};

/// `k` independent spanning-graph sketches, decodable into a k-skeleton.
#[derive(Clone, Debug)]
pub struct KSkeletonSketch {
    layers: Vec<SpanningForestSketch>,
    k: usize,
}

impl KSkeletonSketch {
    /// A k-skeleton sketch over the full vertex set of `space`.
    pub fn new(space: EdgeSpace, k: usize, seeds: &SeedTree, params: ForestParams) -> Self {
        assert!(k >= 1, "skeleton parameter must be >= 1");
        let layers = (0..k)
            .map(|i| SpanningForestSketch::new_full(space.clone(), &seeds.child(i as u64), params))
            .collect();
        KSkeletonSketch { layers, k }
    }

    /// **Ablation constructor** reproducing the Section 4.2 fallacy: all `k`
    /// layers share one seed, i.e. a single spanning sketch "reused" `k`
    /// times. The union-bound argument breaks because each peeled spanning
    /// graph `F_i` depends on the very randomness the next decode relies on.
    /// Experiment E11 measures the resulting failures; never use this for
    /// real work.
    pub fn new_with_shared_seed(
        space: EdgeSpace,
        k: usize,
        seeds: &SeedTree,
        params: ForestParams,
    ) -> Self {
        assert!(k >= 1, "skeleton parameter must be >= 1");
        let shared = seeds.child(0);
        let layers = (0..k)
            .map(|_| SpanningForestSketch::new_full(space.clone(), &shared, params))
            .collect();
        KSkeletonSketch { layers, k }
    }

    /// The skeleton parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying edge space.
    pub fn space(&self) -> &EdgeSpace {
        self.layers[0].space()
    }

    /// Fallible signed hyperedge update applied to all `k` layers; the
    /// first layer's validation rejects malformed elements before any layer
    /// is touched (all layers share one vertex set and space, so either
    /// every layer accepts or none do).
    pub fn try_update(&mut self, e: &HyperEdge, delta: i64) -> SketchResult<()> {
        for layer in &mut self.layers {
            layer.try_update(e, delta)?;
        }
        Ok(())
    }

    /// Applies a signed hyperedge update to all `k` layers.
    ///
    /// # Panics
    /// Panics on a malformed edge; see [`try_update`](Self::try_update).
    pub fn update(&mut self, e: &HyperEdge, delta: i64) {
        if let Err(err) = self.try_update(e, delta) {
            panic!("{err}");
        }
    }

    /// Applies a batch of known edges to all layers (peeling support for the
    /// `light_k` recovery of Section 4.2.1, which works with
    /// `B(G - E_1 - …) = B(G) - Σ B(E_j)`).
    pub fn apply_edges<'a>(
        &mut self,
        edges: impl IntoIterator<Item = &'a HyperEdge> + Clone,
        delta: i64,
    ) {
        for layer in &mut self.layers {
            layer.apply_edges(edges.clone(), delta);
        }
    }

    /// Fallible skeleton decode: each layer is peeled and decoded in turn;
    /// a layer whose Borůvka pass cannot be certified complete propagates
    /// [`SketchError::SketchFailure`] (retryable — every layer of an
    /// independent repetition carries fresh randomness), so a partially
    /// recovered skeleton is never passed off as the full `F_1 ∪ … ∪ F_k`.
    pub fn try_decode_layers(&self) -> SketchResult<Vec<Vec<HyperEdge>>> {
        self.try_decode_layers_par(1)
    }

    /// [`try_decode_layers`](Self::try_decode_layers) with the per-layer
    /// work spread over `threads` scoped worker threads.
    ///
    /// The layer loop itself is inherently sequential — `F_i` is decoded
    /// from `A^i(G) - Σ_{j<i} A^i(F_j)`, so layer `i` cannot start until
    /// every earlier forest is known. Parallelism comes from inside each
    /// step instead: each layer's Borůvka decode runs on the striped arena
    /// engine, and each recovered forest is subtracted from the remaining
    /// layers concurrently (disjoint `&mut` layer chunks, one scoped thread
    /// each). Field addition is exact and each forest is applied to each
    /// later layer exactly once, so the result is bit-identical to the
    /// sequential peel for every thread count. One [`DecodeScratch`] is
    /// reused across all `k` decodes.
    pub fn try_decode_layers_par(&self, threads: usize) -> SketchResult<Vec<Vec<HyperEdge>>> {
        let mut recovered: Vec<Vec<HyperEdge>> = Vec::with_capacity(self.k);
        let mut adjusted: Vec<SpanningForestSketch> = self.layers.clone();
        let mut scratch = DecodeScratch::new();
        for i in 0..self.k {
            let forest = adjusted[i]
                .try_decode_with_scratch(false, threads, &mut scratch)?
                .0;
            let rest = &mut adjusted[i + 1..];
            if !forest.is_empty() && !rest.is_empty() {
                let chunk = rest.len().div_ceil(threads.max(1)).max(1);
                if chunk >= rest.len() {
                    for layer in rest.iter_mut() {
                        layer.apply_edges(forest.iter(), -1);
                    }
                } else {
                    std::thread::scope(|scope| {
                        for piece in rest.chunks_mut(chunk) {
                            let forest = &forest;
                            scope.spawn(move || {
                                for layer in piece {
                                    layer.apply_edges(forest.iter(), -1);
                                }
                            });
                        }
                    });
                }
            }
            recovered.push(forest);
        }
        Ok(recovered)
    }

    /// Decodes the k-skeleton: the union `F_1 ∪ … ∪ F_k`, returned as the
    /// per-layer spanning graphs (flatten for the skeleton edge set).
    ///
    /// # Panics
    /// Panics if a layer decode cannot be certified; see
    /// [`try_decode_layers`](Self::try_decode_layers).
    pub fn decode_layers(&self) -> Vec<Vec<HyperEdge>> {
        match self.try_decode_layers() {
            Ok(layers) => layers,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible [`decode`](Self::decode).
    pub fn try_decode(&self) -> SketchResult<Vec<HyperEdge>> {
        self.try_decode_par(1)
    }

    /// [`try_decode`](Self::try_decode) with parallel per-layer work; see
    /// [`try_decode_layers_par`](Self::try_decode_layers_par).
    pub fn try_decode_par(&self, threads: usize) -> SketchResult<Vec<HyperEdge>> {
        let mut out: std::collections::BTreeSet<HyperEdge> = std::collections::BTreeSet::new();
        for layer in self.try_decode_layers_par(threads)? {
            out.extend(layer);
        }
        Ok(out.into_iter().collect())
    }

    /// Decodes the skeleton as a single deduplicated edge set.
    ///
    /// # Panics
    /// Panics if a layer decode cannot be certified; see
    /// [`try_decode`](Self::try_decode).
    pub fn decode(&self) -> Vec<HyperEdge> {
        match self.try_decode() {
            Ok(edges) => edges,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible cell-wise sum with a same-seeded sketch.
    pub fn try_add_assign_sketch(&mut self, rhs: &KSkeletonSketch) -> SketchResult<()> {
        if self.k != rhs.k {
            return Err(SketchError::invalid(format!(
                "skeleton parameter mismatch: k {} vs {}",
                self.k, rhs.k
            )));
        }
        for (a, b) in self.layers.iter_mut().zip(&rhs.layers) {
            a.try_add_assign_sketch(b)?;
        }
        Ok(())
    }

    /// Cell-wise sum with a same-seeded sketch — linearity lets sharded
    /// stream ingestion merge partial sketches.
    ///
    /// # Panics
    /// Panics on shape/seed mismatch; in-process shard merges always agree.
    pub fn add_assign_sketch(&mut self, rhs: &KSkeletonSketch) {
        if let Err(err) = self.try_add_assign_sketch(rhs) {
            panic!("{err}");
        }
    }

    /// Attach metric handles to every layer (forest decode outcome counters
    /// and decode-phase histograms, plus the per-sampler `dgs_sketch_*`
    /// family); see [`SpanningForestSketch::set_sink`]. Default is the null
    /// sink: recording is free.
    pub fn set_sink(&mut self, sink: &dgs_obs::MetricsSink) {
        for layer in &mut self.layers {
            layer.set_sink(sink);
        }
    }

    /// Total memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.size_bytes()).sum()
    }

    /// Largest per-vertex message (sum over all layers) in the player model.
    pub fn max_player_message_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.max_player_message_bytes())
            .sum()
    }

    /// The vertices covered by the sketch.
    pub fn vertices(&self) -> &[VertexId] {
        self.layers[0].vertices()
    }

    /// Builds player `v`'s message — one forest message per layer — from
    /// its local incident edges (simultaneous communication model; the
    /// seeding mirrors [`KSkeletonSketch::new`]).
    pub fn player_message(
        space: &EdgeSpace,
        k: usize,
        v: VertexId,
        incident_edges: &[HyperEdge],
        seeds: &SeedTree,
        params: ForestParams,
    ) -> Vec<crate::player::PlayerMessage> {
        (0..k)
            .map(|i| {
                crate::player::player_sketch(
                    space,
                    v,
                    incident_edges,
                    &seeds.child(i as u64),
                    params,
                )
            })
            .collect()
    }

    /// Fallible referee assembly: installs player `v`'s per-layer messages
    /// after validating the layer count and each message's shape/seed
    /// against the slot it fills (messages arrive over an untrusted
    /// transport, so corruption must be detected, not absorbed).
    pub fn try_install_player(
        &mut self,
        messages: Vec<crate::player::PlayerMessage>,
    ) -> SketchResult<()> {
        if messages.len() != self.k {
            return Err(SketchError::invalid(format!(
                "player bundle carries {} layer messages, skeleton expects {}",
                messages.len(),
                self.k
            )));
        }
        for (layer, msg) in self.layers.iter_mut().zip(messages) {
            layer.try_set_vertex_samplers(msg.vertex, msg.samplers)?;
        }
        Ok(())
    }

    /// The referee's assembly step: installs player `v`'s per-layer
    /// messages into this (zero-initialized, same-seeded) sketch.
    ///
    /// # Panics
    /// Panics on a malformed bundle; see
    /// [`try_install_player`](Self::try_install_player).
    pub fn install_player(&mut self, messages: Vec<crate::player::PlayerMessage>) {
        if let Err(err) = self.try_install_player(messages) {
            panic!("{err}");
        }
    }
}

impl dgs_field::Codec for KSkeletonSketch {
    fn encode(&self, w: &mut dgs_field::Writer) {
        w.put_usize(self.k);
        self.layers.encode(w);
    }
    fn decode(r: &mut dgs_field::Reader<'_>) -> Result<Self, dgs_field::CodecError> {
        let k = r.get_len(1 << 20)?.max(1);
        let layers: Vec<SpanningForestSketch> = Vec::decode(r)?;
        if layers.len() != k {
            return Err(dgs_field::CodecError {
                offset: 0,
                message: format!("layer count {} != k {}", layers.len(), k),
            });
        }
        Ok(KSkeletonSketch { layers, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_field::prng::*;
    use dgs_hypergraph::generators::{gnp, random_uniform_hypergraph};
    use dgs_hypergraph::{Graph, Hypergraph};
    use dgs_sketch::Profile;

    fn sketch(n: usize, r: usize, k: usize, label: u64) -> KSkeletonSketch {
        let space = EdgeSpace::new(n, r).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        KSkeletonSketch::new(space, k, &SeedTree::new(4000).child(label), params)
    }

    /// Exhaustively checks the skeleton property `|δ_H'(S)| >= min(|δ_H(S)|, k)`
    /// for all cuts of a small hypergraph.
    fn assert_skeleton_property(h: &Hypergraph, skeleton: &Hypergraph, k: usize) {
        let n = h.n();
        assert!(n <= 16);
        for mask in 1u32..(1 << (n - 1)) {
            let side: Vec<bool> = (0..n).map(|v| v > 0 && mask >> (v - 1) & 1 == 1).collect();
            let full = h.cut_size(&side);
            let kept = skeleton.cut_size(&side);
            assert!(
                kept >= full.min(k),
                "cut {side:?}: skeleton {kept} < min({full}, {k})"
            );
        }
    }

    #[test]
    fn skeleton_property_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(20);
        for trial in 0..6 {
            let n = rng.gen_range(6..11);
            let g = gnp(n, 0.5, &mut rng);
            let h = Hypergraph::from_graph(&g);
            let k = rng.gen_range(1..4);
            let mut sk = sketch(n, 2, k, trial);
            for e in h.edges() {
                sk.update(e, 1);
            }
            let skeleton = Hypergraph::from_edges(n, sk.decode());
            for e in skeleton.edges() {
                assert!(h.has_edge(e), "trial {trial}: phantom edge {e:?}");
            }
            assert_skeleton_property(&h, &skeleton, k);
        }
    }

    #[test]
    fn skeleton_property_on_random_hypergraphs() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..5 {
            let n = rng.gen_range(7..12);
            let h = random_uniform_hypergraph(n, 3, rng.gen_range(5..18), &mut rng);
            let k = 2;
            let mut sk = sketch(n, 3, k, 100 + trial);
            for e in h.edges() {
                sk.update(e, 1);
            }
            let skeleton = Hypergraph::from_edges(n, sk.decode());
            for e in skeleton.edges() {
                assert!(h.has_edge(e), "trial {trial}: phantom hyperedge");
            }
            assert_skeleton_property(&h, &skeleton, k);
        }
    }

    #[test]
    fn layers_are_disjoint() {
        let n = 10;
        let g = Graph::complete(n);
        let mut sk = sketch(n, 2, 3, 55);
        for (u, v) in g.edges() {
            sk.update(&HyperEdge::pair(u, v), 1);
        }
        let layers = sk.decode_layers();
        assert_eq!(layers.len(), 3);
        let mut seen = std::collections::BTreeSet::new();
        for layer in &layers {
            assert_eq!(layer.len(), n - 1, "K_n stays connected through 3 peels");
            for e in layer {
                assert!(seen.insert(e.clone()), "edge {e:?} appears in two layers");
            }
        }
    }

    #[test]
    fn skeleton_of_sparse_graph_is_whole_graph() {
        // A tree has at most 1 edge across ... every cut; a k-skeleton with
        // k >= 1 must keep every bridge, i.e. the entire tree.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let mut sk = sketch(7, 2, 2, 56);
        for (u, v) in g.edges() {
            sk.update(&HyperEdge::pair(u, v), 1);
        }
        let skeleton = sk.decode();
        assert_eq!(skeleton.len(), 6);
    }

    #[test]
    fn deletion_churn_does_not_pollute_skeleton() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 9;
        let g = gnp(n, 0.5, &mut rng);
        let h = Hypergraph::from_graph(&g);
        let mut sk = sketch(n, 2, 2, 57);
        // Insert plenty of noise first, then delete it.
        let noise = gnp(n, 0.5, &mut rng);
        for (u, v) in noise.edges() {
            if !g.has_edge(u, v) {
                sk.update(&HyperEdge::pair(u, v), 1);
            }
        }
        for e in h.edges() {
            sk.update(e, 1);
        }
        for (u, v) in noise.edges() {
            if !g.has_edge(u, v) {
                sk.update(&HyperEdge::pair(u, v), -1);
            }
        }
        let skeleton = Hypergraph::from_edges(n, sk.decode());
        for e in skeleton.edges() {
            assert!(h.has_edge(e), "noise edge {e:?} leaked into skeleton");
        }
        assert_skeleton_property(&h, &skeleton, 2);
    }

    #[test]
    fn lemma_12_lambda_e_agrees_through_the_skeleton() {
        // Lemma 12: for a k-skeleton H of G, λ_e(H) <= k-1 iff λ_e(G) <= k-1
        // for every edge e of H. Verified with exact flow computations.
        use dgs_hypergraph::algo::strength::lambda_e;
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..5 {
            let n = rng.gen_range(7..11);
            let g = gnp(n, 0.5, &mut rng);
            let h = Hypergraph::from_graph(&g);
            let k = rng.gen_range(2..4);
            let mut sk = sketch(n, 2, k, 900 + trial);
            for e in h.edges() {
                sk.update(e, 1);
            }
            let skel = Hypergraph::from_edges(n, sk.decode());
            for (idx, e) in skel.edges().iter().enumerate() {
                let lam_h = lambda_e(&skel, idx, k);
                let orig_idx = h.edges().iter().position(|x| x == e).unwrap();
                let lam_g = lambda_e(&h, orig_idx, k);
                assert_eq!(
                    lam_h < k,
                    lam_g < k,
                    "trial {trial}, k {k}, edge {e:?}: λ_H = {lam_h}, λ_G = {lam_g}"
                );
            }
        }
    }

    #[test]
    fn light_edges_always_survive_into_the_skeleton() {
        // The Theorem 15 precondition: every edge with λ_e <= k lies in any
        // (k+1)-skeleton (its witnessing cut must be kept entirely).
        use dgs_hypergraph::algo::strength::lambda_e;
        let mut rng = StdRng::seed_from_u64(78);
        for trial in 0..5 {
            let n = rng.gen_range(7..11);
            let g = gnp(n, 0.45, &mut rng);
            let h = Hypergraph::from_graph(&g);
            let k = rng.gen_range(1..3);
            let mut sk = sketch(n, 2, k + 1, 950 + trial);
            for e in h.edges() {
                sk.update(e, 1);
            }
            let skel = Hypergraph::from_edges(n, sk.decode());
            for (idx, e) in h.edges().iter().enumerate() {
                if lambda_e(&h, idx, k + 1) <= k {
                    assert!(
                        skel.has_edge(e),
                        "trial {trial}: light edge {e:?} missing from ({}+1)-skeleton",
                        k
                    );
                }
            }
        }
    }

    #[test]
    fn skeleton_players_equal_central() {
        let mut rng = StdRng::seed_from_u64(321);
        let n = 10;
        let g = gnp(n, 0.5, &mut rng);
        let h = Hypergraph::from_graph(&g);
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(4321);
        let k = 2;

        let mut central = KSkeletonSketch::new(space.clone(), k, &seeds, params);
        for e in h.edges() {
            central.update(e, 1);
        }

        let mut assembled = KSkeletonSketch::new(space.clone(), k, &seeds, params);
        for v in 0..n as u32 {
            let incident: Vec<HyperEdge> = h
                .edges()
                .iter()
                .filter(|e| e.contains(v))
                .cloned()
                .collect();
            let msgs = KSkeletonSketch::player_message(&space, k, v, &incident, &seeds, params);
            assembled.install_player(msgs);
        }
        assert_eq!(central.decode(), assembled.decode());
        assert_eq!(central.decode_layers(), assembled.decode_layers());
    }

    #[test]
    fn parallel_skeleton_decode_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(24);
        for trial in 0..6 {
            let n = rng.gen_range(6..14);
            let g = gnp(n, 0.5, &mut rng);
            let k = rng.gen_range(1..4);
            let mut sk = sketch(n, 2, k, 200 + trial);
            for (u, v) in g.edges() {
                sk.update(&HyperEdge::pair(u, v), 1);
            }
            let seq_layers = sk.try_decode_layers().unwrap();
            let seq = sk.try_decode().unwrap();
            for threads in [2usize, 4, 7] {
                assert_eq!(
                    sk.try_decode_layers_par(threads).unwrap(),
                    seq_layers,
                    "trial {trial}, {threads} threads"
                );
                assert_eq!(
                    sk.try_decode_par(threads).unwrap(),
                    seq,
                    "trial {trial}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn size_scales_linearly_in_k() {
        let s1 = sketch(12, 2, 1, 58);
        let s3 = sketch(12, 2, 3, 59);
        assert_eq!(s3.size_bytes(), 3 * s1.size_bytes());
        assert!(s3.max_player_message_bytes() > s1.max_player_message_bytes());
    }
}
