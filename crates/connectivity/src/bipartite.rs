//! Bipartiteness testing in dynamic streams — the classic companion of the
//! AGM connectivity sketch (see the survey the paper cites \[25\]).
//!
//! Reduction: build the *bipartite double cover* `D(G)` on vertices
//! `(v, 0), (v, 1)`, replacing each edge `{u, v}` by `{(u,0), (v,1)}` and
//! `{(u,1), (v,0)}`. A connected component `C` of `G` lifts to **two**
//! components of `D(G)` iff `C` is bipartite, and to **one** otherwise
//! (an odd cycle merges the two layers). Hence
//!
//! ```text
//!   #components(D(G)) = 2·(#bipartite components) + (#non-bipartite)
//! ```
//!
//! and `G` is bipartite iff `#components(D(G)) = 2·#components(G)`. Two
//! spanning-forest sketches (one on `G`, one on `D(G)`) answer this from a
//! dynamic stream — every machinery piece (incidence vectors, ℓ0-samplers,
//! Borůvka) is reused unchanged.
//!
//! Graphs only (rank 2): the double-cover trick is about odd cycles, which
//! is a graph notion.

use dgs_field::SeedTree;
use dgs_hypergraph::{EdgeSpace, HyperEdge, VertexId};

use crate::forest::{ForestParams, SpanningForestSketch};

/// A dynamic-stream bipartiteness sketch.
#[derive(Clone, Debug)]
pub struct BipartitenessSketch {
    n: usize,
    base: SpanningForestSketch,
    cover: SpanningForestSketch,
}

impl BipartitenessSketch {
    /// Builds the sketch for graphs on `n` vertices.
    pub fn new(n: usize, seeds: &SeedTree, params: ForestParams) -> BipartitenessSketch {
        let base_space = EdgeSpace::graph(n.max(2)).expect("graph space");
        let cover_space = EdgeSpace::graph(2 * n.max(2)).expect("cover space");
        BipartitenessSketch {
            n,
            base: SpanningForestSketch::new_full(base_space, &seeds.child(0), params),
            cover: SpanningForestSketch::new_full(cover_space, &seeds.child(1), params),
        }
    }

    /// Applies a signed edge update (`{u, v}` with `u != v`).
    pub fn update(&mut self, u: VertexId, v: VertexId, delta: i64) {
        assert!((u as usize) < self.n && (v as usize) < self.n);
        self.base.update(&HyperEdge::pair(u, v), delta);
        // Double cover: (x, layer) -> 2x + layer.
        let (u0, u1) = (2 * u, 2 * u + 1);
        let (v0, v1) = (2 * v, 2 * v + 1);
        self.cover.update(&HyperEdge::pair(u0, v1), delta);
        self.cover.update(&HyperEdge::pair(u1, v0), delta);
    }

    /// Decodes both sketches: `(components(G), components(D(G)))`.
    ///
    /// Isolated-vertex convention: both counts include isolated vertices
    /// (each contributing 1 and 2 respectively), which cancels in the
    /// bipartiteness test.
    pub fn component_counts(&self) -> (usize, usize) {
        (self.base.component_count(), self.cover.component_count())
    }

    /// True (whp) iff every component of the sketched graph is bipartite.
    pub fn is_bipartite(&self) -> bool {
        let (c, cc) = self.component_counts();
        cc == 2 * c
    }

    /// Number of components containing an odd cycle (whp):
    /// `2·components(G) - components(D(G))`.
    pub fn odd_components(&self) -> usize {
        let (c, cc) = self.component_counts();
        (2 * c).saturating_sub(cc)
    }

    /// Sketch size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.base.size_bytes() + self.cover.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_field::prng::*;
    use dgs_hypergraph::generators::{gnp, grid, random_bipartite, random_tree};
    use dgs_hypergraph::Graph;
    use dgs_sketch::Profile;

    /// Exact bipartiteness by 2-coloring BFS.
    fn exact_bipartite(g: &Graph) -> bool {
        let n = g.n();
        let mut color = vec![-1i8; n];
        for start in 0..n as u32 {
            if color[start as usize] >= 0 {
                continue;
            }
            color[start as usize] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(x) = queue.pop_front() {
                for &y in g.neighbors(x) {
                    if color[y as usize] < 0 {
                        color[y as usize] = 1 - color[x as usize];
                        queue.push_back(y);
                    } else if color[y as usize] == color[x as usize] {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn sketch_for(g: &Graph, label: u64) -> BipartitenessSketch {
        let params = ForestParams::new(
            Profile::Practical,
            EdgeSpace::graph(2 * g.n()).unwrap().dimension(),
        );
        let mut sk = BipartitenessSketch::new(g.n(), &SeedTree::new(0xB1).child(label), params);
        for (u, v) in g.edges() {
            sk.update(u, v, 1);
        }
        sk
    }

    #[test]
    fn trees_and_grids_are_bipartite() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sketch_for(&random_tree(15, &mut rng), 0).is_bipartite());
        assert!(sketch_for(&grid(4, 4), 1).is_bipartite());
    }

    #[test]
    fn odd_cycle_detected() {
        let tri = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0)]);
        let sk = sketch_for(&tri, 2);
        assert!(!sk.is_bipartite());
        assert_eq!(sk.odd_components(), 1);

        let even_cycle = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(sketch_for(&even_cycle, 3).is_bipartite());
    }

    #[test]
    fn deletion_restores_bipartiteness() {
        // Even cycle + a chord creating an odd cycle; deleting the chord
        // restores bipartiteness. Only a deletion-capable sketch gets this.
        let mut sk = BipartitenessSketch::new(
            6,
            &SeedTree::new(0xB1).child(4),
            ForestParams::new(
                Profile::Practical,
                EdgeSpace::graph(12).unwrap().dimension(),
            ),
        );
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)] {
            sk.update(u, v, 1);
        }
        sk.update(0, 2, 1); // odd chord
        assert!(!sk.is_bipartite());
        sk.update(0, 2, -1);
        assert!(sk.is_bipartite());
    }

    #[test]
    fn matches_exact_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..12 {
            let n = rng.gen_range(6..16);
            let g = if trial % 3 == 0 {
                random_bipartite(n / 2, n - n / 2, 0.4, &mut rng)
            } else {
                gnp(n, rng.gen_range(0.1..0.4), &mut rng)
            };
            let sk = sketch_for(&g, 100 + trial);
            assert_eq!(
                sk.is_bipartite(),
                exact_bipartite(&g),
                "trial {trial}: {:?}",
                g.edges().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn counts_odd_components() {
        // Two triangles + one square, all disjoint: 2 odd components.
        let mut g = Graph::new(10);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(u, v);
        }
        for (u, v) in [(6, 7), (7, 8), (8, 9), (9, 6)] {
            g.add_edge(u, v);
        }
        let sk = sketch_for(&g, 200);
        assert_eq!(sk.odd_components(), 2);
        assert!(!sk.is_bipartite());
    }
}
