//! The simultaneous communication model of Becker et al. (Section 2).
//!
//! `n` players `P_1 … P_n` each hold the edges incident to their vertex;
//! a referee `Q` must compute a graph property from one message per player.
//! Because every sketch in this crate is **vertex-based** (each linear
//! measurement is local to one vertex), player `i`'s message is simply its
//! vertex's sampler states — computable from `P_i`'s local input alone,
//! since an edge update only touches the samplers of its own endpoints.
//!
//! A player holds only [`PlayerMessage::new`]'s `O(polylog n)`-size state
//! and processes its incident insert/delete stream with
//! [`PlayerMessage::apply`]; the referee reassembles the full sketch with
//! [`assemble_players`]. Tests verify bit-for-bit equality with a centrally
//! built sketch. Higher structures (k-skeletons, the Theorem 4/8/15/20
//! structures) expose their own message types composed from this one — see
//! `KSkeletonSketch::player_message` and the `dgs-core` structures.

use dgs_field::SeedTree;
use dgs_hypergraph::{EdgeSpace, HyperEdge, VertexId};
use dgs_sketch::{L0Sampler, SketchError, SketchResult};

use crate::forest::{vertex_samplers_for, ForestParams, SpanningForestSketch};
use crate::vector::incidence_coefficient;

/// One player's message for a (full-vertex-set) spanning-forest sketch:
/// its vertex id and per-round sampler states. This is also the unit other
/// structures' messages are built from.
#[derive(Clone, Debug)]
pub struct PlayerMessage {
    /// The player's vertex.
    pub vertex: VertexId,
    /// Sampler state per Borůvka round.
    pub samplers: Vec<L0Sampler>,
}

impl PlayerMessage {
    /// A fresh (zero) state for player `v` of a sketch over the full vertex
    /// set of `space` — bit-identical seeding to the central constructor,
    /// but holding only this vertex's `O(polylog)` share.
    pub fn new(space: &EdgeSpace, v: VertexId, seeds: &SeedTree, params: ForestParams) -> Self {
        Self::new_induced(space, space.n(), v, seeds, params)
    }

    /// Like [`new`](Self::new) for a sketch whose present vertex set has
    /// `present_count` vertices (the vertex-subsampled subgraphs of the
    /// Theorem 4/8 structure) — the count determines round and level
    /// budgets, and is publicly computable from the shared seeds.
    pub fn new_induced(
        space: &EdgeSpace,
        present_count: usize,
        v: VertexId,
        seeds: &SeedTree,
        params: ForestParams,
    ) -> Self {
        assert!((v as usize) < space.n(), "vertex {v} out of range");
        PlayerMessage {
            vertex: v,
            samplers: vertex_samplers_for(space, present_count, seeds, params),
        }
    }

    /// Fallible local stream element: a signed update of an edge incident
    /// to this player's vertex, applying only this vertex's incidence
    /// coefficient. Misrouted edges (not incident to the player), rank
    /// violations, and out-of-range vertices surface as
    /// [`SketchError::InvalidInput`].
    pub fn try_apply(&mut self, space: &EdgeSpace, e: &HyperEdge, delta: i64) -> SketchResult<()> {
        if !e.contains(self.vertex) {
            return Err(SketchError::invalid(format!(
                "edge {e:?} not incident to player {}",
                self.vertex
            )));
        }
        if e.cardinality() > space.max_rank() {
            return Err(SketchError::invalid(format!(
                "edge of rank {} exceeds the space's rank bound {}",
                e.cardinality(),
                space.max_rank()
            )));
        }
        if let Some(&v) = e.vertices().iter().find(|&&v| (v as usize) >= space.n()) {
            return Err(SketchError::invalid(format!(
                "vertex {v} out of range for a {}-vertex edge space",
                space.n()
            )));
        }
        let idx = space.rank(e);
        let coeff = incidence_coefficient(e, self.vertex) * delta;
        for s in &mut self.samplers {
            s.update(idx, coeff)?;
        }
        Ok(())
    }

    /// Processes one local stream element.
    ///
    /// # Panics
    /// Panics if `e` is not incident to the player's vertex; see
    /// [`try_apply`](Self::try_apply).
    pub fn apply(&mut self, space: &EdgeSpace, e: &HyperEdge, delta: i64) {
        if let Err(err) = self.try_apply(space, e, delta) {
            panic!("{err}");
        }
    }

    /// Message length in bytes — the quantity the model minimizes.
    pub fn size_bytes(&self) -> usize {
        self.samplers.iter().map(|s| s.size_bytes()).sum()
    }
}

impl dgs_field::Codec for PlayerMessage {
    fn encode(&self, w: &mut dgs_field::Writer) {
        w.put_u64(self.vertex as u64);
        self.samplers.encode(w);
    }
    fn decode(r: &mut dgs_field::Reader<'_>) -> Result<Self, dgs_field::CodecError> {
        let vertex = r.get_u64()?;
        if vertex > u32::MAX as u64 {
            return Err(dgs_field::CodecError {
                offset: 0,
                message: format!("player vertex {vertex} exceeds the u32 id space"),
            });
        }
        Ok(PlayerMessage {
            vertex: vertex as VertexId,
            samplers: Vec::decode(r)?,
        })
    }
}

/// Builds player `v`'s message from its complete local input (convenience
/// over [`PlayerMessage::new`] + [`PlayerMessage::apply`]).
///
/// # Panics
/// Panics if some listed edge is not incident to `v`.
pub fn player_sketch(
    space: &EdgeSpace,
    v: VertexId,
    incident_edges: &[HyperEdge],
    seeds: &SeedTree,
    params: ForestParams,
) -> PlayerMessage {
    let mut msg = PlayerMessage::new(space, v, seeds, params);
    for e in incident_edges {
        msg.apply(space, e, 1);
    }
    msg
}

/// The referee: reassembles the full vertex-based sketch from all player
/// messages. Missing players keep zero samplers (isolated vertices).
pub fn assemble_players(
    space: &EdgeSpace,
    messages: Vec<PlayerMessage>,
    seeds: &SeedTree,
    params: ForestParams,
) -> SpanningForestSketch {
    let mut sk = SpanningForestSketch::new_full(space.clone(), seeds, params);
    for msg in messages {
        sk.set_vertex_samplers(msg.vertex, msg.samplers);
    }
    sk
}

/// Strict referee for untrusted transports: requires **exactly one**
/// message per vertex of the space and validates each message's shape and
/// seeding against the slot it fills. A missing player (dropped message), a
/// duplicate (retransmitted twice), an out-of-range vertex, or a corrupted
/// sampler state all surface as [`SketchError::InvalidInput`] — the lenient
/// [`assemble_players`] would silently read a dropped message as an
/// isolated vertex, which is a wrong answer, not a detected fault.
pub fn assemble_players_strict(
    space: &EdgeSpace,
    messages: Vec<PlayerMessage>,
    seeds: &SeedTree,
    params: ForestParams,
) -> SketchResult<SpanningForestSketch> {
    let mut sk = SpanningForestSketch::new_full(space.clone(), seeds, params);
    let mut seen = vec![false; space.n()];
    for msg in &messages {
        let v = msg.vertex as usize;
        if v >= space.n() {
            return Err(SketchError::invalid(format!(
                "player message for vertex {} outside the {}-vertex space",
                msg.vertex,
                space.n()
            )));
        }
        if seen[v] {
            return Err(SketchError::invalid(format!(
                "duplicate player message for vertex {}",
                msg.vertex
            )));
        }
        seen[v] = true;
    }
    if let Some(v) = seen.iter().position(|&s| !s) {
        return Err(SketchError::invalid(format!(
            "missing player message for vertex {v}"
        )));
    }
    for msg in messages {
        sk.try_set_vertex_samplers(msg.vertex, msg.samplers)?;
    }
    Ok(sk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_field::prng::*;
    use dgs_hypergraph::algo::hyper_component_count;
    use dgs_hypergraph::generators::random_mixed_hypergraph;
    use dgs_hypergraph::Hypergraph;
    use dgs_sketch::Profile;

    #[test]
    fn distributed_equals_central() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 12;
        let h = random_mixed_hypergraph(n, 3, 14, &mut rng);
        let space = EdgeSpace::new(n, 3).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(9000);

        // Central sketch.
        let mut central = SpanningForestSketch::new_full(space.clone(), &seeds, params);
        for e in h.edges() {
            central.update(e, 1);
        }

        // Each player sees only its incident edges.
        let messages: Vec<PlayerMessage> = (0..n as VertexId)
            .map(|v| {
                let incident: Vec<HyperEdge> = h
                    .edges()
                    .iter()
                    .filter(|e| e.contains(v))
                    .cloned()
                    .collect();
                player_sketch(&space, v, &incident, &seeds, params)
            })
            .collect();
        let assembled = assemble_players(&space, messages, &seeds, params);

        // The referee's decode must match the central decode exactly
        // (identical seeds, identical cell states).
        assert_eq!(central.decode(), assembled.decode());
        let (kept, labels) = assembled.decode_with_labels();
        assert_eq!(labels.component_count(), hyper_component_count(&h));
        let sub = Hypergraph::from_edges(n, kept);
        assert_eq!(hyper_component_count(&sub), hyper_component_count(&h));
    }

    #[test]
    fn players_process_deletions_locally() {
        let n = 8;
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(9005);
        // Player 3's local history: insert two edges, delete one.
        let e1 = HyperEdge::pair(3, 5);
        let e2 = HyperEdge::pair(1, 3);
        let mut msg = PlayerMessage::new(&space, 3, &seeds, params);
        msg.apply(&space, &e1, 1);
        msg.apply(&space, &e2, 1);
        msg.apply(&space, &e1, -1);
        // Equivalent message built from the net input.
        let net = player_sketch(&space, 3, std::slice::from_ref(&e2), &seeds, params);
        // Cell states must agree: verify via assembly + decode with the
        // counterpart endpoints loaded.
        let mk = |m3: PlayerMessage| {
            let m1 = player_sketch(&space, 1, std::slice::from_ref(&e2), &seeds, params);
            assemble_players(&space, vec![m3, m1], &seeds, params).decode()
        };
        assert_eq!(mk(msg), mk(net));
    }

    #[test]
    fn missing_players_read_as_isolated() {
        let n = 6;
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(9001);
        // Only players 0 and 1 report, sharing edge {0,1}.
        let e = HyperEdge::pair(0, 1);
        let m0 = player_sketch(&space, 0, std::slice::from_ref(&e), &seeds, params);
        let m1 = player_sketch(&space, 1, std::slice::from_ref(&e), &seeds, params);
        let sk = assemble_players(&space, vec![m0, m1], &seeds, params);
        let (forest, labels) = sk.decode_with_labels();
        assert_eq!(forest, vec![e]);
        assert_eq!(labels.component_count(), 5);
    }

    #[test]
    fn message_size_is_the_per_vertex_cost() {
        let n = 10;
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(9002);
        let e = HyperEdge::pair(2, 3);
        let msg = player_sketch(&space, 2, std::slice::from_ref(&e), &seeds, params);
        let full = SpanningForestSketch::new_full(space, &seeds, params);
        assert_eq!(msg.size_bytes(), full.max_player_message_bytes());
        // n players' messages together equal the sketch size.
        assert_eq!(msg.size_bytes() * n, full.size_bytes());
    }

    #[test]
    #[should_panic(expected = "not incident")]
    fn foreign_edge_rejected() {
        let space = EdgeSpace::graph(5).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let _ = player_sketch(
            &space,
            0,
            &[HyperEdge::pair(1, 2)],
            &SeedTree::new(1),
            params,
        );
    }
}
