//! AGM-style connectivity sketches for graphs and hypergraphs.
//!
//! * [`vector`] — the Section 4.1 vertex-incidence vectors `a^i` whose sums
//!   over any vertex set `S` have support exactly `δ(S)`;
//! * [`forest`] — the spanning-forest / spanning-graph sketch (Theorem 2
//!   for graphs, Theorem 13 for hypergraphs) with a Borůvka decoder;
//! * [`skeleton`] — k-skeleton sketches (Theorem 14) built from `k`
//!   *independent* spanning sketches, peeled through sketch subtraction;
//! * [`bipartite`] — bipartiteness via the double-cover reduction, the
//!   classic companion application of the same sketch machinery;
//! * [`player`] — the simultaneous communication ("n players + referee")
//!   view of Becker et al.: every sketch here is vertex-based, so each
//!   player can compute its message from its incident edges alone.

pub mod bipartite;
pub mod forest;
pub mod player;
pub mod skeleton;
pub mod vector;

pub use bipartite::BipartitenessSketch;
pub use forest::{DecodeScratch, ForestParams, SpanningForestSketch};
pub use player::{assemble_players, assemble_players_strict, player_sketch, PlayerMessage};
pub use skeleton::KSkeletonSketch;
pub use vector::incidence_coefficient;
