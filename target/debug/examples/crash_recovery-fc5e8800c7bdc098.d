/root/repo/target/debug/examples/crash_recovery-fc5e8800c7bdc098.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-fc5e8800c7bdc098: examples/crash_recovery.rs

examples/crash_recovery.rs:
