/root/repo/target/debug/examples/quickstart-5bf3c8d7e4c846f2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5bf3c8d7e4c846f2: examples/quickstart.rs

examples/quickstart.rs:
