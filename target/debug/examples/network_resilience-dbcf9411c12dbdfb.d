/root/repo/target/debug/examples/network_resilience-dbcf9411c12dbdfb.d: examples/network_resilience.rs

/root/repo/target/debug/examples/network_resilience-dbcf9411c12dbdfb: examples/network_resilience.rs

examples/network_resilience.rs:
