/root/repo/target/debug/examples/reconstruction-c594814b0e0eeece.d: examples/reconstruction.rs Cargo.toml

/root/repo/target/debug/examples/libreconstruction-c594814b0e0eeece.rmeta: examples/reconstruction.rs Cargo.toml

examples/reconstruction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
