/root/repo/target/debug/examples/cut_monitoring-8e3a8e454763568f.d: examples/cut_monitoring.rs

/root/repo/target/debug/examples/cut_monitoring-8e3a8e454763568f: examples/cut_monitoring.rs

examples/cut_monitoring.rs:
