/root/repo/target/debug/examples/distributed_players-a68c2e7fca250fa5.d: examples/distributed_players.rs

/root/repo/target/debug/examples/distributed_players-a68c2e7fca250fa5: examples/distributed_players.rs

examples/distributed_players.rs:
