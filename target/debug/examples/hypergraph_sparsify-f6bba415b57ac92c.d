/root/repo/target/debug/examples/hypergraph_sparsify-f6bba415b57ac92c.d: examples/hypergraph_sparsify.rs

/root/repo/target/debug/examples/hypergraph_sparsify-f6bba415b57ac92c: examples/hypergraph_sparsify.rs

examples/hypergraph_sparsify.rs:
