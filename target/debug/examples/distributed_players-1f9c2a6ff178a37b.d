/root/repo/target/debug/examples/distributed_players-1f9c2a6ff178a37b.d: examples/distributed_players.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_players-1f9c2a6ff178a37b.rmeta: examples/distributed_players.rs Cargo.toml

examples/distributed_players.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
