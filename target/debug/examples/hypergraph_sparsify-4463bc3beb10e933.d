/root/repo/target/debug/examples/hypergraph_sparsify-4463bc3beb10e933.d: examples/hypergraph_sparsify.rs Cargo.toml

/root/repo/target/debug/examples/libhypergraph_sparsify-4463bc3beb10e933.rmeta: examples/hypergraph_sparsify.rs Cargo.toml

examples/hypergraph_sparsify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
