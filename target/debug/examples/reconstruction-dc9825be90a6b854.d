/root/repo/target/debug/examples/reconstruction-dc9825be90a6b854.d: examples/reconstruction.rs

/root/repo/target/debug/examples/reconstruction-dc9825be90a6b854: examples/reconstruction.rs

examples/reconstruction.rs:
