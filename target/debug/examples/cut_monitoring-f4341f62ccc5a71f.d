/root/repo/target/debug/examples/cut_monitoring-f4341f62ccc5a71f.d: examples/cut_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libcut_monitoring-f4341f62ccc5a71f.rmeta: examples/cut_monitoring.rs Cargo.toml

examples/cut_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
