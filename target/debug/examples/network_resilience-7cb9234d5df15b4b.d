/root/repo/target/debug/examples/network_resilience-7cb9234d5df15b4b.d: examples/network_resilience.rs Cargo.toml

/root/repo/target/debug/examples/libnetwork_resilience-7cb9234d5df15b4b.rmeta: examples/network_resilience.rs Cargo.toml

examples/network_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
