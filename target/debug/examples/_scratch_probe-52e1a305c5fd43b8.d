/root/repo/target/debug/examples/_scratch_probe-52e1a305c5fd43b8.d: examples/_scratch_probe.rs

/root/repo/target/debug/examples/_scratch_probe-52e1a305c5fd43b8: examples/_scratch_probe.rs

examples/_scratch_probe.rs:
