/root/repo/target/debug/deps/property_invariants-4f254ef121a9cd2b.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-4f254ef121a9cd2b: tests/property_invariants.rs

tests/property_invariants.rs:
