/root/repo/target/debug/deps/dgs_baselines-ae5d00e29d0dd9d7.d: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs

/root/repo/target/debug/deps/libdgs_baselines-ae5d00e29d0dd9d7.rlib: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs

/root/repo/target/debug/deps/libdgs_baselines-ae5d00e29d0dd9d7.rmeta: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs

crates/baselines/src/lib.rs:
crates/baselines/src/becker.rs:
crates/baselines/src/bk_sparsifier.rs:
crates/baselines/src/eppstein.rs:
crates/baselines/src/indexing.rs:
crates/baselines/src/kogan_krauthgamer.rs:
crates/baselines/src/offline_light.rs:
crates/baselines/src/sfst.rs:
crates/baselines/src/store_all.rs:
