/root/repo/target/debug/deps/experiments-8cde841922a39632.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-8cde841922a39632: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
