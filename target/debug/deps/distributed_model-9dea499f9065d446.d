/root/repo/target/debug/deps/distributed_model-9dea499f9065d446.d: tests/distributed_model.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed_model-9dea499f9065d446.rmeta: tests/distributed_model.rs Cargo.toml

tests/distributed_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
