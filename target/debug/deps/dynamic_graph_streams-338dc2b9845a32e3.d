/root/repo/target/debug/deps/dynamic_graph_streams-338dc2b9845a32e3.d: src/lib.rs src/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_graph_streams-338dc2b9845a32e3.rmeta: src/lib.rs src/parallel.rs Cargo.toml

src/lib.rs:
src/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
