/root/repo/target/debug/deps/persistence-19695e79526012f7.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-19695e79526012f7: tests/persistence.rs

tests/persistence.rs:
