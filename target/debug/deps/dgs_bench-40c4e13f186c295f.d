/root/repo/target/debug/deps/dgs_bench-40c4e13f186c295f.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_vc_query.rs crates/bench/src/experiments/e02_indexing.rs crates/bench/src/experiments/e03_estimator.rs crates/bench/src/experiments/e04_hyper_conn.rs crates/bench/src/experiments/e05_skeleton.rs crates/bench/src/experiments/e06_reconstruct.rs crates/bench/src/experiments/e07_lemma16.rs crates/bench/src/experiments/e08_sparsifier.rs crates/bench/src/experiments/e09_sfst.rs crates/bench/src/experiments/e10_scaling.rs crates/bench/src/experiments/e11_ablation.rs crates/bench/src/experiments/e12_eppstein.rs crates/bench/src/experiments/e13_sampler_ablation.rs crates/bench/src/experiments/e14_edge_conn.rs crates/bench/src/experiments/e15_distributed.rs crates/bench/src/experiments/e16_recovery.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/stats.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libdgs_bench-40c4e13f186c295f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_vc_query.rs crates/bench/src/experiments/e02_indexing.rs crates/bench/src/experiments/e03_estimator.rs crates/bench/src/experiments/e04_hyper_conn.rs crates/bench/src/experiments/e05_skeleton.rs crates/bench/src/experiments/e06_reconstruct.rs crates/bench/src/experiments/e07_lemma16.rs crates/bench/src/experiments/e08_sparsifier.rs crates/bench/src/experiments/e09_sfst.rs crates/bench/src/experiments/e10_scaling.rs crates/bench/src/experiments/e11_ablation.rs crates/bench/src/experiments/e12_eppstein.rs crates/bench/src/experiments/e13_sampler_ablation.rs crates/bench/src/experiments/e14_edge_conn.rs crates/bench/src/experiments/e15_distributed.rs crates/bench/src/experiments/e16_recovery.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/stats.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/e01_vc_query.rs:
crates/bench/src/experiments/e02_indexing.rs:
crates/bench/src/experiments/e03_estimator.rs:
crates/bench/src/experiments/e04_hyper_conn.rs:
crates/bench/src/experiments/e05_skeleton.rs:
crates/bench/src/experiments/e06_reconstruct.rs:
crates/bench/src/experiments/e07_lemma16.rs:
crates/bench/src/experiments/e08_sparsifier.rs:
crates/bench/src/experiments/e09_sfst.rs:
crates/bench/src/experiments/e10_scaling.rs:
crates/bench/src/experiments/e11_ablation.rs:
crates/bench/src/experiments/e12_eppstein.rs:
crates/bench/src/experiments/e13_sampler_ablation.rs:
crates/bench/src/experiments/e14_edge_conn.rs:
crates/bench/src/experiments/e15_distributed.rs:
crates/bench/src/experiments/e16_recovery.rs:
crates/bench/src/microbench.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
