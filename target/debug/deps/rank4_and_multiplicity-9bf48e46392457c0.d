/root/repo/target/debug/deps/rank4_and_multiplicity-9bf48e46392457c0.d: tests/rank4_and_multiplicity.rs

/root/repo/target/debug/deps/rank4_and_multiplicity-9bf48e46392457c0: tests/rank4_and_multiplicity.rs

tests/rank4_and_multiplicity.rs:
