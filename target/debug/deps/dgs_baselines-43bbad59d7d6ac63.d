/root/repo/target/debug/deps/dgs_baselines-43bbad59d7d6ac63.d: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs Cargo.toml

/root/repo/target/debug/deps/libdgs_baselines-43bbad59d7d6ac63.rmeta: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/becker.rs:
crates/baselines/src/bk_sparsifier.rs:
crates/baselines/src/eppstein.rs:
crates/baselines/src/indexing.rs:
crates/baselines/src/kogan_krauthgamer.rs:
crates/baselines/src/offline_light.rs:
crates/baselines/src/sfst.rs:
crates/baselines/src/store_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
