/root/repo/target/debug/deps/dgs-a4d1021119619501.d: src/bin/dgs.rs Cargo.toml

/root/repo/target/debug/deps/libdgs-a4d1021119619501.rmeta: src/bin/dgs.rs Cargo.toml

src/bin/dgs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
