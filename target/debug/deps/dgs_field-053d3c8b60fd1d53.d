/root/repo/target/debug/deps/dgs_field-053d3c8b60fd1d53.d: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs

/root/repo/target/debug/deps/libdgs_field-053d3c8b60fd1d53.rlib: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs

/root/repo/target/debug/deps/libdgs_field-053d3c8b60fd1d53.rmeta: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs

crates/field/src/lib.rs:
crates/field/src/codec.rs:
crates/field/src/fingerprint.rs:
crates/field/src/fp61.rs:
crates/field/src/hash.rs:
crates/field/src/prng.rs:
crates/field/src/seed.rs:
