/root/repo/target/debug/deps/exact_algos-475be0d5a3c70362.d: crates/bench/benches/exact_algos.rs Cargo.toml

/root/repo/target/debug/deps/libexact_algos-475be0d5a3c70362.rmeta: crates/bench/benches/exact_algos.rs Cargo.toml

crates/bench/benches/exact_algos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
