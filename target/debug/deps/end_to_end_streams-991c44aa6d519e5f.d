/root/repo/target/debug/deps/end_to_end_streams-991c44aa6d519e5f.d: tests/end_to_end_streams.rs

/root/repo/target/debug/deps/end_to_end_streams-991c44aa6d519e5f: tests/end_to_end_streams.rs

tests/end_to_end_streams.rs:
