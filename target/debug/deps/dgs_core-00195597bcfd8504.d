/root/repo/target/debug/deps/dgs_core-00195597bcfd8504.d: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs Cargo.toml

/root/repo/target/debug/deps/libdgs_core-00195597bcfd8504.rmeta: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/boost.rs:
crates/core/src/checkpoint.rs:
crates/core/src/edge_conn.rs:
crates/core/src/reconstruct.rs:
crates/core/src/sparsify.rs:
crates/core/src/vertex_conn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
