/root/repo/target/debug/deps/dgs_connectivity-83418efa4c3b2f39.d: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libdgs_connectivity-83418efa4c3b2f39.rmeta: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs Cargo.toml

crates/connectivity/src/lib.rs:
crates/connectivity/src/bipartite.rs:
crates/connectivity/src/forest.rs:
crates/connectivity/src/player.rs:
crates/connectivity/src/skeleton.rs:
crates/connectivity/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
