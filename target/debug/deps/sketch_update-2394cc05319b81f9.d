/root/repo/target/debug/deps/sketch_update-2394cc05319b81f9.d: crates/bench/benches/sketch_update.rs Cargo.toml

/root/repo/target/debug/deps/libsketch_update-2394cc05319b81f9.rmeta: crates/bench/benches/sketch_update.rs Cargo.toml

crates/bench/benches/sketch_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
