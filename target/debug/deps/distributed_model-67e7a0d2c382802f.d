/root/repo/target/debug/deps/distributed_model-67e7a0d2c382802f.d: tests/distributed_model.rs

/root/repo/target/debug/deps/distributed_model-67e7a0d2c382802f: tests/distributed_model.rs

tests/distributed_model.rs:
