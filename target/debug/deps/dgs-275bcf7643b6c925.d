/root/repo/target/debug/deps/dgs-275bcf7643b6c925.d: src/bin/dgs.rs

/root/repo/target/debug/deps/dgs-275bcf7643b6c925: src/bin/dgs.rs

src/bin/dgs.rs:
