/root/repo/target/debug/deps/soundness-e484177de31cc3e6.d: crates/sketch/tests/soundness.rs

/root/repo/target/debug/deps/soundness-e484177de31cc3e6: crates/sketch/tests/soundness.rs

crates/sketch/tests/soundness.rs:
