/root/repo/target/debug/deps/soundness-0c9d46b03ac09323.d: crates/sketch/tests/soundness.rs Cargo.toml

/root/repo/target/debug/deps/libsoundness-0c9d46b03ac09323.rmeta: crates/sketch/tests/soundness.rs Cargo.toml

crates/sketch/tests/soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
