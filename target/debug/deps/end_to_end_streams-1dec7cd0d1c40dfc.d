/root/repo/target/debug/deps/end_to_end_streams-1dec7cd0d1c40dfc.d: tests/end_to_end_streams.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_streams-1dec7cd0d1c40dfc.rmeta: tests/end_to_end_streams.rs Cargo.toml

tests/end_to_end_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
