/root/repo/target/debug/deps/dgs-6ec38525a7e226da.d: src/bin/dgs.rs Cargo.toml

/root/repo/target/debug/deps/libdgs-6ec38525a7e226da.rmeta: src/bin/dgs.rs Cargo.toml

src/bin/dgs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
