/root/repo/target/debug/deps/crash_recovery-8072d845ed4896df.d: tests/crash_recovery.rs

/root/repo/target/debug/deps/crash_recovery-8072d845ed4896df: tests/crash_recovery.rs

tests/crash_recovery.rs:
