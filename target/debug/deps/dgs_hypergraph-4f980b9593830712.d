/root/repo/target/debug/deps/dgs_hypergraph-4f980b9593830712.d: crates/hypergraph/src/lib.rs crates/hypergraph/src/algo/mod.rs crates/hypergraph/src/algo/components.rs crates/hypergraph/src/algo/degeneracy.rs crates/hypergraph/src/algo/dfs.rs crates/hypergraph/src/algo/dinic.rs crates/hypergraph/src/algo/gomory_hu.rs crates/hypergraph/src/algo/hyper_cut.rs crates/hypergraph/src/algo/spanning.rs crates/hypergraph/src/algo/stoer_wagner.rs crates/hypergraph/src/algo/strength.rs crates/hypergraph/src/algo/union_find.rs crates/hypergraph/src/algo/vertex_conn.rs crates/hypergraph/src/edge.rs crates/hypergraph/src/encoding.rs crates/hypergraph/src/fault.rs crates/hypergraph/src/generators/mod.rs crates/hypergraph/src/generators/degenerate.rs crates/hypergraph/src/generators/gnp.rs crates/hypergraph/src/generators/harary.rs crates/hypergraph/src/generators/hyper.rs crates/hypergraph/src/generators/planted.rs crates/hypergraph/src/generators/scale_free.rs crates/hypergraph/src/generators/streams.rs crates/hypergraph/src/graph.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/stream.rs crates/hypergraph/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libdgs_hypergraph-4f980b9593830712.rmeta: crates/hypergraph/src/lib.rs crates/hypergraph/src/algo/mod.rs crates/hypergraph/src/algo/components.rs crates/hypergraph/src/algo/degeneracy.rs crates/hypergraph/src/algo/dfs.rs crates/hypergraph/src/algo/dinic.rs crates/hypergraph/src/algo/gomory_hu.rs crates/hypergraph/src/algo/hyper_cut.rs crates/hypergraph/src/algo/spanning.rs crates/hypergraph/src/algo/stoer_wagner.rs crates/hypergraph/src/algo/strength.rs crates/hypergraph/src/algo/union_find.rs crates/hypergraph/src/algo/vertex_conn.rs crates/hypergraph/src/edge.rs crates/hypergraph/src/encoding.rs crates/hypergraph/src/fault.rs crates/hypergraph/src/generators/mod.rs crates/hypergraph/src/generators/degenerate.rs crates/hypergraph/src/generators/gnp.rs crates/hypergraph/src/generators/harary.rs crates/hypergraph/src/generators/hyper.rs crates/hypergraph/src/generators/planted.rs crates/hypergraph/src/generators/scale_free.rs crates/hypergraph/src/generators/streams.rs crates/hypergraph/src/graph.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/stream.rs crates/hypergraph/src/wal.rs Cargo.toml

crates/hypergraph/src/lib.rs:
crates/hypergraph/src/algo/mod.rs:
crates/hypergraph/src/algo/components.rs:
crates/hypergraph/src/algo/degeneracy.rs:
crates/hypergraph/src/algo/dfs.rs:
crates/hypergraph/src/algo/dinic.rs:
crates/hypergraph/src/algo/gomory_hu.rs:
crates/hypergraph/src/algo/hyper_cut.rs:
crates/hypergraph/src/algo/spanning.rs:
crates/hypergraph/src/algo/stoer_wagner.rs:
crates/hypergraph/src/algo/strength.rs:
crates/hypergraph/src/algo/union_find.rs:
crates/hypergraph/src/algo/vertex_conn.rs:
crates/hypergraph/src/edge.rs:
crates/hypergraph/src/encoding.rs:
crates/hypergraph/src/fault.rs:
crates/hypergraph/src/generators/mod.rs:
crates/hypergraph/src/generators/degenerate.rs:
crates/hypergraph/src/generators/gnp.rs:
crates/hypergraph/src/generators/harary.rs:
crates/hypergraph/src/generators/hyper.rs:
crates/hypergraph/src/generators/planted.rs:
crates/hypergraph/src/generators/scale_free.rs:
crates/hypergraph/src/generators/streams.rs:
crates/hypergraph/src/graph.rs:
crates/hypergraph/src/hypergraph.rs:
crates/hypergraph/src/io.rs:
crates/hypergraph/src/stream.rs:
crates/hypergraph/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
