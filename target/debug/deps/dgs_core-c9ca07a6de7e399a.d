/root/repo/target/debug/deps/dgs_core-c9ca07a6de7e399a.d: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs

/root/repo/target/debug/deps/dgs_core-c9ca07a6de7e399a: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs

crates/core/src/lib.rs:
crates/core/src/boost.rs:
crates/core/src/checkpoint.rs:
crates/core/src/edge_conn.rs:
crates/core/src/reconstruct.rs:
crates/core/src/sparsify.rs:
crates/core/src/vertex_conn.rs:
