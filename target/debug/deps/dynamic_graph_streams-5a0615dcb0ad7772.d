/root/repo/target/debug/deps/dynamic_graph_streams-5a0615dcb0ad7772.d: src/lib.rs src/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_graph_streams-5a0615dcb0ad7772.rmeta: src/lib.rs src/parallel.rs Cargo.toml

src/lib.rs:
src/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
