/root/repo/target/debug/deps/decode-67b37b85fdc7481e.d: crates/bench/benches/decode.rs Cargo.toml

/root/repo/target/debug/deps/libdecode-67b37b85fdc7481e.rmeta: crates/bench/benches/decode.rs Cargo.toml

crates/bench/benches/decode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
