/root/repo/target/debug/deps/dgs_baselines-70dc4124a5d7aa9e.d: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs

/root/repo/target/debug/deps/dgs_baselines-70dc4124a5d7aa9e: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs

crates/baselines/src/lib.rs:
crates/baselines/src/becker.rs:
crates/baselines/src/bk_sparsifier.rs:
crates/baselines/src/eppstein.rs:
crates/baselines/src/indexing.rs:
crates/baselines/src/kogan_krauthgamer.rs:
crates/baselines/src/offline_light.rs:
crates/baselines/src/sfst.rs:
crates/baselines/src/store_all.rs:
