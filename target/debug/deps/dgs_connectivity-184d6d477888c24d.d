/root/repo/target/debug/deps/dgs_connectivity-184d6d477888c24d.d: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs

/root/repo/target/debug/deps/libdgs_connectivity-184d6d477888c24d.rlib: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs

/root/repo/target/debug/deps/libdgs_connectivity-184d6d477888c24d.rmeta: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs

crates/connectivity/src/lib.rs:
crates/connectivity/src/bipartite.rs:
crates/connectivity/src/forest.rs:
crates/connectivity/src/player.rs:
crates/connectivity/src/skeleton.rs:
crates/connectivity/src/vector.rs:
