/root/repo/target/debug/deps/dgs_connectivity-edb8a5644c6f7420.d: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs

/root/repo/target/debug/deps/dgs_connectivity-edb8a5644c6f7420: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs

crates/connectivity/src/lib.rs:
crates/connectivity/src/bipartite.rs:
crates/connectivity/src/forest.rs:
crates/connectivity/src/player.rs:
crates/connectivity/src/skeleton.rs:
crates/connectivity/src/vector.rs:
