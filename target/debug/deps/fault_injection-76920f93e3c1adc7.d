/root/repo/target/debug/deps/fault_injection-76920f93e3c1adc7.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-76920f93e3c1adc7: tests/fault_injection.rs

tests/fault_injection.rs:
