/root/repo/target/debug/deps/dgs_sketch-711ca29669a37832.d: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs

/root/repo/target/debug/deps/dgs_sketch-711ca29669a37832: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs

crates/sketch/src/lib.rs:
crates/sketch/src/error.rs:
crates/sketch/src/l0.rs:
crates/sketch/src/one_sparse.rs:
crates/sketch/src/params.rs:
crates/sketch/src/sparse_recovery.rs:
