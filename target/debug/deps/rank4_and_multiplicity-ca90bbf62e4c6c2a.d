/root/repo/target/debug/deps/rank4_and_multiplicity-ca90bbf62e4c6c2a.d: tests/rank4_and_multiplicity.rs Cargo.toml

/root/repo/target/debug/deps/librank4_and_multiplicity-ca90bbf62e4c6c2a.rmeta: tests/rank4_and_multiplicity.rs Cargo.toml

tests/rank4_and_multiplicity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
