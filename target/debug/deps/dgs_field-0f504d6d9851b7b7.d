/root/repo/target/debug/deps/dgs_field-0f504d6d9851b7b7.d: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs Cargo.toml

/root/repo/target/debug/deps/libdgs_field-0f504d6d9851b7b7.rmeta: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs Cargo.toml

crates/field/src/lib.rs:
crates/field/src/codec.rs:
crates/field/src/fingerprint.rs:
crates/field/src/fp61.rs:
crates/field/src/hash.rs:
crates/field/src/prng.rs:
crates/field/src/seed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
