/root/repo/target/debug/deps/dynamic_graph_streams-f7262aeba790ae5c.d: src/lib.rs src/parallel.rs

/root/repo/target/debug/deps/dynamic_graph_streams-f7262aeba790ae5c: src/lib.rs src/parallel.rs

src/lib.rs:
src/parallel.rs:
