/root/repo/target/debug/deps/dgs-fc081763075a6465.d: src/bin/dgs.rs

/root/repo/target/debug/deps/dgs-fc081763075a6465: src/bin/dgs.rs

src/bin/dgs.rs:
