/root/repo/target/debug/deps/persistence-6f06ca9210765a75.d: tests/persistence.rs Cargo.toml

/root/repo/target/debug/deps/libpersistence-6f06ca9210765a75.rmeta: tests/persistence.rs Cargo.toml

tests/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
