/root/repo/target/debug/deps/dgs_core-2eaa4a92146939a9.d: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs

/root/repo/target/debug/deps/libdgs_core-2eaa4a92146939a9.rlib: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs

/root/repo/target/debug/deps/libdgs_core-2eaa4a92146939a9.rmeta: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs

crates/core/src/lib.rs:
crates/core/src/boost.rs:
crates/core/src/checkpoint.rs:
crates/core/src/edge_conn.rs:
crates/core/src/reconstruct.rs:
crates/core/src/sparsify.rs:
crates/core/src/vertex_conn.rs:
