/root/repo/target/debug/deps/exact_cross_validation-0d746183b1bbda1d.d: crates/hypergraph/tests/exact_cross_validation.rs

/root/repo/target/debug/deps/exact_cross_validation-0d746183b1bbda1d: crates/hypergraph/tests/exact_cross_validation.rs

crates/hypergraph/tests/exact_cross_validation.rs:
