/root/repo/target/debug/deps/dynamic_graph_streams-c8e8b00b45444458.d: src/lib.rs src/parallel.rs

/root/repo/target/debug/deps/libdynamic_graph_streams-c8e8b00b45444458.rlib: src/lib.rs src/parallel.rs

/root/repo/target/debug/deps/libdynamic_graph_streams-c8e8b00b45444458.rmeta: src/lib.rs src/parallel.rs

src/lib.rs:
src/parallel.rs:
