/root/repo/target/debug/deps/dgs_sketch-b9eef3b390a0f3c8.d: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libdgs_sketch-b9eef3b390a0f3c8.rmeta: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs Cargo.toml

crates/sketch/src/lib.rs:
crates/sketch/src/error.rs:
crates/sketch/src/l0.rs:
crates/sketch/src/one_sparse.rs:
crates/sketch/src/params.rs:
crates/sketch/src/sparse_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
