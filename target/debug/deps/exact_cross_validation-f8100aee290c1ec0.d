/root/repo/target/debug/deps/exact_cross_validation-f8100aee290c1ec0.d: crates/hypergraph/tests/exact_cross_validation.rs Cargo.toml

/root/repo/target/debug/deps/libexact_cross_validation-f8100aee290c1ec0.rmeta: crates/hypergraph/tests/exact_cross_validation.rs Cargo.toml

crates/hypergraph/tests/exact_cross_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
