/root/repo/target/debug/deps/dgs_field-dec4e76e4c67a7c4.d: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs

/root/repo/target/debug/deps/dgs_field-dec4e76e4c67a7c4: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs

crates/field/src/lib.rs:
crates/field/src/codec.rs:
crates/field/src/fingerprint.rs:
crates/field/src/fp61.rs:
crates/field/src/hash.rs:
crates/field/src/prng.rs:
crates/field/src/seed.rs:
