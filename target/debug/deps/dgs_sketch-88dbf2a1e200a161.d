/root/repo/target/debug/deps/dgs_sketch-88dbf2a1e200a161.d: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs

/root/repo/target/debug/deps/libdgs_sketch-88dbf2a1e200a161.rlib: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs

/root/repo/target/debug/deps/libdgs_sketch-88dbf2a1e200a161.rmeta: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs

crates/sketch/src/lib.rs:
crates/sketch/src/error.rs:
crates/sketch/src/l0.rs:
crates/sketch/src/one_sparse.rs:
crates/sketch/src/params.rs:
crates/sketch/src/sparse_recovery.rs:
