/root/repo/target/release/deps/distributed_model-6d8cb14be1735d4d.d: tests/distributed_model.rs

/root/repo/target/release/deps/distributed_model-6d8cb14be1735d4d: tests/distributed_model.rs

tests/distributed_model.rs:
