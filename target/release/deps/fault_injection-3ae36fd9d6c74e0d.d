/root/repo/target/release/deps/fault_injection-3ae36fd9d6c74e0d.d: tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-3ae36fd9d6c74e0d: tests/fault_injection.rs

tests/fault_injection.rs:
