/root/repo/target/release/deps/end_to_end_streams-78d83578260a1348.d: tests/end_to_end_streams.rs

/root/repo/target/release/deps/end_to_end_streams-78d83578260a1348: tests/end_to_end_streams.rs

tests/end_to_end_streams.rs:
