/root/repo/target/release/deps/dgs_baselines-d0b6a266ba1bfefd.d: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs

/root/repo/target/release/deps/libdgs_baselines-d0b6a266ba1bfefd.rlib: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs

/root/repo/target/release/deps/libdgs_baselines-d0b6a266ba1bfefd.rmeta: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs

crates/baselines/src/lib.rs:
crates/baselines/src/becker.rs:
crates/baselines/src/bk_sparsifier.rs:
crates/baselines/src/eppstein.rs:
crates/baselines/src/indexing.rs:
crates/baselines/src/kogan_krauthgamer.rs:
crates/baselines/src/offline_light.rs:
crates/baselines/src/sfst.rs:
crates/baselines/src/store_all.rs:
