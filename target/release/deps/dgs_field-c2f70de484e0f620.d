/root/repo/target/release/deps/dgs_field-c2f70de484e0f620.d: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs

/root/repo/target/release/deps/libdgs_field-c2f70de484e0f620.rlib: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs

/root/repo/target/release/deps/libdgs_field-c2f70de484e0f620.rmeta: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs

crates/field/src/lib.rs:
crates/field/src/codec.rs:
crates/field/src/fingerprint.rs:
crates/field/src/fp61.rs:
crates/field/src/hash.rs:
crates/field/src/prng.rs:
crates/field/src/seed.rs:
