/root/repo/target/release/deps/dgs_bench-ce0f7a1a4776f30d.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_vc_query.rs crates/bench/src/experiments/e02_indexing.rs crates/bench/src/experiments/e03_estimator.rs crates/bench/src/experiments/e04_hyper_conn.rs crates/bench/src/experiments/e05_skeleton.rs crates/bench/src/experiments/e06_reconstruct.rs crates/bench/src/experiments/e07_lemma16.rs crates/bench/src/experiments/e08_sparsifier.rs crates/bench/src/experiments/e09_sfst.rs crates/bench/src/experiments/e10_scaling.rs crates/bench/src/experiments/e11_ablation.rs crates/bench/src/experiments/e12_eppstein.rs crates/bench/src/experiments/e13_sampler_ablation.rs crates/bench/src/experiments/e14_edge_conn.rs crates/bench/src/experiments/e15_distributed.rs crates/bench/src/experiments/e16_recovery.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/stats.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libdgs_bench-ce0f7a1a4776f30d.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_vc_query.rs crates/bench/src/experiments/e02_indexing.rs crates/bench/src/experiments/e03_estimator.rs crates/bench/src/experiments/e04_hyper_conn.rs crates/bench/src/experiments/e05_skeleton.rs crates/bench/src/experiments/e06_reconstruct.rs crates/bench/src/experiments/e07_lemma16.rs crates/bench/src/experiments/e08_sparsifier.rs crates/bench/src/experiments/e09_sfst.rs crates/bench/src/experiments/e10_scaling.rs crates/bench/src/experiments/e11_ablation.rs crates/bench/src/experiments/e12_eppstein.rs crates/bench/src/experiments/e13_sampler_ablation.rs crates/bench/src/experiments/e14_edge_conn.rs crates/bench/src/experiments/e15_distributed.rs crates/bench/src/experiments/e16_recovery.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/stats.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libdgs_bench-ce0f7a1a4776f30d.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_vc_query.rs crates/bench/src/experiments/e02_indexing.rs crates/bench/src/experiments/e03_estimator.rs crates/bench/src/experiments/e04_hyper_conn.rs crates/bench/src/experiments/e05_skeleton.rs crates/bench/src/experiments/e06_reconstruct.rs crates/bench/src/experiments/e07_lemma16.rs crates/bench/src/experiments/e08_sparsifier.rs crates/bench/src/experiments/e09_sfst.rs crates/bench/src/experiments/e10_scaling.rs crates/bench/src/experiments/e11_ablation.rs crates/bench/src/experiments/e12_eppstein.rs crates/bench/src/experiments/e13_sampler_ablation.rs crates/bench/src/experiments/e14_edge_conn.rs crates/bench/src/experiments/e15_distributed.rs crates/bench/src/experiments/e16_recovery.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/stats.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/e01_vc_query.rs:
crates/bench/src/experiments/e02_indexing.rs:
crates/bench/src/experiments/e03_estimator.rs:
crates/bench/src/experiments/e04_hyper_conn.rs:
crates/bench/src/experiments/e05_skeleton.rs:
crates/bench/src/experiments/e06_reconstruct.rs:
crates/bench/src/experiments/e07_lemma16.rs:
crates/bench/src/experiments/e08_sparsifier.rs:
crates/bench/src/experiments/e09_sfst.rs:
crates/bench/src/experiments/e10_scaling.rs:
crates/bench/src/experiments/e11_ablation.rs:
crates/bench/src/experiments/e12_eppstein.rs:
crates/bench/src/experiments/e13_sampler_ablation.rs:
crates/bench/src/experiments/e14_edge_conn.rs:
crates/bench/src/experiments/e15_distributed.rs:
crates/bench/src/experiments/e16_recovery.rs:
crates/bench/src/microbench.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
crates/bench/src/workloads.rs:
