/root/repo/target/release/deps/dgs-eb6d96d79a8b26e2.d: src/bin/dgs.rs Cargo.toml

/root/repo/target/release/deps/libdgs-eb6d96d79a8b26e2.rmeta: src/bin/dgs.rs Cargo.toml

src/bin/dgs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
