/root/repo/target/release/deps/crash_recovery-c1ed4ee725328d82.d: tests/crash_recovery.rs

/root/repo/target/release/deps/crash_recovery-c1ed4ee725328d82: tests/crash_recovery.rs

tests/crash_recovery.rs:
