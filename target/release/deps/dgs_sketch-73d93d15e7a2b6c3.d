/root/repo/target/release/deps/dgs_sketch-73d93d15e7a2b6c3.d: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs

/root/repo/target/release/deps/libdgs_sketch-73d93d15e7a2b6c3.rlib: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs

/root/repo/target/release/deps/libdgs_sketch-73d93d15e7a2b6c3.rmeta: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs

crates/sketch/src/lib.rs:
crates/sketch/src/error.rs:
crates/sketch/src/l0.rs:
crates/sketch/src/one_sparse.rs:
crates/sketch/src/params.rs:
crates/sketch/src/sparse_recovery.rs:
