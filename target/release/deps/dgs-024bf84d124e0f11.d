/root/repo/target/release/deps/dgs-024bf84d124e0f11.d: src/bin/dgs.rs Cargo.toml

/root/repo/target/release/deps/libdgs-024bf84d124e0f11.rmeta: src/bin/dgs.rs Cargo.toml

src/bin/dgs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
