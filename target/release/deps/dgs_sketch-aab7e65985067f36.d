/root/repo/target/release/deps/dgs_sketch-aab7e65985067f36.d: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs Cargo.toml

/root/repo/target/release/deps/libdgs_sketch-aab7e65985067f36.rmeta: crates/sketch/src/lib.rs crates/sketch/src/error.rs crates/sketch/src/l0.rs crates/sketch/src/one_sparse.rs crates/sketch/src/params.rs crates/sketch/src/sparse_recovery.rs Cargo.toml

crates/sketch/src/lib.rs:
crates/sketch/src/error.rs:
crates/sketch/src/l0.rs:
crates/sketch/src/one_sparse.rs:
crates/sketch/src/params.rs:
crates/sketch/src/sparse_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
