/root/repo/target/release/deps/dgs_connectivity-684a6834d9aecc00.d: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs Cargo.toml

/root/repo/target/release/deps/libdgs_connectivity-684a6834d9aecc00.rmeta: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs Cargo.toml

crates/connectivity/src/lib.rs:
crates/connectivity/src/bipartite.rs:
crates/connectivity/src/forest.rs:
crates/connectivity/src/player.rs:
crates/connectivity/src/skeleton.rs:
crates/connectivity/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
