/root/repo/target/release/deps/dgs_connectivity-dce734a9974f9fd4.d: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs

/root/repo/target/release/deps/libdgs_connectivity-dce734a9974f9fd4.rlib: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs

/root/repo/target/release/deps/libdgs_connectivity-dce734a9974f9fd4.rmeta: crates/connectivity/src/lib.rs crates/connectivity/src/bipartite.rs crates/connectivity/src/forest.rs crates/connectivity/src/player.rs crates/connectivity/src/skeleton.rs crates/connectivity/src/vector.rs

crates/connectivity/src/lib.rs:
crates/connectivity/src/bipartite.rs:
crates/connectivity/src/forest.rs:
crates/connectivity/src/player.rs:
crates/connectivity/src/skeleton.rs:
crates/connectivity/src/vector.rs:
