/root/repo/target/release/deps/dgs-2f4776e0a9a95ed0.d: src/bin/dgs.rs

/root/repo/target/release/deps/dgs-2f4776e0a9a95ed0: src/bin/dgs.rs

src/bin/dgs.rs:
