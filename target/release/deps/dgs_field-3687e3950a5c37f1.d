/root/repo/target/release/deps/dgs_field-3687e3950a5c37f1.d: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs Cargo.toml

/root/repo/target/release/deps/libdgs_field-3687e3950a5c37f1.rmeta: crates/field/src/lib.rs crates/field/src/codec.rs crates/field/src/fingerprint.rs crates/field/src/fp61.rs crates/field/src/hash.rs crates/field/src/prng.rs crates/field/src/seed.rs Cargo.toml

crates/field/src/lib.rs:
crates/field/src/codec.rs:
crates/field/src/fingerprint.rs:
crates/field/src/fp61.rs:
crates/field/src/hash.rs:
crates/field/src/prng.rs:
crates/field/src/seed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
