/root/repo/target/release/deps/crash_recovery-9c13614ec3fd62c7.d: tests/crash_recovery.rs Cargo.toml

/root/repo/target/release/deps/libcrash_recovery-9c13614ec3fd62c7.rmeta: tests/crash_recovery.rs Cargo.toml

tests/crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
