/root/repo/target/release/deps/dgs_core-db00453afb54c404.d: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs

/root/repo/target/release/deps/libdgs_core-db00453afb54c404.rlib: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs

/root/repo/target/release/deps/libdgs_core-db00453afb54c404.rmeta: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs

crates/core/src/lib.rs:
crates/core/src/boost.rs:
crates/core/src/checkpoint.rs:
crates/core/src/edge_conn.rs:
crates/core/src/reconstruct.rs:
crates/core/src/sparsify.rs:
crates/core/src/vertex_conn.rs:
