/root/repo/target/release/deps/dgs_baselines-8c524de44fe25e68.d: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs Cargo.toml

/root/repo/target/release/deps/libdgs_baselines-8c524de44fe25e68.rmeta: crates/baselines/src/lib.rs crates/baselines/src/becker.rs crates/baselines/src/bk_sparsifier.rs crates/baselines/src/eppstein.rs crates/baselines/src/indexing.rs crates/baselines/src/kogan_krauthgamer.rs crates/baselines/src/offline_light.rs crates/baselines/src/sfst.rs crates/baselines/src/store_all.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/becker.rs:
crates/baselines/src/bk_sparsifier.rs:
crates/baselines/src/eppstein.rs:
crates/baselines/src/indexing.rs:
crates/baselines/src/kogan_krauthgamer.rs:
crates/baselines/src/offline_light.rs:
crates/baselines/src/sfst.rs:
crates/baselines/src/store_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
