/root/repo/target/release/deps/distributed_model-4a55c2e5f79ee5cb.d: tests/distributed_model.rs Cargo.toml

/root/repo/target/release/deps/libdistributed_model-4a55c2e5f79ee5cb.rmeta: tests/distributed_model.rs Cargo.toml

tests/distributed_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
