/root/repo/target/release/deps/end_to_end_streams-53761a2d5ec4ae78.d: tests/end_to_end_streams.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end_streams-53761a2d5ec4ae78.rmeta: tests/end_to_end_streams.rs Cargo.toml

tests/end_to_end_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
