/root/repo/target/release/deps/persistence-8f90eb7d16afb574.d: tests/persistence.rs

/root/repo/target/release/deps/persistence-8f90eb7d16afb574: tests/persistence.rs

tests/persistence.rs:
