/root/repo/target/release/deps/rank4_and_multiplicity-8b28cc176db80c17.d: tests/rank4_and_multiplicity.rs

/root/repo/target/release/deps/rank4_and_multiplicity-8b28cc176db80c17: tests/rank4_and_multiplicity.rs

tests/rank4_and_multiplicity.rs:
