/root/repo/target/release/deps/persistence-d8476fe1d29d568e.d: tests/persistence.rs Cargo.toml

/root/repo/target/release/deps/libpersistence-d8476fe1d29d568e.rmeta: tests/persistence.rs Cargo.toml

tests/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
