/root/repo/target/release/deps/dynamic_graph_streams-7969b831ec466180.d: src/lib.rs src/parallel.rs Cargo.toml

/root/repo/target/release/deps/libdynamic_graph_streams-7969b831ec466180.rmeta: src/lib.rs src/parallel.rs Cargo.toml

src/lib.rs:
src/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
