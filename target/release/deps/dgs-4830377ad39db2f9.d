/root/repo/target/release/deps/dgs-4830377ad39db2f9.d: src/bin/dgs.rs

/root/repo/target/release/deps/dgs-4830377ad39db2f9: src/bin/dgs.rs

src/bin/dgs.rs:
