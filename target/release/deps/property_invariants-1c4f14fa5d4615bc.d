/root/repo/target/release/deps/property_invariants-1c4f14fa5d4615bc.d: tests/property_invariants.rs

/root/repo/target/release/deps/property_invariants-1c4f14fa5d4615bc: tests/property_invariants.rs

tests/property_invariants.rs:
