/root/repo/target/release/deps/dynamic_graph_streams-76cf08c7e2675a60.d: src/lib.rs src/parallel.rs

/root/repo/target/release/deps/dynamic_graph_streams-76cf08c7e2675a60: src/lib.rs src/parallel.rs

src/lib.rs:
src/parallel.rs:
