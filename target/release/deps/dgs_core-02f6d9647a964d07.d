/root/repo/target/release/deps/dgs_core-02f6d9647a964d07.d: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs Cargo.toml

/root/repo/target/release/deps/libdgs_core-02f6d9647a964d07.rmeta: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/checkpoint.rs crates/core/src/edge_conn.rs crates/core/src/reconstruct.rs crates/core/src/sparsify.rs crates/core/src/vertex_conn.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/boost.rs:
crates/core/src/checkpoint.rs:
crates/core/src/edge_conn.rs:
crates/core/src/reconstruct.rs:
crates/core/src/sparsify.rs:
crates/core/src/vertex_conn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
