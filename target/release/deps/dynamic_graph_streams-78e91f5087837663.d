/root/repo/target/release/deps/dynamic_graph_streams-78e91f5087837663.d: src/lib.rs src/parallel.rs

/root/repo/target/release/deps/libdynamic_graph_streams-78e91f5087837663.rlib: src/lib.rs src/parallel.rs

/root/repo/target/release/deps/libdynamic_graph_streams-78e91f5087837663.rmeta: src/lib.rs src/parallel.rs

src/lib.rs:
src/parallel.rs:
