/root/repo/target/release/deps/rank4_and_multiplicity-cfb7d37f7bae2553.d: tests/rank4_and_multiplicity.rs Cargo.toml

/root/repo/target/release/deps/librank4_and_multiplicity-cfb7d37f7bae2553.rmeta: tests/rank4_and_multiplicity.rs Cargo.toml

tests/rank4_and_multiplicity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
