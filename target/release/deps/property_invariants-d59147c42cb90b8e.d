/root/repo/target/release/deps/property_invariants-d59147c42cb90b8e.d: tests/property_invariants.rs Cargo.toml

/root/repo/target/release/deps/libproperty_invariants-d59147c42cb90b8e.rmeta: tests/property_invariants.rs Cargo.toml

tests/property_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
