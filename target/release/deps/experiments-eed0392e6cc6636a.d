/root/repo/target/release/deps/experiments-eed0392e6cc6636a.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-eed0392e6cc6636a: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
