/root/repo/target/release/examples/crash_recovery-851714d346282aed.d: examples/crash_recovery.rs

/root/repo/target/release/examples/crash_recovery-851714d346282aed: examples/crash_recovery.rs

examples/crash_recovery.rs:
