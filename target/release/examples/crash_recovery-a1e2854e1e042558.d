/root/repo/target/release/examples/crash_recovery-a1e2854e1e042558.d: examples/crash_recovery.rs Cargo.toml

/root/repo/target/release/examples/libcrash_recovery-a1e2854e1e042558.rmeta: examples/crash_recovery.rs Cargo.toml

examples/crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
