/root/repo/target/release/examples/verify_scratch-89c3dfc1a4bfd7ca.d: examples/verify_scratch.rs

/root/repo/target/release/examples/verify_scratch-89c3dfc1a4bfd7ca: examples/verify_scratch.rs

examples/verify_scratch.rs:
