/root/repo/target/release/examples/network_resilience-de0cd39342fd15c8.d: examples/network_resilience.rs Cargo.toml

/root/repo/target/release/examples/libnetwork_resilience-de0cd39342fd15c8.rmeta: examples/network_resilience.rs Cargo.toml

examples/network_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
