/root/repo/target/release/examples/distributed_players-fcc02feee02dbb9f.d: examples/distributed_players.rs Cargo.toml

/root/repo/target/release/examples/libdistributed_players-fcc02feee02dbb9f.rmeta: examples/distributed_players.rs Cargo.toml

examples/distributed_players.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
