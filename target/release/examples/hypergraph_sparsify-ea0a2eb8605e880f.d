/root/repo/target/release/examples/hypergraph_sparsify-ea0a2eb8605e880f.d: examples/hypergraph_sparsify.rs

/root/repo/target/release/examples/hypergraph_sparsify-ea0a2eb8605e880f: examples/hypergraph_sparsify.rs

examples/hypergraph_sparsify.rs:
