/root/repo/target/release/examples/distributed_players-32cd60329161e73e.d: examples/distributed_players.rs

/root/repo/target/release/examples/distributed_players-32cd60329161e73e: examples/distributed_players.rs

examples/distributed_players.rs:
