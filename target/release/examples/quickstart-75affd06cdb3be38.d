/root/repo/target/release/examples/quickstart-75affd06cdb3be38.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-75affd06cdb3be38.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
