/root/repo/target/release/examples/network_resilience-45e13ce04c14f4c3.d: examples/network_resilience.rs

/root/repo/target/release/examples/network_resilience-45e13ce04c14f4c3: examples/network_resilience.rs

examples/network_resilience.rs:
