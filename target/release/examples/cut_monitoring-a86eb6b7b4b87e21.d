/root/repo/target/release/examples/cut_monitoring-a86eb6b7b4b87e21.d: examples/cut_monitoring.rs

/root/repo/target/release/examples/cut_monitoring-a86eb6b7b4b87e21: examples/cut_monitoring.rs

examples/cut_monitoring.rs:
