/root/repo/target/release/examples/hypergraph_sparsify-a87a4a13996eb2c7.d: examples/hypergraph_sparsify.rs Cargo.toml

/root/repo/target/release/examples/libhypergraph_sparsify-a87a4a13996eb2c7.rmeta: examples/hypergraph_sparsify.rs Cargo.toml

examples/hypergraph_sparsify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
