/root/repo/target/release/examples/quickstart-716af1f25822dbf7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-716af1f25822dbf7: examples/quickstart.rs

examples/quickstart.rs:
