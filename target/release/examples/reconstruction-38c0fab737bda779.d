/root/repo/target/release/examples/reconstruction-38c0fab737bda779.d: examples/reconstruction.rs Cargo.toml

/root/repo/target/release/examples/libreconstruction-38c0fab737bda779.rmeta: examples/reconstruction.rs Cargo.toml

examples/reconstruction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
