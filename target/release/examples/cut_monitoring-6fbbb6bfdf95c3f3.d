/root/repo/target/release/examples/cut_monitoring-6fbbb6bfdf95c3f3.d: examples/cut_monitoring.rs Cargo.toml

/root/repo/target/release/examples/libcut_monitoring-6fbbb6bfdf95c3f3.rmeta: examples/cut_monitoring.rs Cargo.toml

examples/cut_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
