/root/repo/target/release/examples/reconstruction-1c4f44da596bd010.d: examples/reconstruction.rs

/root/repo/target/release/examples/reconstruction-1c4f44da596bd010: examples/reconstruction.rs

examples/reconstruction.rs:
