//! The serving layer: a long-running multi-tenant [`ConnectivityService`]
//! answering queries off epoch-tagged frozen views while ingest never
//! stops, with every form of overload surfacing as a *typed* verdict.
//!
//! The walkthrough registers two tenants, streams churn into both, and
//! then works down the overload ladder:
//!
//! 1. queries answer at the frozen epoch while newer updates keep landing;
//! 2. a majority-vote burst exhausts the tenant's token bucket — the
//!    excess gets `Overload::QuotaExhausted { retry_after }`, never a
//!    silent drop;
//! 3. a poisoned shard degrades the ensemble — later answers are
//!    `Degraded { effective_delta = δ^R′ }`: confidence widens, the value
//!    stays correct;
//! 4. the per-tenant metrics expose the whole story.
//!
//! ```sh
//! cargo run --release --example service
//! ```

use std::fs;
use std::time::Duration;

use dynamic_graph_streams::prelude::*;

use dgs_hypergraph::generators;
use dgs_obs::Registry;
use dgs_sketch::SketchError;

fn main() {
    let n = 32;
    let base = std::env::temp_dir().join(format!("dgs-example-service-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);

    let registry = Registry::new();
    let svc: ConnectivityService<SpanningForestSketch> = ConnectivityService::with_sink(
        ServiceConfig {
            queue_capacity: 4,
            // A small bucket so the burst below visibly exhausts it.
            quota: TokenBucketConfig {
                capacity: 9.0,
                refill_per_sec: 50.0,
            },
            default_deadline: Duration::from_millis(250),
            refresh_interval: 64,
            // Keep the poisoned shard out of later views: this example
            // wants to *show* honest degradation, not heal it away.
            recover_views: false,
            ..ServiceConfig::default()
        },
        &registry.sink(),
    );

    // --- Two tenants, isolated ingest and admission state ----------------
    for (tenant, seed) in [("alpha", 100u64), ("beta", 200u64)] {
        svc.add_tenant(
            tenant,
            base.join(tenant).join("wal"),
            base.join(tenant).join("snapshots"),
            n,
            2,
            SupervisorConfig {
                repetitions: 3,
                threads: 2,
                batch_size: 32,
                seed,
                // Disable the automatic WAL rebuild: self-healing would
                // resurrect the shard we poison below within one flush
                // (that story is examples/chaos.rs); here the quarantine
                // must *stick* so degradation stays visible.
                rebuild_after_flushes: u64::MAX,
                ..SupervisorConfig::default()
            },
            move |i| {
                let space = EdgeSpace::graph(n).unwrap();
                let params = ForestParams::new(Profile::Practical, space.dimension());
                SpanningForestSketch::new_full(space, &SeedTree::new(seed).child(i as u64), params)
            },
        )
        .expect("add tenant");
    }
    println!("tenants: {:?}", svc.tenants());

    let mut rng = StdRng::seed_from_u64(7);
    let h = Hypergraph::from_graph(&generators::gnp(n, 0.15, &mut rng));
    let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
    println!(
        "workload: {} updates ({}% deletions) per tenant\n",
        stream.len(),
        (stream.deletion_fraction() * 100.0).round()
    );

    // --- 1. Frozen-epoch serving: ingest never stops for a query ---------
    let half = stream.len() / 2;
    for u in &stream.updates[..half] {
        svc.push("alpha", u).expect("push");
    }
    svc.flush("alpha").expect("flush");
    let epoch = svc.refresh_view("alpha").expect("refresh");
    for u in &stream.updates[half..] {
        svc.push("alpha", u).expect("push");
    }
    let resp = svc
        .query("alpha", &QueryRequest::default(), |_, s| {
            s.try_component_count()
        })
        .expect("query");
    println!(
        "frozen-epoch query: answered at epoch {} (ingested {}), latency {:?}",
        resp.epoch,
        svc.ingested("alpha").expect("ingested"),
        resp.latency
    );
    // The push path auto-refreshes whenever the view lags by
    // `refresh_interval`, so the answer's epoch rides behind ingest by
    // less than one interval — and never before the manual refresh point.
    assert!(resp.epoch >= epoch);

    // --- 2. A majority-vote burst hits the token bucket -------------------
    let majority = QueryRequest {
        policy: QueryPolicy::Majority,
        ..QueryRequest::default()
    };
    let (mut admitted, mut shed) = (0u32, 0u32);
    for _ in 0..12 {
        match svc.query("alpha", &majority, |_, s| s.try_component_count()) {
            Ok(_) => admitted += 1,
            Err(ServiceError::Overload(Overload::QuotaExhausted { retry_after })) => {
                shed += 1;
                if shed == 1 {
                    println!(
                        "burst: quota exhausted — typed rejection with retry_after {retry_after:?}"
                    );
                }
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    println!("burst: {admitted} admitted, {shed} shed (every rejection typed)\n");

    // --- 3. Degradation is honest: δ widens, the value holds --------------
    svc.with_ingestor("alpha", |ing| {
        ing.inject_apply_fault(
            0,
            SketchError::failure("example", "poisoned shard"),
            u32::MAX,
        );
    })
    .expect("chaos hook");
    // The fault fires on the apply path, so stream more churn until the
    // supervisor quarantines the shard (insert + delete pairs leave the
    // graph unchanged — only the shard's health differs).
    for u in &stream.updates[..64] {
        svc.push("alpha", u).expect("push");
        svc.push(
            "alpha",
            &match u.op {
                Op::Insert => Update::delete(u.edge.clone()),
                Op::Delete => Update::insert(u.edge.clone()),
            },
        )
        .expect("push inverse");
    }
    svc.flush("alpha").expect("flush");
    svc.refresh_view("alpha").expect("refresh degraded view");
    std::thread::sleep(Duration::from_millis(100)); // let the bucket refill
    match svc.query("alpha", &majority, |_, s| s.try_component_count()) {
        Ok(resp) => match resp.answer {
            SupervisedAnswer::Degraded {
                value,
                healthy_repetitions,
                total_repetitions,
                effective_delta,
                ..
            } => println!(
                "degraded answer: {value} from {healthy_repetitions}/{total_repetitions} \
                 repetitions (effective delta {effective_delta})"
            ),
            other => println!("answer: {other:?}"),
        },
        Err(e) => println!("query shed: {e}"),
    }

    // --- 4. Tenant isolation + the metrics tell the story -----------------
    svc.ingest_stream("beta", &stream).expect("beta ingest");
    let beta = svc
        .query("beta", &majority, |_, s| s.try_component_count())
        .expect("beta query");
    println!(
        "tenant beta unaffected: {:?} at epoch {}\n",
        beta.answer.value(),
        beta.epoch
    );

    for key in [
        "dgs_core_service_admitted{tenant=\"alpha\"}",
        "dgs_core_service_rejected_quota{tenant=\"alpha\"}",
        "dgs_core_service_answers_degraded{tenant=\"alpha\"}",
        "dgs_core_service_view_refreshes{tenant=\"alpha\"}",
        "dgs_core_service_admitted{tenant=\"beta\"}",
    ] {
        println!("{key} = {}", registry.counter_value(key).unwrap_or(0));
    }

    let _ = fs::remove_dir_all(&base);
    println!("\nok: overload is typed, degradation is honest, ingest never stopped");
}
