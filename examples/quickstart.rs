//! Quickstart: sketch a dynamic graph stream and answer connectivity and
//! vertex-connectivity questions from the sketch alone.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dynamic_graph_streams::prelude::*;

fn main() {
    // --- The input: a dynamic stream over n vertices ----------------------
    // We build a wheel graph (hub 0 + cycle 1..n-1), then churn it: insert
    // noise edges and delete them again. Only the *final* graph matters to
    // any linear sketch.
    let n = 32;
    let mut final_graph = Graph::new(n);
    for v in 1..n as u32 {
        final_graph.add_edge(0, v);
        let next = if v as usize == n - 1 { 1 } else { v + 1 };
        final_graph.add_edge(v, next);
    }
    let hyper = Hypergraph::from_graph(&final_graph);
    let mut rng = StdRng::seed_from_u64(7);
    let stream = dgs_hypergraph::generators::churn_stream(
        &hyper,
        dgs_hypergraph::generators::ChurnConfig {
            noise_ratio: 1.0,
            churn_ratio: 0.3,
        },
        &mut rng,
    );
    println!(
        "stream: {} updates ({:.0}% deletions) over n = {n} vertices, final m = {}",
        stream.len(),
        100.0 * stream.deletion_fraction(),
        hyper.edge_count()
    );

    // --- Sketch 1: spanning forest / connectivity (Theorem 2) -------------
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let mut forest = SpanningForestSketch::new_full(space.clone(), &SeedTree::new(1), params);
    for u in &stream.updates {
        forest.update(&u.edge, u.op.delta());
    }
    let tree = forest.decode();
    println!(
        "forest sketch: {} bytes, decoded {} tree edges, connected = {}",
        forest.size_bytes(),
        tree.len(),
        forest.is_connected()
    );

    // --- Sketch 2: vertex-connectivity queries (Theorem 4) ----------------
    // A wheel has κ = 3; removing any hub-adjacent triple {hub, v-1, v+1}
    // disconnects v. Query the sketch with and without the hub.
    let k = 3;
    let cfg = VertexConnConfig::query(k, n, 2.0, Profile::Practical);
    let mut vc = VertexConnSketch::new(space, cfg, &SeedTree::new(2));
    for u in &stream.updates {
        vc.update(&u.edge, u.op.delta());
    }
    let cert = vc.certificate();
    let cut = [0u32, 4, 6]; // hub + the two cycle neighbors of vertex 5
    println!(
        "vertex-conn sketch: {} bytes (R = {} subgraphs)",
        vc.size_bytes(),
        vc.config().subgraphs
    );
    println!(
        "  does removing {{0, 4, 6}} disconnect?  sketch says {}",
        cert.disconnects(&cut)
    );
    println!(
        "  does removing {{4, 6}} disconnect?     sketch says {}",
        cert.disconnects(&cut[1..])
    );
    println!(
        "  decoded κ(H) = {} (true κ = 3)",
        cert.vertex_connectivity(6)
    );
}
