//! End-to-end request tracing: every query against a traced
//! [`ConnectivityService`] opens a root span, the phases it passes
//! through (admission, decode, per-shard consultation) nest under it in
//! lock-free per-thread rings, and two consumers read the stream back:
//!
//! 1. the **flight recorder** — a typed failure (here an honest
//!    `DeadlineExceeded`) freezes the recent trace window plus the
//!    offending request's span tree into a checksum-framed postmortem
//!    file, readable offline via `experiments obs-report --postmortem`;
//! 2. the **SLO engine** — per-tenant latency/availability objectives
//!    evaluated from the very histograms the service already exports,
//!    with multi-window burn rates driving an ok → warn → page ladder.
//!
//! ```sh
//! cargo run --release --example request_tracing
//! ```

use std::fs;
use std::time::Duration;

use dynamic_graph_streams::prelude::*;

use dgs_core::slo::{SloConfig, SloEngine};
use dgs_hypergraph::generators;
use dgs_obs::Registry;
use dgs_sketch::SketchError;
use dgs_trace::{FlightRecorder, Postmortem, Tracer};

fn main() {
    let n = 32;
    let base = std::env::temp_dir().join(format!("dgs-example-trace-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);

    // --- A traced service: tracer + flight recorder installed up front ---
    let registry = Registry::new();
    let tracer = Tracer::with_sink(4096, &registry.sink());
    let recorder =
        FlightRecorder::with_sink(base.join("postmortems"), &tracer, 32, &registry.sink())
            .expect("postmortem dir");
    let svc: ConnectivityService<SpanningForestSketch> = ConnectivityService::with_sink(
        ServiceConfig {
            default_deadline: Duration::from_millis(250),
            refresh_interval: 64,
            ..ServiceConfig::default()
        },
        &registry.sink(),
    );
    svc.set_tracer(&tracer);
    svc.set_flight_recorder(&recorder);

    let seed = 42u64;
    svc.add_tenant(
        "alpha",
        base.join("wal"),
        base.join("snapshots"),
        n,
        2,
        SupervisorConfig {
            repetitions: 3,
            threads: 2,
            batch_size: 32,
            seed,
            ..SupervisorConfig::default()
        },
        move |i| {
            let space = EdgeSpace::graph(n).unwrap();
            let params = ForestParams::new(Profile::Practical, space.dimension());
            SpanningForestSketch::new_full(space, &SeedTree::new(seed).child(i as u64), params)
        },
    )
    .expect("add tenant");

    let mut rng = StdRng::seed_from_u64(7);
    let h = Hypergraph::from_graph(&generators::gnp(n, 0.15, &mut rng));
    let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
    svc.ingest_stream("alpha", &stream).expect("ingest");
    svc.refresh_view("alpha").expect("refresh");

    // --- 1. A healthy query, and the span tree it left behind -------------
    let resp = svc
        .query("alpha", &QueryRequest::default(), |_, s| {
            s.try_component_count()
        })
        .expect("query");
    println!(
        "query answered: {:?} at epoch {} in {:?}",
        resp.answer.value(),
        resp.epoch,
        resp.latency
    );
    let snap = tracer.snapshot();
    let last_root = snap.roots().last().map(|r| r.trace_id).expect("a root");
    println!("\nspan tree of the last request:");
    print!("{}", snap.render_tree(last_root));

    // --- 2. A typed failure freezes a postmortem --------------------------
    // A decode that outlives the deadline: the service answers with an
    // honest DeadlineExceeded, and the flight recorder freezes the trace.
    let tight = QueryRequest {
        deadline: Some(Duration::from_millis(20)),
        ..QueryRequest::default()
    };
    let resp = svc
        .query("alpha", &tight, |_, s| {
            std::thread::sleep(Duration::from_millis(40));
            let _ = s.try_component_count(); // too late to count
            Err::<usize, _>(SketchError::failure("example", "stalled decode"))
        })
        .expect("query");
    println!("\nstalled query answered honestly: {:?}", resp.answer);
    println!("postmortems written: {}", recorder.written());
    let pm_file = fs::read_dir(recorder.dir())
        .expect("postmortem dir")
        .map(|e| e.expect("entry").path())
        .next()
        .expect("a postmortem file");
    let pm = Postmortem::read(&pm_file).expect("checksum-framed read");
    println!("\n{}", pm.render());

    // --- 3. The SLO engine reads the same histograms ----------------------
    // Logical time is supplied by the caller, so burn windows are exact
    // and testable; a real deployment ticks this from its clock.
    let mut engine = SloEngine::new(SloConfig::default(), &registry.sink());
    for minute in 1..=3u64 {
        for report in engine.evaluate(&registry, Duration::from_secs(60 * minute)) {
            println!(
                "slo[{}] tenant={} state={} burn_short={:.2} burn_long={:.2} ({}/{} good)",
                report.slo,
                report.tenant,
                report.state,
                report.burn_short,
                report.burn_long,
                report.good,
                report.total
            );
        }
    }
    println!(
        "\nexported: dgs_core_slo_state{{slo=\"latency\",tenant=\"alpha\"}} = {}",
        registry
            .gauge_value("dgs_core_slo_state{slo=\"latency\",tenant=\"alpha\"}")
            .unwrap_or(-1)
    );

    let _ = fs::remove_dir_all(&base);
    println!("\nok: every request traced, every typed failure frozen, SLOs burn-rate scored");
}
