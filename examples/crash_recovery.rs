//! Crash-safe ingestion: write-ahead logging, checksummed snapshots, and
//! exact recovery.
//!
//! Linearity makes recovery *exact* — a snapshot of the sketch plus a
//! replay of the logged tail is bit-identical to never having crashed.
//! This example ingests a churn stream, kills the process state mid-stream
//! (twice, the second time also tearing the log's tail the way a power
//! loss would), recovers, finishes the stream, and shows the final
//! connectivity answer agreeing with an uninterrupted run.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use std::fs;

use dynamic_graph_streams::prelude::*;

use dgs_hypergraph::fault::truncated;
use dgs_hypergraph::generators;

fn fresh_sketch(n: usize) -> SpanningForestSketch {
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    SpanningForestSketch::new_full(space, &SeedTree::new(42), params)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 40;
    let h = Hypergraph::from_graph(&generators::gnp(n, 0.12, &mut rng));
    let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
    println!(
        "workload: {} updates ({}% deletions) over {} vertices",
        stream.len(),
        (stream.deletion_fraction() * 100.0).round(),
        n
    );

    let base = std::env::temp_dir().join(format!("dgs-example-crash-{}", std::process::id()));
    let wal_dir = base.join("wal");
    let snap_dir = base.join("snapshots");
    let _ = fs::remove_dir_all(&base);
    let cfg = CheckpointConfig {
        wal: WalConfig {
            segment_records: 256,
            seed: 0xD1CE,
        },
        snapshot_interval: 200,
        snapshot_seed: 42,
    };

    // --- Phase 1: ingest under durability, then "crash" -------------------
    let crash_1 = stream.len() / 3;
    let mut ing = CheckpointedIngestor::create(
        &wal_dir,
        &snap_dir,
        n,
        stream.max_rank,
        cfg,
        fresh_sketch(n),
    )
    .expect("create durable ingestor");
    for u in &stream.updates[..crash_1] {
        ing.ingest(u).expect("ingest");
    }
    println!("\n-- crash #1 at update {crash_1} (process killed, no shutdown) --");
    drop(ing);

    // --- Phase 2: recover, continue, crash again with a torn WAL tail -----
    let (mut ing, rec) = CheckpointedIngestor::<SpanningForestSketch>::resume(
        &wal_dir,
        &snap_dir,
        n,
        stream.max_rank,
        cfg,
        |_, _| fresh_sketch(n),
    )
    .expect("recover after crash #1");
    println!(
        "recovered to offset {} (snapshot at {:?}, {} records replayed)",
        rec.offset, rec.from_snapshot, rec.replayed
    );
    assert_eq!(rec.offset as usize, crash_1);

    let crash_2 = 2 * stream.len() / 3;
    for u in &stream.updates[crash_1..crash_2] {
        ing.ingest(u).expect("ingest");
    }
    drop(ing);
    // A power loss mid-write: shear bytes off the active segment.
    let seg = fs::read_dir(&wal_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .max()
        .expect("at least one segment");
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, truncated(&bytes, bytes.len().saturating_sub(7))).unwrap();
    println!("\n-- crash #2 at update {crash_2}, last WAL frame torn --");

    // --- Phase 3: recover past the torn tail and finish -------------------
    let (mut ing, rec) = CheckpointedIngestor::<SpanningForestSketch>::resume(
        &wal_dir,
        &snap_dir,
        n,
        stream.max_rank,
        cfg,
        |_, _| fresh_sketch(n),
    )
    .expect("recover after crash #2");
    let resume_at = rec.offset as usize;
    println!(
        "recovered to offset {} ({} torn record(s) discarded from the log tail)",
        rec.offset,
        crash_2 - resume_at
    );
    assert!(resume_at <= crash_2, "never recover records that were torn");
    for u in &stream.updates[resume_at..] {
        ing.ingest(u).expect("ingest");
    }

    // --- Equivalence with a run that never crashed ------------------------
    let mut uninterrupted = fresh_sketch(n);
    for u in &stream.updates {
        uninterrupted.update(&u.edge, u.op.delta());
    }
    let a = ing.sketch().try_component_count();
    let b = uninterrupted.try_component_count();
    println!(
        "\ncomponents: recovered run = {:?}, uninterrupted run = {:?}",
        a, b
    );
    assert_eq!(a.ok(), b.ok(), "recovery must not change any answer");

    // Recovery over damaged state is typed, never a panic: nuke a sealed
    // segment and watch the error come back as a value.
    let first_seg = wal_dir.join("seg-00000000.wal");
    let bytes = fs::read(&first_seg).unwrap();
    fs::write(&first_seg, &bytes[..bytes.len() / 2]).unwrap();
    match read_wal(&wal_dir) {
        Err(WalError::Corrupt { segment, detail }) => {
            println!("sealed-segment damage detected (segment {segment}): {detail}");
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    let _ = fs::remove_dir_all(&base);
    println!("\nok: crash-recovery round trips are exact");
}
