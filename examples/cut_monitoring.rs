//! Edge-cut and structure monitoring from sketches — the AGM-style
//! substrate the paper builds on (Section 1.1's "success story"), extended
//! here to hypergraphs: `min(λ, k)` edge connectivity with a cut witness,
//! plus bipartiteness via the double cover.
//!
//! ```sh
//! cargo run --release --example cut_monitoring
//! ```

use dynamic_graph_streams::connectivity::BipartitenessSketch;
use dynamic_graph_streams::core::EdgeConnSketch;
use dynamic_graph_streams::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);

    // --- Edge connectivity of a datacenter fabric under churn ------------
    // Two pods joined by 3 uplinks; λ = 3 exactly.
    let (g, _) = dgs_hypergraph::generators::planted_edge_cut(10, 10, 3, 0.85, &mut rng);
    let h = Hypergraph::from_graph(&g);
    let n = g.n();
    println!("fabric: {} links across {} switches", g.edge_count(), n);

    let k = 6;
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let mut ec = EdgeConnSketch::new(space, k, &SeedTree::new(1), params);
    let stream = dgs_hypergraph::generators::churn_stream(
        &h,
        dgs_hypergraph::generators::ChurnConfig::default(),
        &mut rng,
    );
    for u in &stream.updates {
        ec.update(&u.edge, u.op.delta());
    }
    let (lambda, side) = ec.edge_connectivity();
    println!(
        "edge-connectivity sketch ({} bytes): min(λ, {k}) = {lambda}",
        ec.size_bytes()
    );
    println!(
        "witness cut isolates {{{}}} switches and is crossed by {} links (exact)",
        side.iter().filter(|&&b| b).count(),
        h.cut_size(&side)
    );
    println!("k-edge-connected for k = {k}? {}", ec.is_k_edge_connected());

    // --- Bipartiteness of an interaction graph ---------------------------
    // A user-item interaction graph should be bipartite; a glitch inserts a
    // user-user edge, which is later removed.
    let users = 8;
    let items = 8;
    let gb = dgs_hypergraph::generators::random_bipartite(users, items, 0.4, &mut rng);
    let nb = gb.n();
    let params_b = ForestParams::new(
        Profile::Practical,
        EdgeSpace::graph(2 * nb).unwrap().dimension(),
    );
    let mut bp = BipartitenessSketch::new(nb, &SeedTree::new(2), params_b);
    for (u, v) in gb.edges() {
        bp.update(u, v, 1);
    }
    println!("\ninteraction graph: bipartite = {}", bp.is_bipartite());

    // The glitch: a user-user edge that closes an odd cycle via two items...
    // any user-user edge between users sharing an item does.
    bp.update(0, 1, 1);
    let after_glitch = bp.is_bipartite();
    println!("after glitch edge (user0, user1): bipartite = {after_glitch}");

    bp.update(0, 1, -1);
    println!("after rollback: bipartite = {}", bp.is_bipartite());
    println!(
        "odd components now: {} (sketch size {} bytes)",
        bp.odd_components(),
        bp.size_bytes()
    );
}
