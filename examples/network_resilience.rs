//! Network resilience monitoring — the paper's vertex-connectivity
//! motivation on a realistic scenario.
//!
//! A backbone network (two regional meshes joined through a small set of
//! gateway routers) evolves under link churn: links flap (delete +
//! re-insert) and provisional links are torn down. An operator keeps only
//! the Theorem 4 sketch and, after the churn, asks: *which small sets of
//! routers are single points of failure?*
//!
//! ```sh
//! cargo run --release --example network_resilience
//! ```

use dynamic_graph_streams::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2025);

    // Topology: region A = routers 0..10, gateways = 10..12, region B = 12..22.
    // The planted separator generator gives exactly κ = 2 (the gateways).
    let (a, s, b) = (10, 2, 10);
    let g = dgs_hypergraph::generators::planted_separator(a, b, s);
    let n = g.n();
    let gateways: Vec<u32> = (a as u32..(a + s) as u32).collect();
    let h = Hypergraph::from_graph(&g);

    // Link churn: 80% of links flap at least once; provisional links appear
    // and are torn down.
    let stream = dgs_hypergraph::generators::churn_stream(
        &h,
        dgs_hypergraph::generators::ChurnConfig {
            noise_ratio: 0.8,
            churn_ratio: 0.8,
        },
        &mut rng,
    );
    println!(
        "telemetry: {} link events ({:.0}% teardowns) across {} routers",
        stream.len(),
        100.0 * stream.deletion_fraction(),
        n
    );

    // The operator's only state: the Theorem 4 sketch for k = 2.
    let k = s;
    let space = EdgeSpace::graph(n).unwrap();
    let cfg = VertexConnConfig::query(k, n, 2.0, Profile::Practical);
    let mut sketch = VertexConnSketch::new(space, cfg, &SeedTree::new(0xBEEF));
    for u in &stream.updates {
        sketch.update(&u.edge, u.op.delta());
    }
    println!(
        "sketch: {} bytes, {} sampled subgraphs\n",
        sketch.size_bytes(),
        sketch.config().subgraphs
    );

    // Post-churn audit: decode once, then scan all router pairs.
    let cert = sketch.certificate();
    println!(
        "auditing all {} router pairs for 2-cuts...",
        n * (n - 1) / 2
    );
    let mut cuts = Vec::new();
    for x in 0..n as u32 {
        for y in (x + 1)..n as u32 {
            if cert.disconnects(&[x, y]) {
                cuts.push((x, y));
            }
        }
    }
    println!("critical pairs found: {cuts:?}");
    assert_eq!(
        cuts,
        vec![(gateways[0], gateways[1])],
        "expected exactly the gateway pair"
    );
    println!(
        "=> the gateway pair {{{}, {}}} is the unique single point of failure (true κ = {k})",
        gateways[0], gateways[1]
    );

    // Cross-check one answer against ground truth.
    let truth = dgs_hypergraph::algo::vertex_conn::disconnects(&g, &[gateways[0], gateways[1]]);
    println!("ground truth agrees: {truth}");
}
