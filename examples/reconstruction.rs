//! Reconstructing a cut-degenerate graph from per-vertex sketches
//! (Section 4, Theorem 15) — including the Lemma 10 gadget that defeats
//! degeneracy-based reconstruction.
//!
//! ```sh
//! cargo run --release --example reconstruction
//! ```

use dynamic_graph_streams::prelude::*;

fn reconstruct_and_report(name: &str, h: &Hypergraph, k: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let space = EdgeSpace::new(h.n(), h.max_rank().max(2)).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let mut sk = LightRecoverySketch::new(space, k, &SeedTree::new(seed), params);

    // Drive a dynamic stream with deletions.
    let stream = dgs_hypergraph::generators::churn_stream(
        h,
        dgs_hypergraph::generators::ChurnConfig::default(),
        &mut rng,
    );
    for u in &stream.updates {
        sk.update(&u.edge, u.op.delta());
    }

    match sk.reconstruct() {
        Some(rec) => {
            let exact =
                rec.edge_count() == h.edge_count() && h.edges().iter().all(|e| rec.has_edge(e));
            println!(
                "{name:>18}: reconstructed {} / {} edges from {} bytes/player — exact: {exact}",
                rec.edge_count(),
                h.edge_count(),
                sk.max_player_message_bytes()
            );
        }
        None => {
            let rec = sk.recover();
            println!(
                "{name:>18}: NOT {k}-cut-degenerate — recovered light_{k} = {} of {} edges",
                rec.edge_count(),
                h.edge_count()
            );
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    println!("Theorem 15: reconstruct k-cut-degenerate (hyper)graphs from O(k polylog n)-size");
    println!("vertex-based sketches; recover light_k otherwise.\n");

    // 1-cut-degenerate: a random tree.
    let tree = Hypergraph::from_graph(&dgs_hypergraph::generators::random_tree(24, &mut rng));
    reconstruct_and_report("random tree", &tree, 1, 1);

    // 2-cut-degenerate: a grid.
    let grid = Hypergraph::from_graph(&dgs_hypergraph::generators::grid(5, 4));
    reconstruct_and_report("5x4 grid", &grid, 2, 2);

    // The Lemma 10 gadget: 2-cut-degenerate but minimum degree 3 — the
    // d-degenerate method of Becker et al. with d = 2 does not apply, yet
    // Theorem 15 reconstructs it with k = 2.
    let gadget = Hypergraph::from_graph(&dgs_hypergraph::generators::lemma10_gadget());
    let deg = dgs_hypergraph::algo::degeneracy(&gadget);
    let cut_deg = dgs_hypergraph::algo::cut_degeneracy(&gadget);
    println!("\nlemma-10 gadget: degeneracy = {deg}, cut-degeneracy = {cut_deg}");
    reconstruct_and_report("lemma-10 gadget", &gadget, 2, 3);

    // A hypergraph chain (1-cut-degenerate, rank 3).
    let chain = Hypergraph::from_edges(
        11,
        (0..5).map(|i| HyperEdge::new(vec![2 * i, 2 * i + 1, 2 * i + 2]).unwrap()),
    );
    reconstruct_and_report("hyperedge chain", &chain, 1, 4);

    // Not cut-degenerate enough: a clique core — only the pendant fringe is
    // light, and the sketch says so instead of fabricating edges.
    let mut g = Graph::new(10);
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            g.add_edge(u, v);
        }
    }
    for i in 6..10u32 {
        g.add_edge(i, i - 6);
    }
    let core = Hypergraph::from_graph(&g);
    println!();
    reconstruct_and_report("K6 + pendants", &core, 2, 5);
}
