//! The simultaneous communication model of Becker et al. (Section 2):
//! n players, each holding one vertex's incident hyperedges, send a single
//! message to a referee who decides connectivity.
//!
//! Because the paper's sketches are *vertex-based*, each player computes
//! its message locally; the referee's reassembled sketch is bit-identical
//! to a centrally built one. This drives the whole pipeline and prints the
//! per-player message size — the quantity the model minimizes.
//!
//! ```sh
//! cargo run --release --example distributed_players
//! ```

use dynamic_graph_streams::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 20;

    // A mixed-rank collaboration hypergraph.
    let h = dgs_hypergraph::generators::random_mixed_hypergraph(n, 3, 18, &mut rng);
    println!(
        "input: {} hyperedges over {} players, exact components = {}",
        h.edge_count(),
        n,
        dgs_hypergraph::algo::hyper_component_count(&h)
    );

    // Public randomness: every player derives the same seed tree.
    let public_seed = SeedTree::new(0xF00D);
    let space = EdgeSpace::new(n, 3).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());

    // Each player sees ONLY its incident hyperedges and builds its message.
    let mut messages = Vec::new();
    let mut max_msg = 0;
    for v in 0..n as u32 {
        let incident: Vec<HyperEdge> = h
            .edges()
            .iter()
            .filter(|e| e.contains(v))
            .cloned()
            .collect();
        let msg = player_sketch(&space, v, &incident, &public_seed, params);
        max_msg = max_msg.max(msg.size_bytes());
        messages.push(msg);
    }
    println!(
        "players sent {} messages, max message = {} bytes ({} total)",
        messages.len(),
        max_msg,
        messages.iter().map(|m| m.size_bytes()).sum::<usize>()
    );

    // The referee reassembles and decodes.
    let referee = assemble_players(&space, messages, &public_seed, params);
    let (spanning, labels) = referee.decode_with_labels();
    println!(
        "referee: decoded spanning structure with {} hyperedges, {} components",
        spanning.len(),
        labels.component_count()
    );

    // Sanity: identical to the centralized sketch.
    let mut central = SpanningForestSketch::new_full(space, &public_seed, params);
    for e in h.edges() {
        central.update(e, 1);
    }
    assert_eq!(central.decode(), spanning);
    println!("referee's decode == centralized decode (bit-identical sketch states)");
}
