//! Self-healing sharded ingestion: shard supervision, quarantine and
//! rebuild, degraded queries, and a deterministic chaos campaign.
//!
//! A [`SupervisedIngestor`] runs R boosted repetitions as independent
//! failure domains. This example poisons one shard mid-stream, lets a
//! second diverge *silently* (no typed error will ever fire), and shows
//! the degradation ladder at work: the poisoned shard is quarantined and
//! rebuilt bit-identically from the WAL, the diverged shard is outvoted
//! by a majority query and healed by the background scrub, and every
//! answer along the way is either exact or an explicit `Unknown` — a
//! degraded ensemble widens the failure probability, never the answer.
//!
//! ```sh
//! cargo run --release --example self_healing
//! ```

use std::fs;

use dynamic_graph_streams::prelude::*;

use dgs_hypergraph::generators;
use dgs_obs::Registry;

fn main() {
    let mut rng = StdRng::seed_from_u64(20);
    let n = 32;
    let h = Hypergraph::from_graph(&generators::gnp(n, 0.15, &mut rng));
    let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
    println!(
        "workload: {} updates ({}% deletions) over {} vertices",
        stream.len(),
        (stream.deletion_fraction() * 100.0).round(),
        n
    );

    let base = std::env::temp_dir().join(format!("dgs-example-heal-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let cfg = SupervisorConfig {
        repetitions: 3,
        threads: 2,
        batch_size: 32,
        // Scrub a live shard at every flush: the silent divergence below is
        // invisible to every typed error, only the audit can find it.
        scrub_interval: 32,
        seed: 0x5E1F,
        ..SupervisorConfig::default()
    };
    let mut sup = SupervisedIngestor::create(
        base.join("wal"),
        base.join("snapshots"),
        n,
        stream.max_rank,
        cfg,
        move |i| {
            let space = EdgeSpace::graph(n).unwrap();
            let params = ForestParams::new(Profile::Practical, space.dimension());
            SpanningForestSketch::new_full(space, &SeedTree::new(2000 + i as u64), params)
        },
    )
    .expect("create supervised ingestor");
    let registry = Registry::new();
    sup.set_sink(&registry.sink());

    // --- A chaos campaign: two faults at scripted update indices ----------
    let poison_at = stream.len() / 3;
    let diverge_at = stream.len() / 2;
    let campaign = ChaosCampaign::new("example", 0x5E1F)
        .at(poison_at, ChaosFault::ShardPoison { shard: 0 })
        .at(diverge_at, ChaosFault::SilentCorruption { shard: 2 });
    let mut sched = ChaosScheduler::new(&campaign);
    println!(
        "campaign: poison shard 0 at update {poison_at}, silently diverge shard 2 at {diverge_at}"
    );

    let budget = QueryBudget::default();
    for (pos, u) in stream.updates.iter().enumerate() {
        for event in sched.due(pos) {
            match event.fault {
                ChaosFault::ShardPoison { shard } => {
                    // A stuck shard: every apply fails until it is rebuilt.
                    sup.inject_apply_fault(
                        shard,
                        SketchError::failure("chaos", "stuck shard"),
                        u32::MAX,
                    );
                    println!("[{pos:>5}] chaos: shard {shard} poisoned");
                }
                ChaosFault::SilentCorruption { shard } => {
                    // A phantom edge applied to one shard only, bypassing
                    // the WAL — no typed error will ever report this.
                    sup.apply_divergent_update(shard, &Update::insert(HyperEdge::pair(0, 1)))
                        .expect("divergent apply");
                    println!("[{pos:>5}] chaos: shard {shard} silently diverged");
                }
                other => unreachable!("not scripted: {other:?}"),
            }
        }
        sup.push(u).expect("push");
    }
    sup.flush().expect("final flush");

    // --- The ladder, as the metrics saw it --------------------------------
    let counter = |name: &str| registry.counter_value(name).unwrap_or(0);
    println!(
        "\nsupervision: {} quarantine(s), {} rebuild(s), {} scrub mismatch(es) caught",
        counter("dgs_core_supervise_quarantines"),
        counter("dgs_core_supervise_rebuilds"),
        counter("dgs_core_supervise_scrub_mismatches"),
    );
    println!(
        "shard health after the soak: {:?} ({}/{} live)",
        sup.shard_states(),
        sup.live_repetitions(),
        sup.repetitions()
    );
    assert!(
        counter("dgs_core_supervise_scrub_mismatches") >= 1,
        "the silent divergence must be caught by the scrub audit"
    );
    assert_eq!(
        sup.live_repetitions(),
        sup.repetitions(),
        "every shard must be healed by the end of the soak"
    );

    // --- Queries: majority vote, deadline-bounded, never wrong ------------
    let answer = sup
        .query_majority(&budget, |_, s: &SpanningForestSketch| {
            s.try_component_count()
        })
        .expect("query");
    let mut reference = {
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        SpanningForestSketch::new_full(space, &SeedTree::new(9), params)
    };
    for u in &stream.updates {
        reference.update(&u.edge, u.op.delta());
    }
    let truth = reference.try_component_count().ok();
    match answer {
        SupervisedAnswer::Full { value, .. } => {
            println!("query: Full answer {value} (every repetition live), truth {truth:?}");
            assert_eq!(Some(value), truth);
        }
        SupervisedAnswer::Degraded {
            value,
            healthy_repetitions,
            total_repetitions,
            effective_delta,
            ..
        } => {
            println!(
                "query: Degraded answer {value} from {healthy_repetitions}/{total_repetitions} \
                 live repetitions (effective delta {effective_delta}), truth {truth:?}"
            );
            assert_eq!(Some(value), truth);
        }
        other => println!("query: {other:?}"),
    }

    let _ = fs::remove_dir_all(&base);
    println!("\nok: faults cost confidence, never correctness");
}
