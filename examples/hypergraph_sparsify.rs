//! Hypergraph sparsification of a dynamic co-authorship hypergraph
//! (Theorem 20) — the paper's Section 5 headline.
//!
//! Papers are hyperedges over authors; retractions delete hyperedges. Two
//! research communities share a handful of cross-community collaborations —
//! the cuts an analyst wants preserved. The sparsifier keeps every cut
//! within a multiplicative band at a fraction of the edges.
//!
//! ```sh
//! cargo run --release --example hypergraph_sparsify
//! ```

use dynamic_graph_streams::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // Two communities of 6 authors each; 18 intra-community papers per side
    // (3 authors each) and 3 cross-community collaborations.
    let (h, community) = dgs_hypergraph::generators::planted_hyper_cut(6, 6, 3, 18, 3, &mut rng);
    let n = h.n();
    println!(
        "corpus: {} papers over {} authors (rank 3), planted cross-community cut = {}",
        h.edge_count(),
        n,
        h.cut_size(&community)
    );

    // Dynamic stream with retractions.
    let stream = dgs_hypergraph::generators::churn_stream(
        &h,
        dgs_hypergraph::generators::ChurnConfig {
            noise_ratio: 0.5,
            churn_ratio: 0.2,
        },
        &mut rng,
    );
    println!(
        "stream: {} events ({:.0}% retractions)",
        stream.len(),
        100.0 * stream.deletion_fraction()
    );

    // The sparsifier sketch (light parameter k, 8 subsample levels).
    let space = EdgeSpace::new(n, 3).unwrap();
    let cfg = SparsifierConfig::explicit(
        5,
        8,
        ForestParams::new(Profile::Practical, space.dimension()),
    );
    let mut sp = HypergraphSparsifier::new(space, cfg, &SeedTree::new(0xCAFE));
    for u in &stream.updates {
        sp.update(&u.edge, u.op.delta());
    }
    let res = sp.decode();
    println!(
        "sparsifier: {} weighted hyperedges (complete = {}), per-level {:?}",
        res.sparsifier.edge_count(),
        res.complete,
        res.per_level
    );

    // Cut preservation audit over every community-respecting and random cut.
    let mut worst: f64 = 0.0;
    let mut checked = 0;
    for mask in 1u32..(1 << (n - 1)) {
        let side: Vec<bool> = (0..n).map(|v| v > 0 && mask >> (v - 1) & 1 == 1).collect();
        let truth = h.cut_size(&side) as f64;
        if truth == 0.0 {
            continue;
        }
        checked += 1;
        worst = worst.max((res.sparsifier.cut_weight(&side) - truth).abs() / truth);
    }
    println!("audited {checked} cuts: max relative error {worst:.3}");
    println!(
        "planted cross-community cut: true {} vs sparsifier {:.1}",
        h.cut_size(&community),
        res.sparsifier.cut_weight(&community)
    );

    // Exact min cut of the weighted sparsifier vs the original.
    let (true_min, _) = dgs_hypergraph::algo::hyper_min_cut(&h).unwrap();
    let approx_min = dgs_hypergraph::algo::weighted_min_cut_value(&res.sparsifier).unwrap();
    println!("global min cut: true {true_min} vs sparsifier {approx_min:.1}");
}
