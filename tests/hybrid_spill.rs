//! Property: the hybrid sparse/sketch backend is byte-identical to direct
//! sketch ingestion — before, across, and after spill.
//!
//! The contract under test (DESIGN.md, "Hybrid sparse/sketch backend"):
//! the hybrid's inner sketch is either exactly zero (resident) or exactly
//! the state a [`SpanningForestSketch`] reaches by ingesting the stream
//! directly (spilled/untracked), and the hybrid's own encoded state —
//! mode, buffer, and sketch — is a pure function of the update *sequence*,
//! never of how it was chopped into batches or striped across threads.
//! Spill, un-spill, and the tracking cap are all driven per update, so
//! mid-batch spill points land the same bytes as scalar ingestion.
//!
//! The workload deliberately drives the full state machine: a churn phase
//! grows support past the spill threshold, a delete-everything phase
//! cancels it back to zero (forcing an un-spill through the hysteresis
//! low-water mark), and a re-insert phase climbs again. The registry
//! cross-check asserts the spill and un-spill actually happened, so the
//! property is never vacuously satisfied.

use std::fs;
use std::path::PathBuf;

use dynamic_graph_streams::field::Codec;
use dynamic_graph_streams::hypergraph::generators::{churn_stream, gnp, ChurnConfig};
use dynamic_graph_streams::prelude::*;

use dgs_obs::Registry;

const N: usize = 16;

fn tmpdir(label: &str) -> PathBuf {
    static UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dgs-hybrid-{label}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn forest(seed: u64, rep: usize) -> SpanningForestSketch {
    let space = EdgeSpace::graph(N).expect("edge space");
    let params = ForestParams::new(Profile::Practical, space.dimension());
    SpanningForestSketch::new_full(space, &SeedTree::new(seed).child(rep as u64), params)
}

fn hybrid(seed: u64, rep: usize, cfg: HybridConfig) -> HybridConnectivitySketch {
    HybridConnectivitySketch::new(forest(seed, rep), cfg)
}

fn encoded<T: Codec>(t: &T) -> Vec<u8> {
    let mut w = dynamic_graph_streams::field::Writer::new();
    t.encode(&mut w);
    w.into_bytes()
}

/// Churn up past any spill threshold, delete *everything* back to support
/// zero (crossing every un-spill low-water mark), then re-insert the first
/// `tail` edges of the final graph.
fn workload(seed: u64, tail: usize) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let h = Hypergraph::from_graph(&gnp(N, 0.4, &mut rng));
    let mut updates = churn_stream(
        &h,
        ChurnConfig {
            noise_ratio: 2.0,
            churn_ratio: 0.5,
        },
        &mut rng,
    )
    .updates;
    for e in h.edges() {
        updates.push(Update::delete(e.clone()));
    }
    for e in h.edges().iter().take(tail) {
        updates.push(Update::insert(e.clone()));
    }
    updates
}

fn thresholds() -> [HybridConfig; 3] {
    [
        // Spills almost immediately; the re-insert tail re-spills it too.
        HybridConfig {
            spill_threshold: 6,
            unspill_threshold: 2,
            max_tracked_support: 1 << 20,
        },
        // Spills mid-churn, un-spills on the delete phase, ends resident.
        HybridConfig {
            spill_threshold: 24,
            unspill_threshold: 8,
            max_tracked_support: 1 << 20,
        },
        // The tracking cap engages: once support passes 32 the buffer is
        // dropped and the sketch stays authoritative through the deletes.
        HybridConfig {
            spill_threshold: 16,
            unspill_threshold: 4,
            max_tracked_support: 32,
        },
    ]
}

#[test]
fn spill_migration_is_byte_identical_to_direct_sketch_ingest() {
    const REPS: usize = 3;
    let tail = 20;
    for seed in [13u64, 37, 59] {
        let updates = workload(seed, tail);
        let pairs: Vec<(HyperEdge, i64)> = updates
            .iter()
            .map(|u| (u.edge.clone(), u.op.delta()))
            .collect();
        for (ci, cfg) in thresholds().into_iter().enumerate() {
            // Scalar references: one hybrid and one direct sketch per
            // repetition, with a live registry proving the state machine
            // actually cycled (spilled at least once, and for the tracked
            // configs un-spilled at least once).
            let registry = Registry::new();
            let mut reference: Vec<HybridConnectivitySketch> = (0..REPS)
                .map(|i| {
                    let mut h = hybrid(seed, i, cfg);
                    h.set_sink(&registry.sink());
                    h
                })
                .collect();
            let mut direct: Vec<SpanningForestSketch> =
                (0..REPS).map(|i| forest(seed, i)).collect();
            for u in &updates {
                for i in 0..REPS {
                    reference[i].apply_update(u).expect("reference apply");
                    direct[i].apply_update(u).expect("direct apply");
                }
            }
            let spills = registry
                .counter_value("dgs_core_hybrid_spills")
                .unwrap_or(0);
            let unspills = registry
                .counter_value("dgs_core_hybrid_unspills")
                .unwrap_or(0);
            assert!(
                spills >= REPS as u64,
                "seed {seed} cfg {ci}: every repetition must spill (got {spills})"
            );
            if cfg.max_tracked_support > updates.len() {
                assert!(
                    unspills >= REPS as u64,
                    "seed {seed} cfg {ci}: the delete phase must un-spill \
                     every tracked repetition (got {unspills})"
                );
            }

            for (i, r) in reference.iter().enumerate() {
                match r.mode() {
                    // Resident: the un-spill subtracted the sketch back to
                    // exactly zero — byte-identical to a fresh sketch.
                    HybridMode::Resident => assert_eq!(
                        encoded(r.sketch()),
                        encoded(&forest(seed, i)),
                        "seed {seed} cfg {ci} rep {i}: resident sketch not zero"
                    ),
                    // Spilled/untracked: the inner sketch must be
                    // byte-identical to direct ingestion of the stream.
                    _ => assert_eq!(
                        encoded(r.sketch()),
                        encoded(&direct[i]),
                        "seed {seed} cfg {ci} rep {i}: spilled sketch diverged \
                         from direct ingestion"
                    ),
                }
                // Decode answers agree across the exact and sketch paths.
                assert_eq!(
                    r.try_component_count().expect("hybrid decode"),
                    direct[i].try_component_count().expect("direct decode"),
                    "seed {seed} cfg {ci} rep {i}: answers diverged"
                );
            }
            let want: Vec<Vec<u8>> = reference.iter().map(encoded).collect();

            // The same stream through ShardedIngestor at every (threads,
            // batch) point — including batch sizes that put the spill,
            // un-spill, and cap transitions mid-batch — must land the
            // identical hybrid bytes (mode + buffer + sketch).
            for threads in [1usize, 2, 3] {
                for batch in [1usize, 5, 16, 64] {
                    let mut ing =
                        ShardedIngestor::with_build(REPS, threads, batch, |i| hybrid(seed, i, cfg));
                    for (e, d) in &pairs {
                        ing.push(e, *d).expect("push");
                    }
                    let boosted = ing.finish().expect("finish");
                    let got: Vec<Vec<u8>> = boosted.sketches().iter().map(encoded).collect();
                    assert_eq!(
                        got, want,
                        "seed {seed} cfg {ci} threads {threads} batch {batch}: \
                         sharded hybrid ingest diverged from scalar"
                    );
                }
            }
        }
    }
}

/// Crash + resume and quarantine + rebuild must replay the WAL into the
/// same resident-or-spilled hybrid state: after poisoning a shard
/// mid-stream, crashing with it still quarantined, resuming from the
/// durable log, and finishing the stream, every shard's encoded hybrid —
/// mode byte, exact buffer, and inner sketch — matches a scalar replay
/// that never faulted.
#[test]
fn crash_resume_replays_the_wal_into_the_same_resident_or_spilled_state() {
    let seed = 0x5B1D;
    let cfg_h = HybridConfig {
        spill_threshold: 8,
        unspill_threshold: 2,
        max_tracked_support: 1 << 20,
    };
    let updates = workload(seed, 12);
    let len = updates.len();
    let crash_at = 3 * len / 5; // mid-stream: shards are spilled here
    let (wal, snap) = (tmpdir("wal"), tmpdir("snap"));
    let cfg = SupervisorConfig {
        repetitions: 3,
        threads: 2,
        batch_size: 8,
        // Never auto-rebuild: the victim must still be quarantined when
        // the process "dies", so resume is what heals it.
        rebuild_after_flushes: u64::MAX,
        seed,
        checkpoint: CheckpointConfig {
            wal: WalConfig {
                segment_records: 16,
                seed,
            },
            snapshot_interval: 23,
            snapshot_seed: seed,
        },
        ..SupervisorConfig::default()
    };
    let build = move |i: usize| hybrid(seed, i, cfg_h);

    let mut sup = SupervisedIngestor::create(&wal, &snap, N, 2, cfg, build).expect("create");
    for u in &updates[..crash_at / 2] {
        sup.push(u).expect("push");
    }
    sup.inject_apply_fault(1, SketchError::failure("chaos", "poisoned"), u32::MAX);
    for u in &updates[crash_at / 2..crash_at] {
        sup.push(u).expect("push");
    }
    sup.flush().expect("flush");
    assert_eq!(sup.shard_states()[1], ShardState::Quarantined);
    drop(sup); // crash: no seal, victim still down

    let (mut sup, durable) =
        SupervisedIngestor::resume(&wal, &snap, N, 2, cfg, build).expect("resume");
    assert_eq!(
        durable, crash_at as u64,
        "every pushed update was WAL-appended before the crash"
    );
    assert_eq!(
        sup.shard_states(),
        vec![ShardState::Healthy; 3],
        "resume rebuilds the quarantined hybrid shard from the durable log"
    );
    for u in &updates[durable as usize..] {
        sup.push(u).expect("push tail");
    }
    sup.flush().expect("flush tail");

    for i in 0..3 {
        let mut reference = build(i);
        for u in &updates {
            reference.apply_update(u).expect("reference apply");
        }
        // The delete-everything phase un-spilled (support fell through the
        // low-water mark 2), then the 12-edge re-insert tail crossed the
        // spill threshold 8 again — the stream ends *re-spilled*. The mode
        // is already part of the encoded state below; asserting it
        // explicitly keeps the test honest if the workload is ever tweaked.
        assert_eq!(reference.mode(), HybridMode::Spilled);
        assert_eq!(
            sup.shard_encoded(i),
            encoded(&reference),
            "shard {i} diverged across poison + crash + resume"
        );
    }
    fs::remove_dir_all(&wal).expect("cleanup wal");
    fs::remove_dir_all(&snap).expect("cleanup snap");
}
