//! Integration tests for the simultaneous communication model across the
//! full stack: players → referee → every decoder in the paper.

use dynamic_graph_streams::core::LightRecoverySketch;
use dynamic_graph_streams::prelude::*;

use dgs_hypergraph::algo;
use dgs_hypergraph::generators;

/// Builds per-player messages for a hypergraph and reassembles the sketch.
fn via_players(
    h: &Hypergraph,
    space: &EdgeSpace,
    seeds: &SeedTree,
    params: ForestParams,
) -> SpanningForestSketch {
    let messages: Vec<_> = (0..h.n() as u32)
        .map(|v| {
            let incident: Vec<HyperEdge> = h
                .edges()
                .iter()
                .filter(|e| e.contains(v))
                .cloned()
                .collect();
            player_sketch(space, v, &incident, seeds, params)
        })
        .collect();
    assemble_players(space, messages, seeds, params)
}

#[test]
fn referee_decides_connectivity_for_graphs_and_hypergraphs() {
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..6 {
        let n = 14;
        let h = if trial % 2 == 0 {
            Hypergraph::from_graph(&generators::gnp(n, 0.18, &mut rng))
        } else {
            generators::random_mixed_hypergraph(n, 3, rng.gen_range(4..14), &mut rng)
        };
        let r = h.max_rank().max(2);
        let space = EdgeSpace::new(n, r).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(100 + trial);
        let assembled = via_players(&h, &space, &seeds, params);
        let (_, labels) = assembled.decode_with_labels();
        assert_eq!(
            labels.component_count(),
            algo::hyper_component_count(&h),
            "trial {trial}"
        );
    }
}

#[test]
fn message_sizes_are_balanced_and_account_for_the_sketch() {
    let n = 12;
    let h = generators::random_uniform_hypergraph(n, 3, 10, &mut StdRng::seed_from_u64(2));
    let space = EdgeSpace::new(n, 3).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let seeds = SeedTree::new(3);
    let messages: Vec<_> = (0..n as u32)
        .map(|v| {
            let incident: Vec<HyperEdge> = h
                .edges()
                .iter()
                .filter(|e| e.contains(v))
                .cloned()
                .collect();
            player_sketch(&space, v, &incident, &seeds, params)
        })
        .collect();
    // Vertex-based sketches: every player pays the same structural cost.
    let sizes: Vec<usize> = messages.iter().map(|m| m.size_bytes()).collect();
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "unbalanced messages: {sizes:?}"
    );
    let full = SpanningForestSketch::new_full(space, &seeds, params);
    assert_eq!(sizes.iter().sum::<usize>(), full.size_bytes());
}

#[test]
fn light_recovery_via_players_reconstructs() {
    // Theorem 15 end-to-end in the communication model: every player sends
    // its k+1 forest messages; the referee reconstructs the whole
    // cut-degenerate graph.
    let g = generators::lemma10_gadget();
    let h = Hypergraph::from_graph(&g);
    let n = g.n();
    let k = 2;
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let seeds = SeedTree::new(606);
    let mut referee = LightRecoverySketch::new(space.clone(), k, &seeds, params);
    for v in 0..n as u32 {
        let incident: Vec<HyperEdge> = h
            .edges()
            .iter()
            .filter(|e| e.contains(v))
            .cloned()
            .collect();
        let msgs = LightRecoverySketch::player_message(&space, k, v, &incident, &seeds, params);
        assert_eq!(msgs.len(), k + 1);
        referee.install_player(msgs);
    }
    let rec = referee.reconstruct().expect("gadget is 2-cut-degenerate");
    assert_eq!(rec.edge_count(), h.edge_count());
}

#[test]
fn sparsifier_via_players_equals_central() {
    use dynamic_graph_streams::core::HypergraphSparsifier;
    let mut rng = StdRng::seed_from_u64(7);
    let h = generators::random_uniform_hypergraph(10, 3, 20, &mut rng);
    let space = EdgeSpace::new(10, 3).unwrap();
    let cfg = SparsifierConfig::explicit(
        3,
        6,
        ForestParams::new(Profile::Practical, space.dimension()),
    );
    let seeds = SeedTree::new(707);

    let mut central = HypergraphSparsifier::new(space.clone(), cfg, &seeds);
    for e in h.edges() {
        central.update(e, 1);
    }

    let mut assembled = HypergraphSparsifier::new(space.clone(), cfg, &seeds);
    for v in 0..10u32 {
        let incident: Vec<HyperEdge> = h
            .edges()
            .iter()
            .filter(|e| e.contains(v))
            .cloned()
            .collect();
        let msg = HypergraphSparsifier::player_message(&space, &cfg, &seeds, v, &incident);
        assembled.install_player(msg);
    }
    let (rc, ra) = (central.decode(), assembled.decode());
    assert_eq!(rc.per_level, ra.per_level);
    assert_eq!(rc.complete, ra.complete);
    let edges_c: Vec<_> = rc.sparsifier.iter().map(|(e, w)| (e.clone(), w)).collect();
    let edges_a: Vec<_> = ra.sparsifier.iter().map(|(e, w)| (e.clone(), w)).collect();
    assert_eq!(edges_c, edges_a);
}

#[test]
fn two_referees_with_same_public_coins_agree() {
    let n = 10;
    let h = Hypergraph::from_graph(&generators::grid(5, 2));
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let seeds = SeedTree::new(4);
    let a = via_players(&h, &space, &seeds, params);
    let b = via_players(&h, &space, &seeds, params);
    assert_eq!(a.decode(), b.decode());
}

#[test]
fn player_messages_compose_with_stream_deletions() {
    // Players can also run on dynamic inputs: each processes its local
    // insert/delete history; the referee still sees the final graph.
    let n = 10;
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let seeds = SeedTree::new(5);

    // Final graph: a cycle. Local histories include a deleted chord.
    let mut cycle = Graph::new(n);
    for v in 0..n as u32 {
        cycle.add_edge(v, (v + 1) % n as u32);
    }
    let chord = HyperEdge::pair(0, 5);

    let messages: Vec<_> = (0..n as u32)
        .map(|v| {
            let mut incident: Vec<HyperEdge> = cycle
                .edges()
                .filter(|&(a, b)| a == v || b == v)
                .map(|(a, b)| HyperEdge::pair(a, b))
                .collect();
            // The chord was inserted then deleted locally; linearity cancels it.
            if chord.contains(v) {
                incident.push(chord.clone());
            }
            let mut msg = player_sketch(&space, v, &incident, &seeds, params);
            if chord.contains(v) {
                let idx = space.rank(&chord);
                let coeff = dgs_connectivity::incidence_coefficient(&chord, v);
                for s in &mut msg.samplers {
                    s.update(idx, -coeff).unwrap();
                }
            }
            msg
        })
        .collect();
    let assembled = assemble_players(&space, messages, &seeds, params);
    let decoded = assembled.decode();
    assert_eq!(decoded.len(), n - 1, "spanning tree of the cycle only");
    assert!(!decoded.contains(&chord), "deleted chord leaked");
}
