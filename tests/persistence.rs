//! Checkpoint/restore: sketch state round-trips through the binary codec
//! with *behavioral* equality — a restored sketch decodes identically and
//! keeps accepting updates.

use dynamic_graph_streams::core::LightRecoverySketch;
use dynamic_graph_streams::field::{Codec, Reader, Writer};
use dynamic_graph_streams::prelude::*;

use dgs_hypergraph::generators;

fn round_trip<T: Codec>(value: &T) -> T {
    let mut w = Writer::new();
    value.encode(&mut w);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    let out = T::decode(&mut r).expect("decode");
    r.expect_end().expect("no trailing bytes");
    out
}

#[test]
fn l0_sampler_checkpoint_restores_behavior() {
    let params = L0Params {
        sparsity: 4,
        rows: 4,
        level_independence: 8,
    };
    let mut s = L0Sampler::new(&SeedTree::new(1), 1 << 20, params);
    for i in [5u64, 900, 77_000] {
        s.update(i, 1).unwrap();
    }
    let mut restored = round_trip(&s);
    assert_eq!(s.sample(), restored.sample());
    // The restored sampler keeps working: delete everything, then it reads
    // zero — requires the hashes to have survived the trip exactly.
    for i in [5u64, 900, 77_000] {
        restored.update(i, -1).unwrap();
    }
    assert!(restored.is_zero());
    assert_eq!(restored.sample(), Ok(None));
}

#[test]
fn forest_sketch_checkpoint_mid_stream() {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 16;
    let h = Hypergraph::from_graph(&generators::gnp(n, 0.3, &mut rng));
    let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let mut sk = SpanningForestSketch::new_full(space, &SeedTree::new(3), params);

    // Process half the stream, checkpoint, restore, process the rest.
    let half = stream.len() / 2;
    for u in &stream.updates[..half] {
        sk.update(&u.edge, u.op.delta());
    }
    let mut restored = round_trip(&sk);
    for u in &stream.updates[half..] {
        sk.update(&u.edge, u.op.delta());
        restored.update(&u.edge, u.op.delta());
    }
    assert_eq!(sk.decode(), restored.decode());
    assert_eq!(
        restored.decode_with_labels().1.component_count(),
        dgs_hypergraph::algo::hyper_component_count(&h)
    );
}

#[test]
fn skeleton_and_light_recovery_round_trip() {
    let g = generators::lemma10_gadget();
    let h = Hypergraph::from_graph(&g);
    let space = EdgeSpace::graph(g.n()).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let mut skel = KSkeletonSketch::new(space.clone(), 3, &SeedTree::new(4), params);
    let mut light = LightRecoverySketch::new(space, 2, &SeedTree::new(5), params);
    for e in h.edges() {
        skel.update(e, 1);
        light.update(e, 1);
    }
    let skel2 = round_trip(&skel);
    assert_eq!(skel.decode(), skel2.decode());
    assert_eq!(skel.k(), skel2.k());

    let light2 = round_trip(&light);
    let (a, b) = (light.recover(), light2.recover());
    assert_eq!(a.complete, b.complete);
    assert_eq!(a.edges(), b.edges());
    assert_eq!(
        light2.reconstruct().map(|r| r.edge_count()),
        Some(h.edge_count())
    );
}

#[test]
fn vertex_conn_and_sparsifier_round_trip() {
    use dynamic_graph_streams::core::HypergraphSparsifier;
    let mut rng = StdRng::seed_from_u64(9);
    let g = generators::planted_separator(5, 5, 2);
    let h = Hypergraph::from_graph(&g);
    let space = EdgeSpace::graph(g.n()).unwrap();

    let cfg = VertexConnConfig::query(2, g.n(), 2.0, Profile::Practical);
    let mut vc = VertexConnSketch::new(space.clone(), cfg, &SeedTree::new(10));
    for e in h.edges() {
        vc.update(e, 1);
    }
    let mut vc2 = round_trip(&vc);
    assert_eq!(
        vc.certificate().union.edges(),
        vc2.certificate().union.edges()
    );
    // The restored structure keeps accepting updates (membership rebuilt).
    vc2.update(&HyperEdge::pair(0, 1), -1);
    vc2.update(&HyperEdge::pair(0, 1), 1);
    assert!(vc2.certificate().disconnects(&[5, 6]));

    let hh = generators::random_uniform_hypergraph(10, 3, 18, &mut rng);
    let hspace = EdgeSpace::new(10, 3).unwrap();
    let scfg = SparsifierConfig::explicit(
        3,
        6,
        ForestParams::new(Profile::Practical, hspace.dimension()),
    );
    let mut sp = HypergraphSparsifier::new(hspace, scfg, &SeedTree::new(11));
    for e in hh.edges() {
        sp.update(e, 1);
    }
    let sp2 = round_trip(&sp);
    let (a, b) = (sp.decode(), sp2.decode());
    assert_eq!(a.per_level, b.per_level);
    let ea: Vec<_> = a.sparsifier.iter().map(|(e, w)| (e.clone(), w)).collect();
    let eb: Vec<_> = b.sparsifier.iter().map(|(e, w)| (e.clone(), w)).collect();
    assert_eq!(ea, eb);
}

#[test]
fn corrupted_checkpoints_fail_cleanly() {
    let space = EdgeSpace::graph(8).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let sk = SpanningForestSketch::new_full(space, &SeedTree::new(6), params);
    let mut w = Writer::new();
    sk.encode(&mut w);
    let bytes = w.into_bytes();
    // Truncations at various points must error, never panic.
    for cut in [0usize, 1, 8, 17, bytes.len() / 2, bytes.len() - 1] {
        let mut r = Reader::new(&bytes[..cut]);
        assert!(
            <SpanningForestSketch as Codec>::decode(&mut r).is_err(),
            "cut at {cut} decoded"
        );
    }
    // Trailing garbage is caught by expect_end.
    let mut extended = bytes.clone();
    extended.push(0xFF);
    let mut r = Reader::new(&extended);
    let _ = <SpanningForestSketch as Codec>::decode(&mut r).unwrap();
    assert!(r.expect_end().is_err());
}

/// Adversarial decoding (the byte-level fault model): every truncation of a
/// valid encoding must be rejected by `decode` + `expect_end`, and every
/// bit-flipped encoding must either be rejected with a typed `CodecError`
/// or decode into *some* value — never panic. Truncation and bit positions
/// are exhaustive for small encodings and evenly sampled for large ones.
fn assert_decode_rejects_corruption<T: Codec>(value: &T, label: &str) {
    use dgs_hypergraph::fault::{truncated, with_bit_flipped};

    let mut w = Writer::new();
    value.encode(&mut w);
    let bytes = w.into_bytes();
    assert!(!bytes.is_empty(), "{label}: empty encoding");

    let cut_step = (bytes.len() / 128).max(1);
    for cut in (0..bytes.len()).step_by(cut_step) {
        let cutb = truncated(&bytes, cut);
        let mut r = Reader::new(&cutb);
        let res = T::decode(&mut r).map(|_| ()).and_then(|()| r.expect_end());
        assert!(res.is_err(), "{label}: truncation to {cut} bytes accepted");
    }

    let total_bits = bytes.len() * 8;
    let bit_step = (total_bits / 512).max(1);
    for bit in (0..total_bits).step_by(bit_step) {
        let bad = with_bit_flipped(&bytes, bit);
        let mut r = Reader::new(&bad);
        // Either a typed rejection or a clean decode of a different value;
        // a panic here fails the test. (A single flipped payload bit can
        // yield another valid encoding — that is what checksummed framing
        // in `dgs_hypergraph::fault` is for.)
        let _ = T::decode(&mut r);
    }
}

#[test]
fn adversarial_bytes_never_panic_any_codec() {
    use dynamic_graph_streams::core::{HypergraphSparsifier, SparsifierConfig};
    use dynamic_graph_streams::field::{Fingerprinter, KWiseHash, UniformHash};
    use dynamic_graph_streams::sketch::{OneSparse, SparseRecovery};

    let seeds = SeedTree::new(99);
    let tiny = L0Params {
        sparsity: 2,
        rows: 2,
        level_independence: 2,
    };

    assert_decode_rejects_corruption(&42u64, "u64");
    assert_decode_rejects_corruption(&KWiseHash::new(&seeds, 4), "KWiseHash");
    assert_decode_rejects_corruption(&UniformHash::new(&seeds, 8), "UniformHash");
    assert_decode_rejects_corruption(&Fingerprinter::new(&seeds.child(1)), "Fingerprinter");
    assert_decode_rejects_corruption(&tiny, "L0Params");

    let fper = Fingerprinter::new(&seeds.child(2));
    let mut cell = OneSparse::new();
    cell.update(17, 3, &fper);
    assert_decode_rejects_corruption(&cell, "OneSparse");

    let mut rec = SparseRecovery::new(&seeds.child(3), 1 << 12, 2, 2);
    for i in [3u64, 900] {
        rec.update(i, 1).unwrap();
    }
    assert_decode_rejects_corruption(&rec, "SparseRecovery");

    let mut l0 = L0Sampler::new(&seeds.child(4), 1 << 12, tiny);
    for i in [5u64, 77, 4001] {
        l0.update(i, 1).unwrap();
    }
    assert_decode_rejects_corruption(&l0, "L0Sampler");

    // Structure-level codecs, kept tiny so exhaustive-ish corruption stays
    // fast: a 6-vertex graph space with starved parameters.
    let space = EdgeSpace::graph(6).unwrap();
    let params = ForestParams {
        l0: tiny,
        extra_rounds: 0,
    };
    assert_decode_rejects_corruption(&params, "ForestParams");

    let mut forest = SpanningForestSketch::new_full(space.clone(), &seeds.child(5), params);
    forest.update(&HyperEdge::pair(0, 1), 1);
    assert_decode_rejects_corruption(&forest, "SpanningForestSketch");

    let mut skel = KSkeletonSketch::new(space.clone(), 2, &seeds.child(6), params);
    skel.update(&HyperEdge::pair(1, 2), 1);
    assert_decode_rejects_corruption(&skel, "KSkeletonSketch");

    let msg = player_sketch(&space, 0, &[HyperEdge::pair(0, 3)], &seeds.child(7), params);
    assert_decode_rejects_corruption(&msg, "PlayerMessage");

    let mut cfg = VertexConnConfig::query(2, 6, 1.0, Profile::Practical);
    cfg.forest = params;
    assert_decode_rejects_corruption(&cfg, "VertexConnConfig");
    let mut vc = VertexConnSketch::new(space.clone(), cfg, &seeds.child(8));
    vc.update(&HyperEdge::pair(2, 3), 1);
    assert_decode_rejects_corruption(&vc, "VertexConnSketch");

    let mut light = LightRecoverySketch::new(space.clone(), 1, &seeds.child(9), params);
    light.update(&HyperEdge::pair(4, 5), 1);
    assert_decode_rejects_corruption(&light, "LightRecoverySketch");

    let scfg = SparsifierConfig::explicit(1, 2, params);
    let mut sp = HypergraphSparsifier::new(space.clone(), scfg, &seeds.child(10));
    sp.update(&HyperEdge::pair(0, 5), 1);
    assert_decode_rejects_corruption(&sp, "HypergraphSparsifier");

    let sp_msg = HypergraphSparsifier::player_message(
        &space,
        &scfg,
        &seeds.child(10),
        0,
        &[HyperEdge::pair(0, 5)],
    );
    assert_decode_rejects_corruption(&sp_msg, "SparsifierPlayerMessage");
}
