//! Crash-injection harness for the checkpoint/recovery subsystem.
//!
//! The contract under test (DESIGN.md, "Durability & recovery"): kill
//! ingestion at an arbitrary update index, corrupt the on-disk state with
//! torn writes and bit flips, and recovery either reproduces a sketch
//! **bit-identical** to an uninterrupted run over the durable prefix — so
//! every connectivity / k-connectivity query answers identically — or
//! fails with a typed [`RecoveryError`]. Never a panic, never a silently
//! divergent answer.

use std::fs;
use std::path::PathBuf;

use dynamic_graph_streams::prelude::*;

use dgs_field::Codec;
use dgs_hypergraph::fault::{truncated, with_bit_flipped};
use dgs_hypergraph::generators;
use dgs_obs::Registry;

fn tmpdir(label: &str) -> PathBuf {
    static UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dgs-crash-{label}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A churn workload (inserts and deletes) over a random graph.
fn workload(seed: u64, n: usize) -> UpdateStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let h = Hypergraph::from_graph(&generators::gnp(n, 0.3, &mut rng));
    generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng)
}

fn forest(n: usize, seed: u64) -> SpanningForestSketch {
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    SpanningForestSketch::new_full(space, &SeedTree::new(seed), params)
}

fn vconn(n: usize, seed: u64) -> VertexConnSketch {
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let cfg = VertexConnConfig::explicit(2, 4, params);
    VertexConnSketch::new(space, cfg, &SeedTree::new(seed))
}

fn encoded<T: Codec>(t: &T) -> Vec<u8> {
    let mut w = dgs_field::Writer::new();
    t.encode(&mut w);
    w.into_bytes()
}

/// Small segments and frequent snapshots so every trial crosses rotations
/// and checkpoints.
fn tight_cfg(seed: u64) -> CheckpointConfig {
    CheckpointConfig {
        wal: WalConfig {
            segment_records: 16,
            seed,
        },
        snapshot_interval: 23,
        snapshot_seed: seed,
    }
}

/// Runs ingestion of `updates[..crash_at]`, "crashes" (drops the ingestor
/// without sealing), and returns the recovery outcome.
fn crash_and_recover<T: Recoverable>(
    wal_dir: &PathBuf,
    snap_dir: &PathBuf,
    stream: &UpdateStream,
    crash_at: usize,
    cfg: CheckpointConfig,
    mut fresh: impl FnMut() -> T,
) -> Recovered<T> {
    let mut ing =
        CheckpointedIngestor::create(wal_dir, snap_dir, stream.n, stream.max_rank, cfg, fresh())
            .unwrap();
    for u in &stream.updates[..crash_at] {
        ing.ingest(u).unwrap();
    }
    drop(ing); // crash: no seal, no final snapshot

    let store = CheckpointStore::open(snap_dir, cfg.snapshot_seed).unwrap();
    RecoveryDriver::new(wal_dir, store)
        .recover(|_, _| fresh())
        .unwrap()
}

#[test]
fn crash_at_randomized_indices_recovers_bit_identical_state() {
    for trial in 0..12u64 {
        let stream = workload(500 + trial, 14);
        let mut rng = StdRng::seed_from_u64(900 + trial);
        let crash_at = rng.gen_range(1..=stream.len());
        let (wal_dir, snap_dir) = (tmpdir("idx-wal"), tmpdir("idx-snap"));
        let rec = crash_and_recover(
            &wal_dir,
            &snap_dir,
            &stream,
            crash_at,
            tight_cfg(trial),
            || forest(stream.n, 7 * trial + 1),
        );
        assert_eq!(rec.offset as usize, crash_at, "trial {trial}");
        assert_eq!(rec.wal_torn_bytes, 0, "no corruption was injected");

        // Bit-exactness against an uninterrupted run over the same prefix.
        let mut reference = forest(stream.n, 7 * trial + 1);
        for u in &stream.updates[..crash_at] {
            reference.apply_update(u).unwrap();
        }
        assert_eq!(
            encoded(&rec.sketch),
            encoded(&reference),
            "trial {trial}: recovered sketch diverges from uninterrupted run"
        );

        // Finish the stream on both; every query must agree.
        let mut recovered = rec.sketch;
        for u in &stream.updates[crash_at..] {
            recovered.apply_update(u).unwrap();
            reference.apply_update(u).unwrap();
        }
        assert_eq!(
            recovered.try_component_count().ok(),
            reference.try_component_count().ok()
        );
        assert_eq!(encoded(&recovered), encoded(&reference));
        fs::remove_dir_all(&wal_dir).unwrap();
        fs::remove_dir_all(&snap_dir).unwrap();
    }
}

#[test]
fn torn_writes_and_bit_flips_in_the_wal_tail_recover_a_prefix() {
    for trial in 0..10u64 {
        let stream = workload(700 + trial, 12);
        let mut rng = StdRng::seed_from_u64(1700 + trial);
        let crash_at = rng.gen_range(8..=stream.len());
        let (wal_dir, snap_dir) = (tmpdir("tear-wal"), tmpdir("tear-snap"));
        let cfg = tight_cfg(trial);
        let mut ing = CheckpointedIngestor::create(
            &wal_dir,
            &snap_dir,
            stream.n,
            stream.max_rank,
            cfg,
            forest(stream.n, trial),
        )
        .unwrap();
        for u in &stream.updates[..crash_at] {
            ing.ingest(u).unwrap();
        }
        let seg = crash_at / cfg.wal.segment_records as usize;
        drop(ing);

        // Injected fault: tear bytes off the active segment, or flip a bit
        // in its record region.
        let seg_path = wal_dir.join(format!("seg-{seg:08}.wal"));
        let bytes = fs::read(&seg_path).unwrap();
        if trial % 2 == 0 && bytes.len() > 4 {
            let cut = rng.gen_range(1..bytes.len());
            fs::write(&seg_path, truncated(&bytes, cut)).unwrap();
        } else {
            let bit = rng.gen_range(0..bytes.len() * 8);
            fs::write(&seg_path, with_bit_flipped(&bytes, bit)).unwrap();
        }

        let store = CheckpointStore::open(&snap_dir, cfg.snapshot_seed).unwrap();
        let driver = RecoveryDriver::new(&wal_dir, store);
        match driver.recover(|_, _| forest(stream.n, trial)) {
            Ok(rec) => {
                // Whatever prefix survived must be *exactly* that prefix.
                let r = rec.offset as usize;
                assert!(r <= crash_at, "trial {trial}: recovered beyond the crash");
                let mut reference = forest(stream.n, trial);
                for u in &stream.updates[..r] {
                    reference.apply_update(u).unwrap();
                }
                assert_eq!(
                    encoded(&rec.sketch),
                    encoded(&reference),
                    "trial {trial}: prefix at offset {r} not exact"
                );
            }
            // A flip in a sealed region (or segment 0's header) is damage
            // beyond the torn tail: a typed error, never a panic.
            Err(RecoveryError::Wal(WalError::Corrupt { .. })) => {}
            Err(e) => panic!("trial {trial}: unexpected recovery error {e}"),
        }
        fs::remove_dir_all(&wal_dir).unwrap();
        fs::remove_dir_all(&snap_dir).unwrap();
    }
}

#[test]
fn vertex_connectivity_queries_answer_identically_after_recovery() {
    for trial in 0..4u64 {
        let n = 12;
        let stream = workload(40 + trial, n);
        let mut rng = StdRng::seed_from_u64(2400 + trial);
        let crash_at = rng.gen_range(1..=stream.len());
        let (wal_dir, snap_dir) = (tmpdir("vc-wal"), tmpdir("vc-snap"));
        let rec = crash_and_recover(
            &wal_dir,
            &snap_dir,
            &stream,
            crash_at,
            tight_cfg(100 + trial),
            || vconn(n, 13 * trial + 5),
        );
        assert_eq!(rec.offset as usize, crash_at);

        let mut reference = vconn(n, 13 * trial + 5);
        for u in &stream.updates[..crash_at] {
            reference.apply_update(u).unwrap();
        }
        let mut recovered = rec.sketch;
        for u in &stream.updates[crash_at..] {
            recovered.apply_update(u).unwrap();
            reference.apply_update(u).unwrap();
        }

        // Every k-connectivity query: identical certificates or identical
        // typed failures.
        match (reference.try_certificate(), recovered.try_certificate()) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.vertex_connectivity(4),
                    b.vertex_connectivity(4),
                    "trial {trial}"
                );
                for v in 0..n as u32 {
                    assert_eq!(a.disconnects(&[v]), b.disconnects(&[v]), "trial {trial}");
                }
                for (u, v) in [(0u32, 1u32), (2, 7), (3, 11), (5, 6)] {
                    assert_eq!(a.disconnects(&[u, v]), b.disconnects(&[u, v]));
                }
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!(
                "trial {trial}: certificate availability diverged: \
                 reference {:?} vs recovered {:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }
        fs::remove_dir_all(&wal_dir).unwrap();
        fs::remove_dir_all(&snap_dir).unwrap();
    }
}

#[test]
fn snapshot_bit_flips_are_skipped_never_trusted() {
    // Property: flipping any random bit of any snapshot file makes that
    // snapshot invalid; the ladder falls back (older snapshot or full
    // replay) and still recovers the exact durable prefix.
    let stream = workload(31, 12);
    let (wal_dir, snap_dir) = (tmpdir("flip-wal"), tmpdir("flip-snap"));
    let cfg = tight_cfg(9);
    let mut ing = CheckpointedIngestor::create(
        &wal_dir,
        &snap_dir,
        stream.n,
        stream.max_rank,
        cfg,
        forest(stream.n, 3),
    )
    .unwrap();
    for u in &stream.updates {
        ing.ingest(u).unwrap();
    }
    drop(ing);

    let mut reference = forest(stream.n, 3);
    for u in &stream.updates {
        reference.apply_update(u).unwrap();
    }
    let reference_bytes = encoded(&reference);

    let store = CheckpointStore::open(&snap_dir, cfg.snapshot_seed).unwrap();
    let snaps = store.offsets().unwrap();
    assert!(
        snaps.len() >= 2,
        "workload too small to exercise the ladder"
    );
    let mut rng = StdRng::seed_from_u64(77);
    for round in 0..24 {
        // Corrupt one random snapshot (keep the pristine bytes to restore).
        let victim = snaps[rng.gen_range(0..snaps.len())];
        let path = snap_dir.join(format!("snap-{victim:012}.ckpt"));
        let pristine = fs::read(&path).unwrap();
        let bit = rng.gen_range(0..pristine.len() * 8);
        fs::write(&path, with_bit_flipped(&pristine, bit)).unwrap();

        let driver = RecoveryDriver::new(&wal_dir, store.clone());
        let rec: Recovered<SpanningForestSketch> =
            driver.recover(|_, _| forest(stream.n, 3)).unwrap();
        assert_eq!(rec.offset as usize, stream.len(), "round {round}");
        assert_ne!(
            rec.from_snapshot,
            Some(victim),
            "round {round}: a corrupted snapshot was trusted (bit {bit})"
        );
        assert!(
            !rec.snapshot_defects.is_empty() || rec.from_snapshot != Some(victim),
            "round {round}"
        );
        assert_eq!(
            encoded(&rec.sketch),
            reference_bytes,
            "round {round}: silent divergence after snapshot corruption"
        );
        fs::write(&path, pristine).unwrap();
    }

    // All snapshots corrupted at once: full-log replay, still exact.
    for &off in &snaps {
        let path = snap_dir.join(format!("snap-{off:012}.ckpt"));
        let bytes = fs::read(&path).unwrap();
        let bit = rng.gen_range(0..bytes.len() * 8);
        fs::write(&path, with_bit_flipped(&bytes, bit)).unwrap();
    }
    let driver = RecoveryDriver::new(&wal_dir, store.clone());
    let rec: Recovered<SpanningForestSketch> = driver.recover(|_, _| forest(stream.n, 3)).unwrap();
    assert_eq!(rec.from_snapshot, None);
    assert_eq!(rec.snapshot_defects.len(), snaps.len());
    assert_eq!(encoded(&rec.sketch), reference_bytes);
    fs::remove_dir_all(&wal_dir).unwrap();
    fs::remove_dir_all(&snap_dir).unwrap();
}

#[test]
fn snapshot_truncated_at_every_byte_never_panics_never_lies() {
    // Property: truncate the only snapshot at every byte offset; recovery
    // must fall back to full-log replay and still be exact, at every cut.
    let stream = workload(32, 10);
    let (wal_dir, snap_dir) = (tmpdir("cut-wal"), tmpdir("cut-snap"));
    let cfg = CheckpointConfig {
        wal: WalConfig {
            segment_records: 64,
            seed: 5,
        },
        snapshot_interval: u64::MAX,
        snapshot_seed: 5,
    };
    let mut ing = CheckpointedIngestor::create(
        &wal_dir,
        &snap_dir,
        stream.n,
        stream.max_rank,
        cfg,
        forest(stream.n, 11),
    )
    .unwrap();
    for u in &stream.updates {
        ing.ingest(u).unwrap();
    }
    ing.checkpoint_now().unwrap();
    drop(ing);

    let mut reference = forest(stream.n, 11);
    for u in &stream.updates {
        reference.apply_update(u).unwrap();
    }
    let reference_bytes = encoded(&reference);

    let store = CheckpointStore::open(&snap_dir, cfg.snapshot_seed).unwrap();
    let off = store.offsets().unwrap()[0];
    let path = snap_dir.join(format!("snap-{off:012}.ckpt"));
    let pristine = fs::read(&path).unwrap();
    // Every byte of the magic + manifest frame region, then a stride
    // through the (much larger) sketch payload.
    let header_region = 64.min(pristine.len());
    let cuts = (0..header_region)
        .chain((header_region..pristine.len()).step_by(97))
        .chain([pristine.len() - 1]);
    for cut in cuts {
        fs::write(&path, truncated(&pristine, cut)).unwrap();
        let driver = RecoveryDriver::new(&wal_dir, store.clone());
        let rec: Recovered<SpanningForestSketch> =
            driver.recover(|_, _| forest(stream.n, 11)).unwrap();
        assert_eq!(
            rec.from_snapshot, None,
            "cut {cut}: truncated snapshot used"
        );
        assert_eq!(
            encoded(&rec.sketch),
            reference_bytes,
            "cut {cut}: silent divergence"
        );
    }
    fs::remove_dir_all(&wal_dir).unwrap();
    fs::remove_dir_all(&snap_dir).unwrap();
}

#[test]
fn wal_truncated_at_every_byte_recovers_a_prefix_or_fails_typed() {
    // Property: truncate a single-segment WAL at every byte offset.
    // Recovery (no snapshots) must yield an exact prefix of the stream or
    // a typed error — every cut, no panics, no non-prefix states.
    let stream = workload(33, 10);
    let take = stream.len().min(12);
    let (wal_dir, snap_dir) = (tmpdir("pwal-wal"), tmpdir("pwal-snap"));
    let mut w = WalWriter::create(
        &wal_dir,
        stream.n,
        stream.max_rank,
        WalConfig {
            segment_records: 1 << 20,
            seed: 3,
        },
    )
    .unwrap();
    for u in &stream.updates[..take] {
        w.append(u).unwrap();
    }
    drop(w);

    let store = CheckpointStore::open(&snap_dir, 0).unwrap();
    let path = wal_dir.join("seg-00000000.wal");
    let pristine = fs::read(&path).unwrap();
    let mut best = 0usize;
    for cut in 0..=pristine.len() {
        fs::write(&path, truncated(&pristine, cut)).unwrap();
        let driver = RecoveryDriver::new(&wal_dir, store.clone());
        match driver.recover(|_, _| forest(stream.n, 21)) {
            Ok(rec) => {
                let r = rec.offset as usize;
                assert!(r <= take, "cut {cut}: phantom records");
                let mut reference = forest(stream.n, 21);
                for u in &stream.updates[..r] {
                    reference.apply_update(u).unwrap();
                }
                assert_eq!(
                    encoded(&rec.sketch),
                    encoded(&reference),
                    "cut {cut}: recovered state is not the length-{r} prefix"
                );
                best = best.max(r);
            }
            // Cut inside the header: the whole segment is unreadable.
            Err(RecoveryError::Wal(WalError::Corrupt { .. })) => {}
            Err(RecoveryError::NoState { .. }) => {}
            Err(e) => panic!("cut {cut}: unexpected error {e}"),
        }
    }
    assert_eq!(best, take, "the uncut log must recover everything");
    fs::remove_dir_all(&wal_dir).unwrap();
    fs::remove_dir_all(&snap_dir).unwrap();
}

#[test]
fn resumed_ingestion_after_crash_matches_uninterrupted_run() {
    // End-to-end: crash, resume with CheckpointedIngestor::resume, finish
    // the stream, and compare against a run that never crashed — including
    // a second crash-resume cycle.
    let stream = workload(34, 12);
    let len = stream.len();
    assert!(len >= 6, "workload too small");
    let (c1, c2) = (len / 3, 2 * len / 3);
    let (wal_dir, snap_dir) = (tmpdir("res-wal"), tmpdir("res-snap"));
    let cfg = tight_cfg(17);

    let mut ing = CheckpointedIngestor::create(
        &wal_dir,
        &snap_dir,
        stream.n,
        stream.max_rank,
        cfg,
        forest(stream.n, 29),
    )
    .unwrap();
    for u in &stream.updates[..c1] {
        ing.ingest(u).unwrap();
    }
    drop(ing); // crash 1

    let (mut ing, rec) = CheckpointedIngestor::<SpanningForestSketch>::resume(
        &wal_dir,
        &snap_dir,
        stream.n,
        stream.max_rank,
        cfg,
        |_, _| forest(stream.n, 29),
    )
    .unwrap();
    assert_eq!(rec.offset as usize, c1);
    for u in &stream.updates[c1..c2] {
        ing.ingest(u).unwrap();
    }
    drop(ing); // crash 2

    let (mut ing, rec) = CheckpointedIngestor::<SpanningForestSketch>::resume(
        &wal_dir,
        &snap_dir,
        stream.n,
        stream.max_rank,
        cfg,
        |_, _| forest(stream.n, 29),
    )
    .unwrap();
    assert_eq!(rec.offset as usize, c2);
    for u in &stream.updates[c2..] {
        ing.ingest(u).unwrap();
    }

    let mut reference = forest(stream.n, 29);
    for u in &stream.updates {
        reference.apply_update(u).unwrap();
    }
    assert_eq!(encoded(ing.sketch()), encoded(&reference));
    assert_eq!(
        ing.sketch().try_component_count().ok(),
        reference.try_component_count().ok()
    );
    fs::remove_dir_all(&wal_dir).unwrap();
    fs::remove_dir_all(&snap_dir).unwrap();
}

/// WAL replay runs through the batched kernel (`Recoverable::apply_batch`
/// in fixed-size chunks). The full-log rung must stay bit-identical to a
/// per-update replay, and a bad update landing mid-chunk must surface its
/// exact stream index with the preceding prefix applied exactly once.
#[test]
fn batched_wal_replay_is_bit_identical_and_reports_exact_offsets() {
    // Full-log recovery (no snapshots) over a churn stream long enough to
    // span several replay chunks.
    let stream = workload(0xBA7C, 32);
    assert!(stream.len() > 256, "need a multi-chunk replay tail");
    let (wal_dir, snap_dir) = (tmpdir("batch-wal"), tmpdir("batch-snap"));
    let mut cfg = tight_cfg(1);
    cfg.snapshot_interval = u64::MAX; // wal-only: recovery is pure replay
    let rec = crash_and_recover(&wal_dir, &snap_dir, &stream, stream.len(), cfg, || {
        forest(stream.n, 3)
    });
    assert_eq!(rec.from_snapshot, None, "replay must cover the whole log");
    let mut reference = forest(stream.n, 3);
    for u in &stream.updates {
        reference.apply_update(u).unwrap();
    }
    assert_eq!(
        encoded(&rec.sketch),
        encoded(&reference),
        "batched replay diverges from per-update replay"
    );
    fs::remove_dir_all(&wal_dir).unwrap();
    fs::remove_dir_all(&snap_dir).unwrap();

    // The apply_batch contract replay offsets rely on: a failure reports
    // the in-batch index of the bad update, with updates before it applied
    // exactly once and none after.
    let good = workload(0xBA7D, 12);
    let mut batch: Vec<Update> = good.updates[..10].to_vec();
    batch.insert(7, Update::insert(HyperEdge::pair(0, 99))); // out of range
    let mut via_batch = forest(12, 5);
    let (bad_index, _) = via_batch.apply_batch(&batch).unwrap_err();
    assert_eq!(bad_index, 7);
    let mut via_scalar = forest(12, 5);
    for u in &batch[..7] {
        via_scalar.apply_update(u).unwrap();
    }
    assert_eq!(
        encoded(&via_batch),
        encoded(&via_scalar),
        "failed batch must leave exactly the prefix applied"
    );
}

/// Supervision property (DESIGN.md, "Failure domains & degradation
/// ladder"): a shard poisoned and quarantined mid-stream, then rebuilt
/// from its newest valid snapshot plus the WAL tail, ends **bit-identical**
/// to a shard that never faulted — swept across workload seeds × fault
/// points × flush-thread counts. Linearity is what makes this possible:
/// replaying the missed suffix commutes with having applied it live.
#[test]
fn quarantined_shard_rebuilds_bit_identical_across_seeds_faults_and_threads() {
    let n = 16;
    for (trial, seed) in [21u64, 22, 23].into_iter().enumerate() {
        let stream = workload(seed, n);
        let len = stream.len();
        assert!(len >= 40, "workload too short to place interior faults");
        for (fi, fault_at) in [len / 5, len / 2, 4 * len / 5].into_iter().enumerate() {
            for threads in [1usize, 2, 3] {
                let wal = tmpdir("sup-prop-wal");
                let snap = tmpdir("sup-prop-snap");
                let cfg = SupervisorConfig {
                    repetitions: 3,
                    threads,
                    batch_size: 8,
                    rebuild_after_flushes: 1,
                    seed,
                    checkpoint: tight_cfg(seed),
                    ..SupervisorConfig::default()
                };
                let shard_seed = move |i: usize| 7000 + 100 * seed + i as u64;
                let mut sup = SupervisedIngestor::create(
                    &wal,
                    &snap,
                    stream.n,
                    stream.max_rank,
                    cfg,
                    move |i| forest(n, shard_seed(i)),
                )
                .unwrap();
                let registry = Registry::new();
                sup.set_sink(&registry.sink());

                // Rotate the victim so every repetition index gets poisoned
                // somewhere in the sweep.
                let victim = (trial + fi + threads) % 3;
                for u in &stream.updates[..fault_at] {
                    sup.push(u).unwrap();
                }
                sup.inject_apply_fault(
                    victim,
                    SketchError::failure("chaos", "poisoned mid-stream"),
                    u32::MAX,
                );
                for u in &stream.updates[fault_at..] {
                    sup.push(u).unwrap();
                }
                sup.flush().unwrap();
                // The poison must have actually cost us a quarantine (the
                // property is vacuous otherwise)...
                assert!(
                    registry
                        .counter_value("dgs_core_supervise_quarantines")
                        .unwrap_or(0)
                        >= 1,
                    "seed {seed} fault_at {fault_at} threads {threads}: victim never quarantined"
                );
                // ...and if the fault landed too late for the automatic
                // rebuild cadence, force the rebuild now — same code path.
                if sup.shard_states()[victim] != ShardState::Healthy {
                    sup.rebuild_now(victim).unwrap();
                }

                assert_eq!(
                    sup.shard_states(),
                    vec![ShardState::Healthy; 3],
                    "seed {seed} fault_at {fault_at} threads {threads}"
                );
                for i in 0..3 {
                    let mut reference = forest(n, shard_seed(i));
                    for u in &stream.updates {
                        reference.apply_update(u).unwrap();
                    }
                    assert_eq!(
                        sup.shard_encoded(i),
                        encoded(&reference),
                        "seed {seed} fault_at {fault_at} threads {threads}: \
                         shard {i} diverged from the never-faulted run"
                    );
                }
                fs::remove_dir_all(&wal).unwrap();
                fs::remove_dir_all(&snap).unwrap();
            }
        }
    }
}

/// A crash while a shard sits quarantined must not lose the quarantined
/// shard: resume rebuilds *every* repetition from the durable WAL prefix
/// (the in-memory poison dies with the process), and finishing the stream
/// afterwards is bit-identical to a run that never faulted or crashed.
#[test]
fn quarantine_survives_a_crash_and_resume_is_bit_identical() {
    let n = 14;
    let stream = workload(0x5AFE, n);
    let len = stream.len();
    let crash_at = 3 * len / 5;
    let (wal, snap) = (tmpdir("sup-crash-wal"), tmpdir("sup-crash-snap"));
    let cfg = SupervisorConfig {
        repetitions: 3,
        threads: 2,
        batch_size: 8,
        // Never auto-rebuild: the victim must still be quarantined when the
        // process "dies", so resume is what heals it.
        rebuild_after_flushes: u64::MAX,
        seed: 0x5AFE,
        checkpoint: tight_cfg(9),
        ..SupervisorConfig::default()
    };
    let build = move |i: usize| forest(n, 4400 + i as u64);

    let mut sup =
        SupervisedIngestor::create(&wal, &snap, stream.n, stream.max_rank, cfg, build).unwrap();
    for u in &stream.updates[..crash_at / 2] {
        sup.push(u).unwrap();
    }
    sup.inject_apply_fault(1, SketchError::failure("chaos", "poisoned"), u32::MAX);
    for u in &stream.updates[crash_at / 2..crash_at] {
        sup.push(u).unwrap();
    }
    sup.flush().unwrap();
    assert_eq!(sup.shard_states()[1], ShardState::Quarantined);
    drop(sup); // crash: no seal, victim still down

    let (mut sup, durable) =
        SupervisedIngestor::resume(&wal, &snap, stream.n, stream.max_rank, cfg, build).unwrap();
    assert_eq!(
        durable, crash_at as u64,
        "every pushed update was WAL-appended before the crash"
    );
    assert_eq!(
        sup.shard_states(),
        vec![ShardState::Healthy; 3],
        "resume rebuilds quarantined shards from the durable log"
    );
    for u in &stream.updates[durable as usize..] {
        sup.push(u).unwrap();
    }
    sup.flush().unwrap();
    for i in 0..3 {
        let mut reference = build(i);
        for u in &stream.updates {
            reference.apply_update(u).unwrap();
        }
        assert_eq!(
            sup.shard_encoded(i),
            encoded(&reference),
            "shard {i} diverged across crash + resume"
        );
    }
    fs::remove_dir_all(&wal).unwrap();
    fs::remove_dir_all(&snap).unwrap();
}
