//! Resilience integration suite: every injected fault is either *detected*
//! (a typed error at stream validation, ingest, assembly, or decode) or
//! *degraded gracefully* (an explicit failure/unknown, or an answer that is
//! consistent with the stream actually received) — never a silent wrong
//! answer, and never a panic. See DESIGN.md, "Failure semantics & fault
//! model".

use std::collections::BTreeMap;

use dynamic_graph_streams::prelude::*;

use dgs_hypergraph::algo::hyper_component_count;
use dgs_hypergraph::fault::ChannelError;
use dgs_hypergraph::generators;
use dgs_obs::Registry;

/// Component count of the *support* of a (possibly corrupted) stream: the
/// graph formed by edges whose net multiplicity is nonzero. This is the
/// ground truth a linear sketch that ingested the stream answers against —
/// the sketch cannot know what the sender *meant*, only what arrived.
fn support_component_count(stream: &UpdateStream) -> usize {
    let mut mult: BTreeMap<HyperEdge, i64> = BTreeMap::new();
    for u in &stream.updates {
        *mult.entry(u.edge.clone()).or_insert(0) += u.op.delta();
    }
    let edges = mult.into_iter().filter(|&(_, m)| m != 0).map(|(e, _)| e);
    hyper_component_count(&Hypergraph::from_edges(stream.n, edges))
}

#[test]
fn every_stream_fault_is_detected_or_degrades_gracefully() {
    // Every fault this loop injects (and therefore every fault the
    // assertions below prove detected) must also show up in the injector's
    // labelled counter — the observability layer may not undercount the
    // fault surface the resilience claims rest on.
    let registry = Registry::new();
    let mut injected_by_class: BTreeMap<String, u64> = BTreeMap::new();
    for class in FaultClass::ALL {
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let h = Hypergraph::from_graph(&generators::gnp(18, 0.22, &mut rng));
            let clean = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
            if clean.is_empty() {
                continue;
            }
            let mut injector = FaultInjector::new(seed * 31 + 7);
            injector.set_sink(&registry.sink());
            let (bad, fault) = injector.inject(&clean, class);
            *injected_by_class.entry(class.to_string()).or_insert(0) += 1;

            // Stage 1 — strict stream application: the reference detector.
            let strict = bad.final_hypergraph();

            // Stage 2 — a sketch ingests whatever arrives. Each element is
            // either accepted or rejected with a *non-retryable* typed
            // error; nothing panics.
            let space = EdgeSpace::graph(bad.n).unwrap();
            let params = ForestParams::new(Profile::Practical, space.dimension());
            let mut sk =
                SpanningForestSketch::new_full(space, &SeedTree::new(seed ^ 0xABCD), params);
            let mut ingest_rejected = false;
            let mut ingested = UpdateStream::new(bad.n, bad.max_rank);
            for u in &bad.updates {
                match sk.try_update(&u.edge, u.op.delta()) {
                    Ok(()) => ingested.updates.push(u.clone()),
                    Err(e) => {
                        assert!(
                            !e.is_retryable(),
                            "ingest rejection must be InvalidInput, got: {e}"
                        );
                        ingest_rejected = true;
                    }
                }
            }

            // Per-class detection guarantees.
            match class {
                FaultClass::OutOfRangeVertex => {
                    assert!(
                        ingest_rejected,
                        "out-of-range vertex must be rejected at ingest ({})",
                        fault.detail
                    );
                    assert!(matches!(strict, Err(GraphError::VertexOutOfRange { .. })));
                }
                FaultClass::DuplicateUpdate | FaultClass::DeleteAbsent => {
                    assert!(
                        matches!(strict, Err(GraphError::MultiplicityViolation(_))),
                        "{class}: strict application must detect ({})",
                        fault.detail
                    );
                }
                // A dropped update can leave a self-consistent stream; the
                // graceful-degradation check below is the guarantee.
                FaultClass::DropUpdate => {}
            }

            // Stage 3 — never a silent wrong answer: when the decode
            // certifies, the answer matches the support of what was
            // actually ingested; otherwise the failure is a typed error.
            // An Err here is fine: detected, typed, no panic.
            if let Ok(c) = sk.try_component_count() {
                assert_eq!(
                    c,
                    support_component_count(&ingested),
                    "{class} seed {seed}: silent wrong answer ({})",
                    fault.detail
                );
            }
        }
    }

    // Reconcile: each class's labelled counter equals the number of faults
    // injected (and detected or gracefully degraded) above.
    assert!(!injected_by_class.is_empty(), "no faults were injected");
    for (class, expected) in &injected_by_class {
        let key = format!("dgs_hypergraph_fault_injected{{class=\"{class}\"}}");
        assert_eq!(
            registry.counter_value(&key),
            Some(*expected),
            "fault counter {key} disagrees with the injection log"
        );
    }
}

#[test]
fn duplicated_stream_elements_trip_the_strict_decode() {
    // The strict decode's multiplicity check: a duplicated insert makes
    // some boundary weight reach ±2, impossible for a multiplicity-0/1
    // rank-2 stream. Use a single bridge edge so the duplicated edge is
    // guaranteed to be on a sampled boundary.
    let n = 4;
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let mut sk = SpanningForestSketch::new_full(space, &SeedTree::new(21), params);
    sk.try_update(&HyperEdge::pair(0, 1), 1).unwrap();
    sk.try_update(&HyperEdge::pair(0, 1), 1).unwrap(); // the duplicate
    let err = sk.try_decode_with_labels_strict().unwrap_err();
    assert!(
        !err.is_retryable(),
        "impossible weight is not retryable: {err}"
    );
    assert!(err.to_string().contains("impossible"), "{err}");

    // The non-strict decode (weighted streams legal) still answers, and
    // consistently with the support graph.
    let (_, labels) = sk.try_decode_with_labels().unwrap();
    assert_eq!(labels.component_count(), 3);
}

#[test]
fn dropped_player_messages_are_detected_by_strict_assembly() {
    let mut rng = StdRng::seed_from_u64(5);
    let h = Hypergraph::from_graph(&generators::gnp(12, 0.4, &mut rng));
    let space = EdgeSpace::graph(12).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let seeds = SeedTree::new(77);
    let incident = |v: u32| -> Vec<HyperEdge> {
        h.edges()
            .iter()
            .filter(|e| e.contains(v))
            .cloned()
            .collect()
    };
    let messages: Vec<_> = (0..12u32)
        .map(|v| player_sketch(&space, v, &incident(v), &seeds, params))
        .collect();

    // The complete set assembles into the central sketch.
    let full = assemble_players_strict(&space, messages.clone(), &seeds, params).unwrap();
    assert_eq!(
        full.decode_with_labels().1.component_count(),
        hyper_component_count(&h)
    );

    // A lost message is a typed error — not a silently-isolated vertex,
    // which is what the lenient assembly would produce.
    let mut lost = messages.clone();
    lost.remove(4);
    let err = assemble_players_strict(&space, lost, &seeds, params).unwrap_err();
    assert!(!err.is_retryable());
    assert!(err.to_string().contains("missing player message"), "{err}");

    // So is a duplicated one.
    let mut duped = messages;
    let again = duped[3].clone();
    duped.push(again);
    let err = assemble_players_strict(&space, duped, &seeds, params).unwrap_err();
    assert!(
        err.to_string().contains("duplicate player message"),
        "{err}"
    );
}

#[test]
fn sparsifier_protocol_survives_a_lossy_channel() {
    // The e15 protocol under fault injection: every player's
    // SparsifierPlayerMessage crosses a checksum-framed channel with 15%
    // loss and 10% corruption; stop-and-wait retransmission must deliver
    // every message intact, and the referee's decode must equal the
    // central sketch's.
    let n = 10;
    let mut rng = StdRng::seed_from_u64(6);
    let h = Hypergraph::from_graph(&generators::gnp(n, 0.4, &mut rng));
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let cfg = SparsifierConfig::explicit(2, 5, params);
    let seeds = SeedTree::new(88);

    let mut central = HypergraphSparsifier::new(space.clone(), cfg, &seeds);
    for e in h.edges() {
        central.update(e, 1);
    }

    let incident = |v: u32| -> Vec<HyperEdge> {
        h.edges()
            .iter()
            .filter(|e| e.contains(v))
            .cloned()
            .collect()
    };
    let mut referee = HypergraphSparsifier::new(space.clone(), cfg, &seeds);
    let mut channel = LossyChannel::new(9, 0.15, 0.10);
    for v in 0..n as u32 {
        let msg = HypergraphSparsifier::player_message(&space, &cfg, &seeds, v, &incident(v));
        let (delivered, _) = channel.transmit_with_retry(&msg, 64).unwrap();
        referee.install_player(delivered);
    }
    assert_eq!(channel.stats.delivered, n);
    assert!(
        channel.stats.losses + channel.stats.rejected > 0,
        "channel noise never exercised — raise the fault rates"
    );

    let (a, b) = (central.decode(), referee.decode());
    assert_eq!(a.per_level, b.per_level);
    let ea: Vec<_> = a.sparsifier.iter().map(|(e, w)| (e.clone(), w)).collect();
    let eb: Vec<_> = b.sparsifier.iter().map(|(e, w)| (e.clone(), w)).collect();
    assert_eq!(ea, eb);

    // A channel that always loses fails *typed*, never silently.
    let mut dead = LossyChannel::new(10, 1.0, 0.0);
    let msg = HypergraphSparsifier::player_message(&space, &cfg, &seeds, 0, &incident(0));
    assert_eq!(
        dead.transmit_with_retry(&msg, 3).unwrap_err(),
        ChannelError::Exhausted { attempts: 3 }
    );
}

#[test]
fn channel_retry_budget_is_configurable_and_exhaustion_is_typed() {
    // The channel-level budget: `transmit` uses the configured budget, a
    // budget raise turns a typed exhaustion into a delivery, and the stats
    // always account for every attempt — the caller can never block
    // forever or lose a message silently.
    let msg: Vec<u64> = (0..24).collect();

    // A very noisy (but not dead) channel with a tiny budget exhausts on
    // at least one message of a batch; the same channel parameters with a
    // generous budget deliver every message intact.
    let mut tight = LossyChannel::new(31, 0.6, 0.6).with_retry_budget(2);
    let mut exhausted = 0;
    for _ in 0..40 {
        match tight.transmit(&msg) {
            Ok((got, attempts)) => {
                assert_eq!(got, msg);
                assert!(attempts <= 2, "budget overrun: {attempts}");
            }
            Err(ChannelError::Exhausted { attempts }) => {
                assert_eq!(attempts, 2);
                exhausted += 1;
            }
        }
    }
    assert!(exhausted > 0, "tight budget never exhausted — not probing");

    let mut generous = LossyChannel::new(31, 0.6, 0.6).with_retry_budget(512);
    for _ in 0..40 {
        let (got, _) = generous
            .transmit(&msg)
            .expect("512 attempts at 36% success");
        assert_eq!(got, msg);
    }
    assert_eq!(generous.stats.delivered, 40);
}

#[test]
fn boosting_drives_the_failure_rate_down() {
    // The δ → δ^R amplification, measured on the substrate structure whose
    // per-repetition failure probability is actually visible: a starved
    // ℓ0-sampler (sparsity 1, one row) over a multi-element vector fails
    // to sample roughly a fifth of the time. (The top-level forest decode
    // hides that δ — Borůvka's cascading merges finish well inside the
    // round budget, so its end-to-end failure rate is near zero even with
    // these parameters; `parallel.rs` covers boosting that structure.)
    //
    // R sibling-seeded repetitions of the same sampler over the same
    // vector must (a) answer correctly whenever any repetition answers,
    // and (b) reach "all repetitions failed" at a rate that falls sharply
    // as R grows.
    let weak = L0Params {
        sparsity: 1,
        rows: 1,
        level_independence: 2,
    };
    let dim = 2016u64; // C(64, 2): a graph-scale index space
    let reps = 4usize;
    let trials = 150u64;
    let mut failures_by_r = vec![0usize; reps + 1]; // index = R
    for t in 0..trials {
        // A fixed 8-sparse vector per trial.
        let mut rng = StdRng::seed_from_u64(3000 + t);
        let mut support: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        while support.len() < 8 {
            support.insert(rng.gen_range(0..dim));
        }

        let seeds = SeedTree::new(7000 + t);
        let mut samplers: Vec<L0Sampler> = (0..reps)
            .map(|i| L0Sampler::new(&seeds.child(i as u64), dim, weak))
            .collect();
        for s in &mut samplers {
            for &i in &support {
                s.update(i, 1).unwrap();
            }
        }
        let boosted = BoostedQuery::from_repetitions(samplers);

        // Whenever the boosted query answers, the answer is a real element
        // of the vector with its true weight — never a fabricated one.
        match boosted.query(|s| s.sample()) {
            QueryOutcome::Answer { value, .. } => {
                let (idx, w) = value.expect("nonzero vector certified zero");
                assert!(support.contains(&idx), "sampled index {idx} not in support");
                assert_eq!(w, 1);
            }
            QueryOutcome::Unknown { .. } => {}
            QueryOutcome::Invalid(e) => panic!("clean vector flagged invalid: {e}"),
        }

        // Failure rate for every prefix R = 1..=reps of the same data: the
        // R-boosted query degrades to Unknown iff its first R repetitions
        // all fail.
        let per_rep_failed: Vec<bool> = boosted
            .sketches()
            .iter()
            .map(|s| s.sample().is_err())
            .collect();
        for r in 1..=reps {
            if per_rep_failed[..r].iter().all(|&f| f) {
                failures_by_r[r] += 1;
            }
        }
    }

    assert!(
        failures_by_r[1] >= 15,
        "single repetitions failed only {}/{trials} times — the workload no \
         longer probes the failure path",
        failures_by_r[1]
    );
    for r in 2..=reps {
        assert!(
            failures_by_r[r] <= failures_by_r[r - 1],
            "failure count rose with R: {failures_by_r:?}"
        );
    }
    assert!(
        failures_by_r[reps] * 5 < failures_by_r[1],
        "boosting did not amplify: {failures_by_r:?} over {trials} trials"
    );
}

#[test]
fn parallel_decode_outcome_matches_sequential_under_faults() {
    // Thread count and thread scheduling must not change *which* outcome a
    // faulted decode surfaces: for every injected-fault class and seed, the
    // arena engine at 1/2/4 threads returns exactly the reference
    // decoder's answer — the same forest, or the same typed error with the
    // same retryability — never a different error picked by whichever
    // worker finished first.
    use dgs_connectivity::DecodeScratch;

    let (mut ok_seen, mut err_seen) = (0usize, 0usize);
    for class in FaultClass::ALL {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(500 + seed);
            let h = Hypergraph::from_graph(&generators::gnp(16, 0.25, &mut rng));
            let clean = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
            if clean.is_empty() {
                continue;
            }
            let mut injector = FaultInjector::new(seed * 17 + 3);
            let (bad, _) = injector.inject(&clean, class);
            let space = EdgeSpace::graph(bad.n).unwrap();
            // Starved sizing induces genuine sampler failures on a healthy
            // fraction of seeds, so both the success and the
            // error-surfacing paths are compared.
            let params = ForestParams {
                l0: L0Params {
                    sparsity: 2,
                    rows: 1,
                    level_independence: 8,
                },
                extra_rounds: 0,
            };
            let mut sk =
                SpanningForestSketch::new_full(space, &SeedTree::new(seed ^ 0x5EED), params);
            for u in &bad.updates {
                // Ingest-time rejections (e.g. out-of-range vertices) are a
                // separate detection stage; here we compare decode outcomes
                // on whatever state the accepted updates produced.
                let _ = sk.try_update(&u.edge, u.op.delta());
            }
            for strict in [false, true] {
                let reference = sk.try_decode_reference(strict);
                match &reference {
                    Ok(_) => ok_seen += 1,
                    Err(_) => err_seen += 1,
                }
                for threads in [1usize, 2, 4] {
                    let engine =
                        sk.try_decode_with_scratch(strict, threads, &mut DecodeScratch::new());
                    match (&reference, &engine) {
                        (Ok((re, _)), Ok((ee, _))) => assert_eq!(
                            re, ee,
                            "{class:?} seed {seed} strict={strict} threads={threads}"
                        ),
                        (Err(a), Err(b)) => assert_eq!(
                            (a.is_retryable(), a.to_string()),
                            (b.is_retryable(), b.to_string()),
                            "{class:?} seed {seed} strict={strict} threads={threads}"
                        ),
                        _ => panic!(
                            "{class:?} seed {seed} strict={strict} threads={threads}: \
                             reference {reference:?} vs engine {engine:?}"
                        ),
                    }
                }
            }
        }
    }
    assert!(
        ok_seen > 0 && err_seen > 0,
        "workload must exercise both outcomes: {ok_seen} ok, {err_seen} err"
    );
}

/// Truth for a stream prefix: component count of the support of
/// `updates[..len]`.
fn prefix_component_count(stream: &UpdateStream, len: usize) -> usize {
    let prefix = UpdateStream {
        updates: stream.updates[..len].to_vec(),
        ..stream.clone()
    };
    support_component_count(&prefix)
}

#[test]
fn degraded_queries_widen_delta_but_never_the_answer() {
    // The degradation ladder (DESIGN.md, "Failure domains & degradation
    // ladder"): as shards are poisoned and quarantined one by one, the
    // supervised query keeps answering from the R' survivors. The reported
    // confidence must track the loss exactly — effective_delta = δ^R' with
    // R' the *live* repetition count — while the answer itself never moves:
    // a value is only ever drawn from a live repetition's successful
    // decode, so on a decodable instance it equals the exact component
    // count of the stream received so far or the query says Unknown.
    let n = 16;
    let mut rng = StdRng::seed_from_u64(0xDE6);
    let h = Hypergraph::from_graph(&generators::gnp(n, 0.3, &mut rng));
    let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
    let step = 16; // one flush per quarantine rung
    assert!(stream.len() > 4 * step, "stream too short for the ladder");
    let head = stream.len() - 3 * step;

    let reps = 4;
    let cfg = SupervisorConfig {
        repetitions: reps,
        threads: 2,
        batch_size: step,
        // No self-healing: each rung must *stay* degraded while we probe it.
        rebuild_after_flushes: u64::MAX,
        seed: 0xDE6,
        ..SupervisorConfig::default()
    };
    let wal = std::env::temp_dir().join(format!("dgs-degrade-wal-{}", std::process::id()));
    let snap = std::env::temp_dir().join(format!("dgs-degrade-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal);
    let _ = std::fs::remove_dir_all(&snap);
    let mut sup =
        SupervisedIngestor::create(&wal, &snap, stream.n, stream.max_rank, cfg, move |i| {
            let space = EdgeSpace::graph(n).unwrap();
            let params = ForestParams::new(Profile::Practical, space.dimension());
            SpanningForestSketch::new_full(space, &SeedTree::new(0xDE60 + i as u64), params)
        })
        .unwrap();

    for u in &stream.updates[..head] {
        sup.push(u).unwrap();
    }
    sup.flush().unwrap();

    let delta = cfg.delta;
    for rung in 0..=3usize {
        let consumed = head + rung * step;
        let live = reps - rung;
        assert_eq!(sup.live_repetitions(), live, "rung {rung}");
        let truth = prefix_component_count(&stream, consumed);
        let answer = sup
            .query(&QueryBudget::default(), |_, s: &SpanningForestSketch| {
                s.try_component_count()
            })
            .unwrap();
        match answer {
            SupervisedAnswer::Full { value, .. } => {
                assert_eq!(rung, 0, "Full answer from a depleted ensemble");
                assert_eq!(value, truth, "rung {rung}: silent wrong answer");
            }
            SupervisedAnswer::Degraded {
                value,
                healthy_repetitions,
                total_repetitions,
                effective_delta,
                ..
            } => {
                assert!(rung > 0, "Degraded answer from a full ensemble");
                assert_eq!(value, truth, "rung {rung}: silent wrong answer");
                assert_eq!(healthy_repetitions, live, "rung {rung}");
                assert_eq!(total_repetitions, reps, "rung {rung}");
                assert!(
                    (effective_delta - delta.powi(live as i32)).abs() < 1e-12,
                    "rung {rung}: effective_delta {effective_delta} vs δ^{live}"
                );
            }
            // An honest per-repetition δ event: every live decode failed.
            // Allowed — but the reported residual confidence must still
            // track the live count exactly.
            SupervisedAnswer::Unknown {
                healthy_repetitions,
                effective_delta,
                ..
            } => {
                assert_eq!(healthy_repetitions, live, "rung {rung}");
                assert!(
                    (effective_delta - delta.powi(live as i32)).abs() < 1e-12,
                    "rung {rung}: effective_delta {effective_delta} vs δ^{live}"
                );
            }
            other => panic!("rung {rung}: unexpected outcome {other:?}"),
        }
        if rung < 3 {
            sup.inject_apply_fault(
                rung,
                SketchError::failure("chaos", "ladder poison"),
                u32::MAX,
            );
            for u in &stream.updates[consumed..consumed + step] {
                sup.push(u).unwrap();
            }
            sup.flush().unwrap();
            assert_eq!(
                sup.shard_states()[rung],
                ShardState::Quarantined,
                "rung {} poison did not quarantine",
                rung + 1
            );
        }
    }
    std::fs::remove_dir_all(&wal).unwrap();
    std::fs::remove_dir_all(&snap).unwrap();
}

#[test]
fn partial_ensemble_unknown_rate_respects_the_widened_bound() {
    // E18's empirical-vs-theoretical check, replayed at the ensemble layer:
    // drive `query_ensemble` directly with R' = 2 live starved samplers
    // (δ = 1/2 each, the paper's constant-failure regime) out of a
    // configured R = 4, over adversarial insert/delete vectors. The
    // observed Unknown rate must stay within 2x of the *widened* bound
    // δ^R' — and every answer must still be a true churn survivor.
    use dynamic_graph_streams::core::supervise::{query_ensemble, QueryPolicy};
    use std::collections::BTreeSet;

    const DIM: u64 = 2016; // C(64, 2): a graph-scale index space
    const SUPPORT: usize = 8;
    const CHURN: usize = 32;
    let starved = L0Params {
        sparsity: 1,
        rows: 1,
        level_independence: 2,
    };
    let (r_total, r_live) = (4usize, 2usize);
    let delta = 0.5f64;
    let trials = 300u64;

    let mut unknowns = 0u64;
    let mut full_unknowns = 0u64;
    for t in 0..trials {
        // The adversarial vector: SUPPORT + CHURN distinct indices in, the
        // CHURN half deleted again in reverse, forcing exact cancellation.
        let mut rng = StdRng::seed_from_u64(0xFA17_0000 + t);
        let mut indices: BTreeSet<u64> = BTreeSet::new();
        while indices.len() < SUPPORT + CHURN {
            indices.insert(rng.gen_range(0..DIM));
        }
        let indices: Vec<u64> = indices.into_iter().collect();
        let support: BTreeSet<u64> = indices.iter().take(SUPPORT).copied().collect();

        let seeds = SeedTree::new(0xD06_0000 + t);
        let mut samplers: Vec<L0Sampler> = (0..r_total)
            .map(|i| L0Sampler::new(&seeds.child(i as u64), DIM, starved))
            .collect();
        for s in samplers.iter_mut() {
            for &i in &indices {
                s.update(i, 1).unwrap();
            }
            for &i in indices.iter().skip(SUPPORT).rev() {
                s.update(i, -1).unwrap();
            }
        }

        // The degraded ensemble: only the first R' of the R repetitions are
        // live (the rest "quarantined").
        let live: Vec<(usize, &L0Sampler)> = samplers.iter().enumerate().take(r_live).collect();
        let out = query_ensemble(
            &live,
            r_total,
            delta,
            &QueryBudget::default(),
            QueryPolicy::FirstSuccess,
            |_, s| s.sample(),
        );
        match out.answer {
            SupervisedAnswer::Degraded {
                value,
                healthy_repetitions,
                effective_delta,
                ..
            } => {
                assert_eq!(healthy_repetitions, r_live, "trial {t}");
                assert!(
                    (effective_delta - delta.powi(r_live as i32)).abs() < 1e-12,
                    "trial {t}: effective_delta {effective_delta}"
                );
                let (index, weight) = value.expect("nonzero vector certified zero");
                assert!(
                    support.contains(&index),
                    "trial {t}: sampled cancelled index {index} — a silent wrong answer"
                );
                assert_eq!(weight, 1, "trial {t}: wrong recovered weight");
            }
            SupervisedAnswer::Unknown {
                healthy_repetitions,
                effective_delta,
                ..
            } => {
                assert_eq!(healthy_repetitions, r_live, "trial {t}");
                assert!(
                    (effective_delta - delta.powi(r_live as i32)).abs() < 1e-12,
                    "trial {t}: effective_delta {effective_delta}"
                );
                unknowns += 1;
            }
            other => panic!("trial {t}: unexpected outcome {other:?}"),
        }

        // Control: the same trial with every repetition live. Used below to
        // show the degradation is real, not an artifact of a loose δ.
        let full: Vec<(usize, &L0Sampler)> = samplers.iter().enumerate().collect();
        let out = query_ensemble(
            &full,
            r_total,
            delta,
            &QueryBudget::default(),
            QueryPolicy::FirstSuccess,
            |_, s| s.sample(),
        );
        match out.answer {
            SupervisedAnswer::Full { .. } => {}
            SupervisedAnswer::Unknown { .. } => full_unknowns += 1,
            other => panic!("trial {t}: unexpected full-ensemble outcome {other:?}"),
        }
    }

    let observed = unknowns as f64 / trials as f64;
    let bound = delta.powi(r_live as i32);
    assert!(
        observed <= 2.0 * bound,
        "observed Unknown rate {observed:.4} exceeds 2x the widened bound {bound:.4}"
    );
    // The widening is real: losing half the ensemble must cost strictly
    // more residual failures than the full ensemble pays on the identical
    // trials (otherwise the test never exercised the degraded regime).
    assert!(
        unknowns > full_unknowns,
        "partial ensemble ({unknowns} unknowns) did not fail more often than \
         the full ensemble ({full_unknowns}) — the degraded regime was not exercised"
    );
}
