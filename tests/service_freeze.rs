//! Property: a query against an epoch-tagged frozen view is byte-identical
//! to a stop-the-world query at the same update offset.
//!
//! The freeze is O(R) refcount bumps over live shards, and sketch linearity
//! makes every ingest path — scalar, batched, striped across any thread
//! count — land the identical bits for a given prefix. So a view frozen
//! mid-batch at offset `cut` must (a) encode every shard exactly as a
//! sequential replay of `updates[..cut]` does, (b) answer queries exactly
//! as that replay does, and (c) stay immutable while ingest continues past
//! it. The grid below drives that across seeds × supervisor thread counts
//! × mid-batch freeze points, plus the same property through the
//! `ConnectivityService` refresh path.

use std::sync::atomic::{AtomicUsize, Ordering};

use dynamic_graph_streams::field::{Codec, Writer};
use dynamic_graph_streams::hypergraph::generators::{churn_stream, gnp, ChurnConfig};
use dynamic_graph_streams::prelude::*;

const N: usize = 16;

fn forest(seed: u64) -> impl Fn(usize) -> SpanningForestSketch + Send + Sync + Clone {
    move |i| {
        let space = EdgeSpace::graph(N).expect("edge space");
        let params = ForestParams::new(Profile::Practical, space.dimension());
        SpanningForestSketch::new_full(space, &SeedTree::new(seed).child(i as u64), params)
    }
}

fn workload(seed: u64, len: usize) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let h = Hypergraph::from_graph(&gnp(N, 0.4, &mut rng));
    let mut updates = churn_stream(
        &h,
        ChurnConfig {
            noise_ratio: 2.0,
            churn_ratio: 0.5,
        },
        &mut rng,
    )
    .updates;
    updates.truncate(len);
    updates
}

fn encoded(s: &SpanningForestSketch) -> Vec<u8> {
    let mut w = Writer::new();
    s.encode(&mut w);
    w.into_bytes()
}

fn sup_config(seed: u64, threads: usize) -> SupervisorConfig {
    SupervisorConfig {
        repetitions: 3,
        threads,
        batch_size: 16,
        seed,
        ..SupervisorConfig::default()
    }
}

/// The stop-the-world reference: each repetition replayed sequentially
/// over `updates[..cut]`, plus the answer a query would give.
fn reference(
    build: &impl Fn(usize) -> SpanningForestSketch,
    updates: &[Update],
    cut: usize,
    repetitions: usize,
) -> (Vec<Vec<u8>>, usize) {
    let sketches: Vec<SpanningForestSketch> = (0..repetitions)
        .map(|i| {
            let mut s = build(i);
            for u in &updates[..cut] {
                s.apply_update(u).expect("reference apply");
            }
            s
        })
        .collect();
    let value = sketches[0].try_component_count().expect("reference decode");
    (sketches.iter().map(encoded).collect(), value)
}

#[test]
fn frozen_view_is_byte_identical_to_stop_the_world() {
    let len = 200;
    // Freeze points deliberately not multiples of batch_size = 16: the
    // freeze must flush a partial batch before cloning shard handles.
    for seed in [11u64, 29, 47] {
        let updates = workload(seed, len);
        for threads in [1usize, 2, 3] {
            for cut in [33usize, 101, 187] {
                let dirs = std::env::temp_dir().join(format!(
                    "dgs-freeze-{}-{seed}-{threads}-{cut}",
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&dirs);
                let build = forest(seed ^ 0xF0);
                let mut sup = SupervisedIngestor::create(
                    dirs.join("wal"),
                    dirs.join("snap"),
                    N,
                    2,
                    sup_config(seed, threads),
                    build.clone(),
                )
                .expect("create");
                for u in &updates[..cut] {
                    sup.push(u).expect("push");
                }
                let view: FrozenEnsemble<SpanningForestSketch> = sup.freeze().expect("freeze");
                assert_eq!(view.epoch(), cut as u64, "freeze tags the update offset");

                // Ingest continues past the freeze before the view is read:
                // the view must be immune to everything after `cut`.
                for u in &updates[cut..] {
                    sup.push(u).expect("push tail");
                }
                sup.flush().expect("flush tail");

                let (ref_bytes, ref_value) = reference(&build, &updates, cut, 3);
                assert_eq!(view.repetitions(), 3);
                for (i, shard) in view.shards() {
                    assert_eq!(
                        encoded(shard),
                        ref_bytes[i],
                        "shard {i} (seed {seed}, threads {threads}, cut {cut}) \
                         diverged from the sequential replay"
                    );
                }

                let outcome = view.query(
                    &QueryBudget::default(),
                    QueryPolicy::Majority,
                    None,
                    |_, s: &SpanningForestSketch| s.try_component_count(),
                );
                match outcome.answer {
                    SupervisedAnswer::Full { value, .. } => assert_eq!(
                        value, ref_value,
                        "frozen answer != stop-the-world answer at cut {cut}"
                    ),
                    other => panic!("expected a full answer, got {other:?}"),
                }
                let _ = std::fs::remove_dir_all(&dirs);
            }
        }
    }
}

#[test]
fn service_refresh_serves_the_frozen_offset_while_ingest_continues() {
    let len = 160;
    let seed = 83u64;
    let updates = workload(seed, len);
    let cut = 77usize; // mid-batch for batch_size = 16

    let dirs = std::env::temp_dir().join(format!("dgs-freeze-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dirs);
    let svc: ConnectivityService<SpanningForestSketch> = ConnectivityService::new(ServiceConfig {
        refresh_interval: 0, // manual refresh only: the test pins the epoch
        ..ServiceConfig::default()
    });
    let build = forest(seed ^ 0xF0);
    svc.add_tenant(
        "t0",
        dirs.join("wal"),
        dirs.join("snap"),
        N,
        2,
        sup_config(seed, 2),
        build.clone(),
    )
    .expect("add tenant");

    for u in &updates[..cut] {
        svc.push("t0", u).expect("push");
    }
    assert_eq!(svc.refresh_view("t0").expect("refresh"), cut as u64);
    for u in &updates[cut..] {
        svc.push("t0", u).expect("push tail");
    }
    svc.flush("t0").expect("flush tail");
    assert_eq!(svc.ingested("t0").expect("ingested"), updates.len() as u64);

    let (_, ref_value) = reference(&build, &updates, cut, 3);
    let decodes = AtomicUsize::new(0);
    let resp = svc
        .query(
            "t0",
            &QueryRequest {
                policy: QueryPolicy::Majority,
                ..QueryRequest::default()
            },
            |_, s: &SpanningForestSketch| {
                decodes.fetch_add(1, Ordering::Relaxed);
                s.try_component_count()
            },
        )
        .expect("query");
    assert_eq!(resp.epoch, cut as u64, "answered off the frozen epoch");
    assert!(decodes.load(Ordering::Relaxed) >= 1);
    match resp.answer {
        SupervisedAnswer::Full { value, .. } => assert_eq!(
            value, ref_value,
            "service answer != stop-the-world answer at the frozen offset"
        ),
        other => panic!("expected a full answer, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dirs);
}
