//! Cross-crate property tests: randomized streams against exact ground
//! truth, linearity laws, and model equivalences.

use proptest::prelude::*;

use dynamic_graph_streams::prelude::*;
use rand::prelude::*;

use dgs_hypergraph::algo;

/// Strategy: a random valid dynamic graph stream on `n` vertices — random
/// interleavings of inserts and deletes with legal multiplicities.
fn arb_stream(n: usize, max_ops: usize) -> impl Strategy<Value = UpdateStream> {
    (
        prop::collection::vec((0u32..n as u32, 0u32..n as u32, any::<bool>()), 1..max_ops),
        any::<u64>(),
    )
        .prop_map(move |(raw, _seed)| {
            let mut live = std::collections::BTreeSet::new();
            let mut stream = UpdateStream::new(n, 2);
            for (a, b, prefer_delete) in raw {
                if a == b {
                    continue;
                }
                let e = HyperEdge::pair(a, b);
                if live.contains(&e) && prefer_delete {
                    live.remove(&e);
                    stream.push_delete(e);
                } else if !live.contains(&e) {
                    live.insert(e.clone());
                    stream.push_insert(e);
                }
            }
            stream
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The forest sketch's component count equals the exact count of the
    /// final graph, for arbitrary legal insert/delete interleavings.
    #[test]
    fn forest_sketch_matches_exact_components(stream in arb_stream(14, 60), seed in 0u64..1000) {
        let g = stream.final_graph().unwrap();
        let space = EdgeSpace::graph(14).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let mut sk = SpanningForestSketch::new_full(space, &SeedTree::new(seed), params);
        for u in &stream.updates {
            sk.update(&u.edge, u.op.delta());
        }
        let (forest, labels) = sk.decode_with_labels();
        prop_assert_eq!(labels.component_count(), algo::component_count(&g));
        for e in &forest {
            let (u, v) = e.as_pair();
            prop_assert!(g.has_edge(u, v), "phantom edge {:?}", e);
        }
    }

    /// Linearity: sketch(A) + sketch(B) decodes the union when A and B are
    /// edge-disjoint (the distributed aggregation use case).
    #[test]
    fn sketch_addition_is_graph_union(split_mask in 0u32..(1 << 12), seed in 0u64..1000) {
        let n = 8;
        let all: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(seed);
        let mut a = SpanningForestSketch::new_full(space.clone(), &seeds, params);
        let mut b = SpanningForestSketch::new_full(space.clone(), &seeds, params);
        let mut full = SpanningForestSketch::new_full(space, &seeds, params);
        for (i, &(u, v)) in all.iter().enumerate().take(12) {
            let e = HyperEdge::pair(u, v);
            full.update(&e, 1);
            if split_mask >> i & 1 == 1 {
                a.update(&e, 1);
            } else {
                b.update(&e, 1);
            }
        }
        a.add_assign_sketch(&b);
        prop_assert_eq!(a.decode(), full.decode());
    }

    /// Update order never matters (streams are linear functionals).
    #[test]
    fn stream_order_is_irrelevant(stream in arb_stream(10, 40), seed in 0u64..1000, shuffle_seed in 0u64..1000) {
        let space = EdgeSpace::graph(10).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(seed);
        let mut in_order = SpanningForestSketch::new_full(space.clone(), &seeds, params);
        for u in &stream.updates {
            in_order.update(&u.edge, u.op.delta());
        }
        // Apply the same multiset of (edge, delta) pairs in shuffled order —
        // transiently negative multiplicities are fine for a linear sketch.
        let mut shuffled = stream.updates.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let mut out_of_order = SpanningForestSketch::new_full(space, &seeds, params);
        for u in &shuffled {
            out_of_order.update(&u.edge, u.op.delta());
        }
        prop_assert_eq!(in_order.decode(), out_of_order.decode());
    }

    /// The certificate's removal answers agree with exact answers for
    /// singleton removals (k = 1 regime of Theorem 4).
    #[test]
    fn single_vertex_removal_queries_match(stream in arb_stream(10, 50), seed in 0u64..200) {
        let g = stream.final_graph().unwrap();
        // Only meaningful when connected (Theorem 4 setting).
        prop_assume!(algo::is_connected(&g));
        let space = EdgeSpace::graph(10).unwrap();
        let cfg = VertexConnConfig::query(1, 10, 6.0, Profile::Practical);
        let mut sk = VertexConnSketch::new(space, cfg, &SeedTree::new(seed));
        for u in &stream.updates {
            sk.update(&u.edge, u.op.delta());
        }
        let cert = sk.certificate();
        for v in 0..10u32 {
            prop_assert_eq!(
                cert.disconnects(&[v]),
                algo::vertex_conn::disconnects(&g, &[v]),
                "vertex {}", v
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// light_k recovered from a sketch equals exact light_k, which equals
    /// the strength filter (Thm 15 + Lemma 16), on arbitrary streams.
    #[test]
    fn light_recovery_equals_strength_filter(stream in arb_stream(9, 40), k in 1usize..3, seed in 0u64..200) {
        let g = stream.final_graph().unwrap();
        let space = EdgeSpace::graph(9).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let mut sk = LightRecoverySketch::new(space, k, &SeedTree::new(seed), params);
        for u in &stream.updates {
            sk.update(&u.edge, u.op.delta());
        }
        let recovered: std::collections::BTreeSet<HyperEdge> =
            sk.recover().edges().into_iter().collect();
        let strengths = algo::strength::edge_strengths(&g);
        for (u, v) in g.edges() {
            let in_light = recovered.contains(&HyperEdge::pair(u, v));
            prop_assert_eq!(in_light, strengths[&(u, v)] <= k, "edge ({},{})", u, v);
        }
    }
}
