//! Cross-crate property tests: randomized streams against exact ground
//! truth, linearity laws, and model equivalences. Each test runs a fixed
//! number of deterministic seeded trials (the in-tree PRNG replaces the
//! old proptest strategies).

use dgs_field::prng::*;
use dynamic_graph_streams::prelude::*;

use dgs_hypergraph::algo;

/// A random valid dynamic graph stream on `n` vertices — random
/// interleavings of inserts and deletes with legal multiplicities.
fn random_stream(n: usize, max_ops: usize, rng: &mut StdRng) -> UpdateStream {
    let ops = rng.gen_range(1..max_ops);
    let mut live = std::collections::BTreeSet::new();
    let mut stream = UpdateStream::new(n, 2);
    for _ in 0..ops {
        let a = rng.gen_range(0u32..n as u32);
        let b = rng.gen_range(0u32..n as u32);
        let prefer_delete = rng.gen_bool(0.5);
        if a == b {
            continue;
        }
        let e = HyperEdge::pair(a, b);
        if live.contains(&e) && prefer_delete {
            live.remove(&e);
            stream.push_delete(e);
        } else if !live.contains(&e) {
            live.insert(e.clone());
            stream.push_insert(e);
        }
    }
    stream
}

/// The forest sketch's component count equals the exact count of the
/// final graph, for arbitrary legal insert/delete interleavings.
#[test]
fn forest_sketch_matches_exact_components() {
    let mut rng = StdRng::seed_from_u64(0x70);
    for trial in 0..24u64 {
        let stream = random_stream(14, 60, &mut rng);
        let g = stream.final_graph().unwrap();
        let space = EdgeSpace::graph(14).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let mut sk = SpanningForestSketch::new_full(space, &SeedTree::new(trial), params);
        for u in &stream.updates {
            sk.update(&u.edge, u.op.delta());
        }
        let (forest, labels) = sk.decode_with_labels();
        assert_eq!(
            labels.component_count(),
            algo::component_count(&g),
            "trial {trial}"
        );
        for e in &forest {
            let (u, v) = e.as_pair();
            assert!(g.has_edge(u, v), "phantom edge {e:?}");
        }
    }
}

/// Linearity: sketch(A) + sketch(B) decodes the union when A and B are
/// edge-disjoint (the distributed aggregation use case).
#[test]
fn sketch_addition_is_graph_union() {
    let mut rng = StdRng::seed_from_u64(0x71);
    for trial in 0..24u64 {
        let split_mask = rng.gen_range(0u32..(1 << 12));
        let n = 8;
        let all: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(trial);
        let mut a = SpanningForestSketch::new_full(space.clone(), &seeds, params);
        let mut b = SpanningForestSketch::new_full(space.clone(), &seeds, params);
        let mut full = SpanningForestSketch::new_full(space, &seeds, params);
        for (i, &(u, v)) in all.iter().enumerate().take(12) {
            let e = HyperEdge::pair(u, v);
            full.update(&e, 1);
            if split_mask >> i & 1 == 1 {
                a.update(&e, 1);
            } else {
                b.update(&e, 1);
            }
        }
        a.add_assign_sketch(&b);
        assert_eq!(a.decode(), full.decode(), "trial {trial}");
    }
}

/// Update order never matters (streams are linear functionals).
#[test]
fn stream_order_is_irrelevant() {
    let mut rng = StdRng::seed_from_u64(0x72);
    for trial in 0..24u64 {
        let stream = random_stream(10, 40, &mut rng);
        let space = EdgeSpace::graph(10).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(trial);
        let mut in_order = SpanningForestSketch::new_full(space.clone(), &seeds, params);
        for u in &stream.updates {
            in_order.update(&u.edge, u.op.delta());
        }
        // Apply the same multiset of (edge, delta) pairs in shuffled order —
        // transiently negative multiplicities are fine for a linear sketch.
        let mut shuffled = stream.updates.clone();
        shuffled.shuffle(&mut rng);
        let mut out_of_order = SpanningForestSketch::new_full(space, &seeds, params);
        for u in &shuffled {
            out_of_order.update(&u.edge, u.op.delta());
        }
        assert_eq!(in_order.decode(), out_of_order.decode(), "trial {trial}");
    }
}

/// The certificate's removal answers agree with exact answers for
/// singleton removals (k = 1 regime of Theorem 4).
#[test]
fn single_vertex_removal_queries_match() {
    let mut rng = StdRng::seed_from_u64(0x73);
    let mut connected_trials = 0;
    let mut trial = 0u64;
    while connected_trials < 12 {
        trial += 1;
        let stream = random_stream(10, 50, &mut rng);
        let g = stream.final_graph().unwrap();
        // Only meaningful when connected (Theorem 4 setting).
        if !algo::is_connected(&g) {
            continue;
        }
        connected_trials += 1;
        let space = EdgeSpace::graph(10).unwrap();
        let cfg = VertexConnConfig::query(1, 10, 6.0, Profile::Practical);
        let mut sk = VertexConnSketch::new(space, cfg, &SeedTree::new(trial));
        for u in &stream.updates {
            sk.update(&u.edge, u.op.delta());
        }
        let cert = sk.certificate();
        for v in 0..10u32 {
            assert_eq!(
                cert.disconnects(&[v]),
                algo::vertex_conn::disconnects(&g, &[v]),
                "trial {trial}, vertex {v}"
            );
        }
    }
}

/// light_k recovered from a sketch equals exact light_k, which equals
/// the strength filter (Thm 15 + Lemma 16), on arbitrary streams.
#[test]
fn light_recovery_equals_strength_filter() {
    use dynamic_graph_streams::core::LightRecoverySketch;
    let mut rng = StdRng::seed_from_u64(0x74);
    for trial in 0..12u64 {
        let stream = random_stream(9, 40, &mut rng);
        let k = rng.gen_range(1usize..3);
        let g = stream.final_graph().unwrap();
        let space = EdgeSpace::graph(9).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let mut sk = LightRecoverySketch::new(space, k, &SeedTree::new(trial), params);
        for u in &stream.updates {
            sk.update(&u.edge, u.op.delta());
        }
        let recovered: std::collections::BTreeSet<HyperEdge> =
            sk.recover().edges().into_iter().collect();
        let strengths = algo::strength::edge_strengths(&g);
        for (u, v) in g.edges() {
            let in_light = recovered.contains(&HyperEdge::pair(u, v));
            assert_eq!(
                in_light,
                strengths[&(u, v)] <= k,
                "trial {trial}, edge ({u},{v})"
            );
        }
    }
}

/// Batched ingestion — single-sketch, striped, and the sharded boosted
/// ingestor — is byte-identical (Codec encoding) to per-update ingestion,
/// across seeds, batch sizes, and thread counts, on random insert/delete
/// streams salted with immediately-cancelling pairs (which the batched
/// path aggregates away in the field).
#[test]
fn batched_ingest_encodes_byte_identical_to_sequential() {
    use dgs_field::{Codec, Writer};
    fn encoded<T: Codec>(t: &T) -> Vec<u8> {
        let mut w = Writer::new();
        t.encode(&mut w);
        w.into_bytes()
    }
    let n = 12;
    let mut rng = StdRng::seed_from_u64(0x75);
    for trial in 0..6u64 {
        let stream = random_stream(n, 120, &mut rng);
        let mut pairs: Vec<(HyperEdge, i64)> = stream
            .updates
            .iter()
            .map(|u| (u.edge.clone(), u.op.delta()))
            .collect();
        // Salt with cancelling insert/delete pairs at random positions.
        for _ in 0..10 {
            let a = rng.gen_range(0u32..n as u32);
            let b = (a + 1 + rng.gen_range(0u32..(n - 1) as u32)) % n as u32;
            let at = rng.gen_range(0..=pairs.len());
            pairs.insert(at, (HyperEdge::pair(a, b), -1));
            pairs.insert(at, (HyperEdge::pair(a, b), 1));
        }
        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let seeds = SeedTree::new(0xF0 + trial);

        let mut seq = SpanningForestSketch::new_full(space.clone(), &seeds, params);
        for (e, d) in &pairs {
            seq.try_update(e, *d).unwrap();
        }
        let expected = encoded(&seq);

        for batch in [1usize, 7, 256] {
            let mut sk = SpanningForestSketch::new_full(space.clone(), &seeds, params);
            for chunk in pairs.chunks(batch) {
                sk.try_update_batch(chunk).unwrap();
            }
            assert_eq!(encoded(&sk), expected, "trial {trial}, batch {batch}");
            for threads in [2usize, 5] {
                let mut sk = SpanningForestSketch::new_full(space.clone(), &seeds, params);
                for chunk in pairs.chunks(batch) {
                    sk.try_update_batch_striped(chunk, threads).unwrap();
                }
                assert_eq!(
                    encoded(&sk),
                    expected,
                    "trial {trial}, batch {batch}, threads {threads}"
                );
            }
        }

        // Boosted repetitions through the sharded ingestor.
        let build = |i: usize| {
            SpanningForestSketch::new_full(space.clone(), &seeds.child(i as u64), params)
        };
        let mut serial = BoostedQuery::new(3, build);
        for (e, d) in &pairs {
            serial.try_update(e, *d).unwrap();
        }
        let expected_reps: Vec<Vec<u8>> = serial.sketches().iter().map(encoded).collect();
        for (threads, batch) in [(1usize, 7usize), (2, 64), (3, 256)] {
            let mut ing = ShardedIngestor::with_build(3, threads, batch, build);
            for (e, d) in &pairs {
                ing.push(e, *d).unwrap();
            }
            let boosted = ing.finish().unwrap();
            let got: Vec<Vec<u8>> = boosted.sketches().iter().map(encoded).collect();
            assert_eq!(
                got, expected_reps,
                "trial {trial}, threads {threads}, batch {batch}"
            );
        }
    }
}

/// The persistent sticky pool preserves byte-identity across
/// lane-straddling batch sizes × thread counts × mid-batch drains, and
/// across many reuse cycles of the caller thread's cached pool — every
/// combination below runs on this test thread, so the same pool (grown in
/// place when a wider thread count appears) serves striped forest updates
/// and sharded boosted ingestion back to back. A stale mailbox or worker
/// left over from a previous scope would surface as a byte difference.
#[test]
fn pooled_ingest_is_identical_across_lanes_threads_and_drains() {
    use dgs_field::{Codec, Writer};
    fn encoded<T: Codec>(t: &T) -> Vec<u8> {
        let mut w = Writer::new();
        t.encode(&mut w);
        w.into_bytes()
    }
    let n = 12;
    let mut rng = StdRng::seed_from_u64(0xD00F);
    let stream = random_stream(n, 140, &mut rng);
    let pairs: Vec<(HyperEdge, i64)> = stream
        .updates
        .iter()
        .map(|u| (u.edge.clone(), u.op.delta()))
        .collect();
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let seeds = SeedTree::new(0xD00F);

    // Sequential references: single sketch and 5 boosted repetitions.
    let mut seq = SpanningForestSketch::new_full(space.clone(), &seeds, params);
    for (e, d) in &pairs {
        seq.try_update(e, *d).unwrap();
    }
    let expected = encoded(&seq);
    let build =
        |i: usize| SpanningForestSketch::new_full(space.clone(), &seeds.child(i as u64), params);
    let mut serial = BoostedQuery::new(5, build);
    for (e, d) in &pairs {
        serial.try_update(e, *d).unwrap();
    }
    let expected_reps: Vec<Vec<u8>> = serial.sketches().iter().map(encoded).collect();

    // Lane widths straddle the 4-lane field kernels; `threads = 8` exceeds
    // the 5 repetitions and must clamp. The thread counts deliberately
    // shrink and regrow so the cached pool is exercised at every width.
    for threads in [1usize, 2, 3, 8, 2] {
        for batch in [1usize, 3, 4, 5, 8, 64] {
            // Striped forest updates share the pool with the ingestor runs.
            let mut sk = SpanningForestSketch::new_full(space.clone(), &seeds, params);
            for chunk in pairs.chunks(batch) {
                sk.try_update_batch_striped(chunk, threads).unwrap();
            }
            assert_eq!(encoded(&sk), expected, "striped t={threads}, b={batch}");

            let mut ing = ShardedIngestor::with_build(5, threads, batch, build);
            for (j, (e, d)) in pairs.iter().enumerate() {
                ing.push(e, *d).unwrap();
                // Mid-batch drains at a stride coprime to every batch size.
                if j % 17 == 0 {
                    ing.flush().unwrap();
                }
            }
            let boosted = ing.finish().unwrap();
            let got: Vec<Vec<u8>> = boosted.sketches().iter().map(encoded).collect();
            assert_eq!(got, expected_reps, "sharded t={threads}, b={batch}");
        }
    }
}
