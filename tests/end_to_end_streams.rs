//! End-to-end integration: dynamic streams → sketches → decoded answers,
//! validated against exact algorithms across crates.

use dynamic_graph_streams::prelude::*;

use dgs_hypergraph::algo;
use dgs_hypergraph::generators;

fn feed<F: FnMut(&HyperEdge, i64)>(stream: &UpdateStream, mut f: F) {
    for u in &stream.updates {
        f(&u.edge, u.op.delta());
    }
}

#[test]
fn forest_sketch_tracks_connectivity_through_full_lifecycle() {
    // One sketch, three graph phases: grow to connected, shrink to
    // disconnected, regrow. The verdict must track every phase.
    let n = 20;
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let mut sk = SpanningForestSketch::new_full(space, &SeedTree::new(1), params);

    // Phase 1: a path (connected).
    for v in 0..(n - 1) as u32 {
        sk.update(&HyperEdge::pair(v, v + 1), 1);
    }
    assert!(sk.is_connected());

    // Phase 2: cut the middle edge (two components).
    sk.update(&HyperEdge::pair(9, 10), -1);
    assert_eq!(sk.component_count(), 2);

    // Phase 3: bridge the halves elsewhere.
    sk.update(&HyperEdge::pair(0, 19), 1);
    assert!(sk.is_connected());
}

#[test]
fn vertex_connectivity_pipeline_matches_exact_on_harary_family() {
    let mut rng = StdRng::seed_from_u64(2);
    for (kappa, n) in [(2usize, 18usize), (3, 18)] {
        let g = generators::harary(kappa, n);
        let h = Hypergraph::from_graph(&g);
        let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
        let space = EdgeSpace::graph(n).unwrap();
        let cfg = VertexConnConfig::query(kappa, n, 3.0, Profile::Practical);
        let mut sk = VertexConnSketch::new(space, cfg, &SeedTree::new(kappa as u64));
        feed(&stream, |e, d| sk.update(e, d));
        let cert = sk.certificate();
        // κ(H) <= κ(G) deterministically; should reach κ whp at this R.
        let est = cert.vertex_connectivity(kappa + 2);
        assert!(est <= kappa, "κ(H) = {est} above κ(G) = {kappa}");
        assert!(est >= kappa - 1, "κ(H) = {est} far below κ(G) = {kappa}");
        // Removal queries agree with ground truth on single vertices.
        for v in (0..n as u32).step_by(5) {
            assert_eq!(
                cert.disconnects(&[v]),
                algo::vertex_conn::disconnects(&g, &[v]),
                "H_{{{kappa},{n}}} vertex {v}"
            );
        }
    }
}

#[test]
fn skeleton_union_bounds_every_cut_from_a_churn_stream() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 11;
    let g = generators::gnp(n, 0.6, &mut rng);
    let h = Hypergraph::from_graph(&g);
    let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
    let k = 2;
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let mut sk = KSkeletonSketch::new(space, k, &SeedTree::new(4), params);
    feed(&stream, |e, d| sk.update(e, d));
    let skeleton = Hypergraph::from_edges(n, sk.decode());
    for mask in 1u32..(1 << (n - 1)) {
        let side: Vec<bool> = (0..n).map(|v| v > 0 && mask >> (v - 1) & 1 == 1).collect();
        assert!(
            skeleton.cut_size(&side) >= h.cut_size(&side).min(k),
            "cut violated at mask {mask}"
        );
    }
}

#[test]
fn sparsifier_pipeline_preserves_planted_cut_and_min_cut() {
    let mut rng = StdRng::seed_from_u64(5);
    let (h, side) = generators::planted_hyper_cut(6, 6, 3, 14, 2, &mut rng);
    let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
    let space = EdgeSpace::new(h.n(), 3).unwrap();
    // k = 10 exceeds every λ_e here, so the decode must reproduce the
    // hypergraph exactly (weight-1 edges) — the strongest end-to-end check.
    let cfg = SparsifierConfig::explicit(
        10,
        8,
        ForestParams::new(Profile::Practical, space.dimension()),
    );
    let mut sp = HypergraphSparsifier::new(space, cfg, &SeedTree::new(6));
    feed(&stream, |e, d| sp.update(e, d));
    let res = sp.decode();
    assert!(res.complete);
    // Light planted cut is recovered exactly at level 0 with unit weight.
    assert_eq!(res.sparsifier.cut_weight(&side), 2.0);
    let (true_min, _) = algo::hyper_min_cut(&h).unwrap();
    let approx = algo::weighted_min_cut_value(&res.sparsifier).unwrap();
    assert_eq!(true_min, 2);
    assert!((approx - 2.0).abs() < 1e-9, "sparsifier min cut {approx}");
    assert_eq!(res.sparsifier.edge_count(), h.edge_count());
}

#[test]
fn store_all_and_sketch_agree_on_final_graph_connectivity() {
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..5 {
        let n = 16;
        let g = generators::gnp(n, rng.gen_range(0.05..0.3), &mut rng);
        let h = Hypergraph::from_graph(&g);
        let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);

        let mut store = StoreAll::new(n);
        for u in &stream.updates {
            store.process(u).unwrap();
        }
        let exact_comps = algo::hyper_component_count(&store.hypergraph());

        let space = EdgeSpace::graph(n).unwrap();
        let params = ForestParams::new(Profile::Practical, space.dimension());
        let mut sk = SpanningForestSketch::new_full(space, &SeedTree::new(70 + trial), params);
        feed(&stream, |e, d| sk.update(e, d));
        assert_eq!(sk.component_count(), exact_comps, "trial {trial}");
    }
}

#[test]
fn eppstein_baseline_and_sketch_disagree_only_under_deletions() {
    // Insert-only: both correct. Core-then-delete: only the sketch is.
    let n = 12;
    let k = 1;
    let mut adversarial = UpdateStream::new(n, 2);
    for v in 1..n as u32 {
        adversarial.push_insert(HyperEdge::pair(0, v));
    }
    for v in 1..(n - 1) as u32 {
        adversarial.push_insert(HyperEdge::pair(v, v + 1));
    }
    for v in 1..n as u32 {
        adversarial.push_delete(HyperEdge::pair(0, v));
    }
    let final_g = adversarial.final_graph().unwrap();
    // Final graph: path over 1..n with vertex 0 isolated.
    assert_eq!(algo::component_count(&final_g), 2);

    let mut cert = EppsteinCertificate::new(n, k);
    for u in &adversarial.updates {
        cert.process(u);
    }
    // The baseline lost the path entirely.
    assert_eq!(cert.stored_edges(), 0);

    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let mut sk = SpanningForestSketch::new_full(space, &SeedTree::new(8), params);
    feed(&adversarial, |e, d| sk.update(e, d));
    assert_eq!(sk.component_count(), 2, "sketch sees the true final graph");
    let decoded = sk.decode();
    assert_eq!(decoded.len(), n - 2, "the full path is decodable");
}
