//! Edge cases the paper's statements quantify over but the main experiments
//! exercise lightly: higher-rank hyperedges (`r = 4`) end-to-end, and
//! multigraph-style multiplicities (linear sketches see net integer
//! multiplicities, not just 0/1).

use dynamic_graph_streams::core::{EdgeConnSketch, LightRecoverySketch};
use dynamic_graph_streams::prelude::*;

use dgs_hypergraph::algo;
use dgs_hypergraph::generators;

fn params_for(space: &EdgeSpace) -> ForestParams {
    ForestParams::new(Profile::Practical, space.dimension())
}

#[test]
fn rank_4_spanning_and_connectivity() {
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..5 {
        let n = 14;
        let h = generators::random_uniform_hypergraph(n, 4, rng.gen_range(3..12), &mut rng);
        let space = EdgeSpace::new(n, 4).unwrap();
        let mut sk = SpanningForestSketch::new_full(
            space.clone(),
            &SeedTree::new(trial),
            params_for(&space),
        );
        let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
        for u in &stream.updates {
            sk.update(&u.edge, u.op.delta());
        }
        let (kept, labels) = sk.decode_with_labels();
        assert_eq!(
            labels.component_count(),
            algo::hyper_component_count(&h),
            "trial {trial}"
        );
        for e in &kept {
            assert!(h.has_edge(e), "trial {trial}: phantom rank-4 edge {e:?}");
        }
    }
}

#[test]
fn rank_4_light_recovery_matches_exact() {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 12;
    let h = generators::random_uniform_hypergraph(n, 4, 9, &mut rng);
    let space = EdgeSpace::new(n, 4).unwrap();
    let mut sk = LightRecoverySketch::new(space.clone(), 1, &SeedTree::new(7), params_for(&space));
    for e in h.edges() {
        sk.update(e, 1);
    }
    let recovered: std::collections::BTreeSet<HyperEdge> =
        sk.recover().edges().into_iter().collect();
    let (exact, _) = algo::strength::light_k_exact(&h, 1);
    let exact_set: std::collections::BTreeSet<HyperEdge> =
        exact.iter().map(|&i| h.edges()[i].clone()).collect();
    assert_eq!(recovered, exact_set);
}

#[test]
fn rank_4_edge_connectivity() {
    // Two rank-4 blobs joined by one fat hyperedge: λ = 1 with the joining
    // edge as witness.
    let mut rng = StdRng::seed_from_u64(3);
    let (mut h, _) = generators::planted_hyper_cut(6, 6, 4, 10, 0, &mut rng);
    let bridge = HyperEdge::new(vec![0, 1, 6, 7]).unwrap();
    h.add_edge(bridge.clone());
    assert_eq!(algo::hyper_edge_connectivity(&h), 1);

    let space = EdgeSpace::new(12, 4).unwrap();
    let mut sk = EdgeConnSketch::new(space.clone(), 3, &SeedTree::new(8), params_for(&space));
    for e in h.edges() {
        sk.update(e, 1);
    }
    let (lambda, side) = sk.edge_connectivity();
    assert_eq!(lambda, 1);
    assert_eq!(h.cut_size(&side), 1);
}

#[test]
fn multigraph_multiplicities_are_first_class() {
    // A linear sketch tracks net multiplicities: insert an edge 3 times,
    // delete it twice — it must still read as present; one more deletion
    // removes it. (The strict `UpdateStream` forbids this; the sketch layer
    // itself is multiplicty-agnostic, which multigraph users rely on.)
    let n = 6;
    let space = EdgeSpace::graph(n).unwrap();
    let mut sk = SpanningForestSketch::new_full(
        space,
        &SeedTree::new(9),
        ForestParams::new(Profile::Practical, EdgeSpace::graph(n).unwrap().dimension()),
    );
    let e = HyperEdge::pair(2, 4);
    sk.update(&e, 1);
    sk.update(&e, 1);
    sk.update(&e, 1);
    sk.update(&e, -1);
    sk.update(&e, -1);
    let forest = sk.decode();
    assert_eq!(forest, vec![e.clone()], "multiplicity 1 edge must decode");
    sk.update(&e, -1);
    assert!(sk.decode().is_empty(), "multiplicity 0 edge must vanish");
}

#[test]
fn batched_weight_updates_equal_repeated_unit_updates() {
    // delta = +3 in one call is the same linear functional as three +1s.
    let n = 8;
    let space = EdgeSpace::graph(n).unwrap();
    let params = ForestParams::new(Profile::Practical, space.dimension());
    let seeds = SeedTree::new(10);
    let mut a = SpanningForestSketch::new_full(space.clone(), &seeds, params);
    let mut b = SpanningForestSketch::new_full(space, &seeds, params);
    let e1 = HyperEdge::pair(0, 1);
    let e2 = HyperEdge::new(vec![2, 3]).unwrap();
    a.update(&e1, 3);
    a.update(&e2, 2);
    for _ in 0..3 {
        b.update(&e1, 1);
    }
    for _ in 0..2 {
        b.update(&e2, 1);
    }
    assert_eq!(a.decode(), b.decode());
    // And net-zero via a big negative delta.
    a.update(&e1, -3);
    a.update(&e2, -2);
    assert!(a.decode().is_empty());
}

#[test]
fn mixed_rank_stream_through_the_sparsifier() {
    use dynamic_graph_streams::core::{HypergraphSparsifier, SparsifierConfig};
    let mut rng = StdRng::seed_from_u64(4);
    let h = generators::random_mixed_hypergraph(11, 4, 26, &mut rng);
    let space = EdgeSpace::new(11, 4).unwrap();
    let cfg = SparsifierConfig::explicit(10, 8, params_for(&space));
    let mut sp = HypergraphSparsifier::new(space, cfg, &SeedTree::new(11));
    let stream = generators::churn_stream(&h, generators::ChurnConfig::default(), &mut rng);
    for u in &stream.updates {
        sp.update(&u.edge, u.op.delta());
    }
    let res = sp.decode();
    assert!(res.complete);
    // k = 10 >= every λ_e at this density: exact reproduction.
    assert_eq!(res.sparsifier.edge_count(), h.edge_count());
    for (e, w) in res.sparsifier.iter() {
        assert!(h.has_edge(e));
        assert_eq!(w, 1.0);
    }
}
